"""Figure 5: RS, RS (MV), CS, CS (Row-MV) baselines.

Regenerates the paper's headline comparison.  Each benchmark runs all 13
SSB queries under one system configuration; the simulated seconds land
in ``extra_info`` and the shape assertions encode the paper's claims:
the column store beats the row store by roughly 6x and still beats the
row store's best-case materialized views, while the same row-MV data
inside the column store is far slower than native columns.
"""

import pytest

from repro.core.config import CONFIG_LADDER
from repro.rowstore.designs import DesignKind

_RESULTS = {}


def _record(benchmark, label, per_query):
    _RESULTS[label] = per_query
    avg = sum(per_query.values()) / len(per_query)
    benchmark.extra_info["simulated_seconds_avg"] = avg
    benchmark.extra_info["simulated_seconds"] = per_query


def test_figure5_rs(benchmark, harness, queries):
    def run():
        return {q.name: harness.run_row_design(q, DesignKind.TRADITIONAL)
                for q in queries}

    _record(benchmark, "RS", benchmark.pedantic(run, rounds=1, iterations=1))


def test_figure5_rs_mv(benchmark, harness, queries):
    def run():
        return {
            q.name: harness.run_row_design(q, DesignKind.MATERIALIZED_VIEWS)
            for q in queries
        }

    _record(benchmark, "RS (MV)",
            benchmark.pedantic(run, rounds=1, iterations=1))


def test_figure5_cs(benchmark, harness, queries):
    def run():
        return {q.name: harness.run_column_config(q, CONFIG_LADDER[0])
                for q in queries}

    _record(benchmark, "CS", benchmark.pedantic(run, rounds=1, iterations=1))


def test_figure5_cs_row_mv(benchmark, harness, queries):
    def run():
        return {q.name: harness.run_row_mv(q) for q in queries}

    _record(benchmark, "CS (Row-MV)",
            benchmark.pedantic(run, rounds=1, iterations=1))


def test_figure5_shape():
    """Paper: CS beats RS ~6x and RS(MV) ~3x; CS Row-MV is much slower
    than CS despite identical I/O footprint (Section 6.1)."""
    if len(_RESULTS) < 4:
        pytest.skip("run the figure5 benchmarks first")
    avg = {k: sum(v.values()) / len(v) for k, v in _RESULTS.items()}
    assert avg["CS"] < avg["RS (MV)"] < avg["RS"]
    assert avg["RS"] / avg["CS"] > 3.0
    assert avg["CS (Row-MV)"] / avg["CS"] > 4.0
