"""Delta-store writes: insert/delete mix vs read-only, tuple mover on/off.

One experiment, one artifact (``BENCH_writes.json``): SSB flight 1 on
both engines, through four phases:

* **read-only** — a plain engine and a write-capable engine with no
  pending delta run the same queries; their ledgers must be
  **byte-identical** (the write path charges nothing until a write
  lands).
* **write mix** — a batch of fact inserts (cloned rows, so every FK
  resolves) plus a ``quantity < 4`` delete is journaled into the WOS;
  write throughput is priced by
  :meth:`~repro.simio.stats.CostModel.write_seconds` over the write
  ledger's journal appends.
* **mover off (pre-move)** — flight 1 re-runs against base pages + the
  pending delta (the ``wos-merge`` snapshot path); rows must be
  identical to the reference engine on the effective tables, and every
  run must report ``delta_rows_merged > 0``.
* **mover on (post-move)** — the tuple mover drains the WOS into fresh
  base pages; flight 1 re-runs must be **byte-identical in ledger** to a
  cold-rebuilt engine loaded from the effective tables, and
  row-identical to the pre-move reads.

``--check`` runs at a tiny scale factor and exits nonzero if any
contract fails.  CI calls this via ``benchmarks/smoke_baseline.sh``.

Usage::

    PYTHONPATH=src python benchmarks/bench_writes.py [--sf 0.05] [--out PATH]
    PYTHONPATH=src python benchmarks/bench_writes.py --check [--sf 0.01]
"""

from __future__ import annotations

import argparse
import dataclasses
import json

from repro.colstore.engine import CStore
from repro.core.config import ExecutionConfig
from repro.plan.logical import ColumnRef, CompareOp, Comparison
from repro.reference import execute as reference_execute
from repro.rowstore.designs import DesignKind
from repro.rowstore.engine import SystemX
from repro.simio.stats import QueryStats
from repro.ssb.cache import load_or_generate
from repro.ssb.generator import SsbData
from repro.ssb.queries import ALL_QUERIES

#: the write mix: clone this fraction of the fact table as inserts ...
INSERT_FRACTION = 0.01
#: ... and delete every fact row with quantity below this
DELETE_BELOW_QUANTITY = 4

CS_CONFIG = ExecutionConfig.from_label("tICL")
CS_CONFIG_W = dataclasses.replace(CS_CONFIG, writes=True)
RS_DESIGN = DesignKind.TRADITIONAL


def flight1():
    return [q for q in ALL_QUERIES if q.name.startswith("Q1.")]


def _fact_insert_rows(data: SsbData, count: int) -> list:
    """The first ``count`` lineorder rows as insert dicts (decoded
    strings) — clones, so every foreign key resolves by construction."""
    fact = data.lineorder
    columns = {}
    for field in fact.schema:
        col = fact.column(field.name)
        values = col.data[:count]
        if col.dictionary is not None:
            columns[field.name] = list(col.dictionary.decode(values))
        else:
            columns[field.name] = [int(v) for v in values]
    return [{name: columns[name][i] for name in columns}
            for i in range(count)]


def _effective_data(engine) -> SsbData:
    effective = engine._writes.effective_tables()
    return SsbData(
        scale_factor=engine.data.scale_factor,
        seed=engine.data.seed,
        lineorder=effective["lineorder"],
        customer=effective["customer"],
        supplier=effective["supplier"],
        part=effective["part"],
        date=effective["date"],
    )


def _ledger(run) -> dict:
    return dataclasses.asdict(run.stats)


def run_engine(kind: str, data: SsbData, problems: list) -> dict:
    """All four phases for one engine; contract breaches go into
    ``problems``."""
    queries = flight1()
    if kind == "cs":
        plain = CStore(data)
        writable = CStore(data)
        run = lambda eng, q: eng.execute(q, CS_CONFIG_W)  # noqa: E731
        run_ro = lambda eng, q: eng.execute(q, CS_CONFIG)  # noqa: E731
    else:
        plain = SystemX(data, designs=[RS_DESIGN])
        writable = SystemX(data, designs=[RS_DESIGN], writes=True)
        run = lambda eng, q: eng.execute(q, RS_DESIGN)  # noqa: E731
        run_ro = run

    record: dict = {"engine": kind}

    # phase 1: read-only ledger identity, plain vs write-capable
    read_only = {}
    for query in queries:
        base = run_ro(plain, query)
        mirrored = run(writable, query)
        read_only[query.name] = base.seconds
        if _ledger(base) != _ledger(mirrored):
            problems.append(
                f"{kind}/{query.name}: write-capable engine with no "
                f"pending delta charged a different ledger than the "
                f"plain engine")
    record["read_only_seconds"] = read_only

    # phase 2: the write mix, priced as write seconds
    inserts = _fact_insert_rows(
        data, max(1, int(data.lineorder.num_rows * INSERT_FRACTION)))
    delete_pred = [Comparison(ColumnRef("lineorder", "quantity"),
                              CompareOp.LT, DELETE_BELOW_QUANTITY)]
    wstats = QueryStats()
    inserted = writable.insert("lineorder", inserts, wstats)
    deleted = writable.delete("lineorder", delete_pred, wstats)
    write_seconds = writable.cost_model.write_seconds(wstats)
    record["write"] = {
        "rows_inserted": inserted,
        "rows_deleted": deleted,
        "journal_pages": wstats.journal_pages,
        "write_seconds": write_seconds,
        "rows_per_second": (inserted + deleted) / write_seconds
        if write_seconds else 0.0,
    }
    if wstats.journal_pages <= 0:
        problems.append(f"{kind}: the write mix appended no journal pages")

    # phase 3: mover off — snapshot reads over base + pending delta
    reference_tables = writable._writes.effective_tables()
    pre_move = {}
    pre_rows = {}
    for query in queries:
        merged = run(writable, query)
        pre_move[query.name] = {
            "seconds": merged.seconds,
            "delta_rows_merged": merged.stats.delta_rows_merged,
        }
        pre_rows[query.name] = merged.result.rows
        oracle = reference_execute(reference_tables, query)
        if merged.result.rows != oracle.rows:
            problems.append(
                f"{kind}/{query.name}: pre-move merge read deviates from "
                f"the reference on the effective tables")
        if merged.stats.delta_rows_merged <= 0:
            problems.append(
                f"{kind}/{query.name}: merge read reported no "
                f"delta_rows_merged despite a pending fact delta")
    record["pre_move"] = pre_move

    # phase 4: mover on — drain, then compare against a cold rebuild
    rebuild_data = _effective_data(writable)
    pending = writable.pending_writes()
    mstats = QueryStats()
    moved = writable.move(mstats)
    move_seconds = writable.cost_model.write_seconds(mstats)
    record["move"] = {
        "rows_moved": moved,
        "write_seconds": move_seconds,
        "rows_per_second": moved / move_seconds if move_seconds else 0.0,
        "journal_pages": mstats.journal_pages,
    }
    # a delete that hits a WOS insert annihilates it, so the mover's
    # count is the store's pending tally, not inserted + deleted
    if moved != pending or moved <= 0:
        problems.append(
            f"{kind}: mover drained {moved} rows, expected {pending}")
    if mstats.moves != 1:
        problems.append(f"{kind}: move ledger counted {mstats.moves} "
                        f"moves, expected 1")

    if kind == "cs":
        rebuilt = CStore(rebuild_data)
    else:
        rebuilt = SystemX(rebuild_data, designs=[RS_DESIGN], writes=True)
    post_move = {}
    for query in queries:
        after = run(writable, query)
        cold = run(rebuilt, query)
        post_move[query.name] = after.seconds
        if after.result.rows != pre_rows[query.name]:
            problems.append(
                f"{kind}/{query.name}: post-move rows differ from the "
                f"pre-move snapshot at the same epoch")
        if _ledger(after) != _ledger(cold):
            problems.append(
                f"{kind}/{query.name}: post-move ledger is not "
                f"byte-identical to a cold rebuild from the effective "
                f"tables")
    record["post_move_seconds"] = post_move
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sf", type=float, default=0.05,
                        help="scale factor (default 0.05)")
    parser.add_argument("--out", default="BENCH_writes.json",
                        help="output path (default BENCH_writes.json)")
    parser.add_argument("--check", action="store_true",
                        help="assert the write contracts and exit (no "
                             "artifact written); meant for CI at a small "
                             "--sf")
    args = parser.parse_args(argv)

    print(f"generating SSB data at SF {args.sf} ...")
    data = load_or_generate(args.sf)
    problems: list = []
    engines = [run_engine("cs", data, problems),
               run_engine("rs", data, problems)]

    if args.check:
        if problems:
            print(f"WRITES CHECK FAILED — {len(problems)} problem(s):")
            for message in problems:
                print(f"  {message}")
            return 1
        cells = sum(len(e["pre_move"]) for e in engines)
        print(f"writes check passed: {cells} merge read(s); read-only "
              f"ledgers byte-identical with the write path present, "
              f"pre-move reads match the reference, post-move reads "
              f"byte-identical to a cold rebuild")
        return 0

    report = {
        "scale_factor": args.sf,
        "insert_fraction": INSERT_FRACTION,
        "delete_below_quantity": DELETE_BELOW_QUANTITY,
        "engines": engines,
        "guarantees_hold": not problems,
        "problems": problems,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"\n{'engine':7s} {'ins':>7s} {'del':>7s} {'journal':>8s} "
          f"{'write rows/s':>13s} {'move rows/s':>12s}")
    for cell in engines:
        write, move = cell["write"], cell["move"]
        print(f"{cell['engine']:7s} {write['rows_inserted']:7d} "
              f"{write['rows_deleted']:7d} {write['journal_pages']:8d} "
              f"{write['rows_per_second']:13.0f} "
              f"{move['rows_per_second']:12.0f}")
    if problems:
        print(f"\nWARNING — {len(problems)} guarantee violation(s):")
        for message in problems:
            print(f"  {message}")
    print(f"wrote {args.out}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
