"""Figure 8: invisible join vs. pre-joined (denormalized) fact table.

Paper conclusion: denormalization is *not* generally useful in a column
store — the invisible join performs well enough that pre-joining only
pays when the folded-in dimension columns are aggressively compressed.
"""

import pytest

from repro.bench.figures import FIGURE8_LEVELS
from repro.core.config import CONFIG_LADDER

_RESULTS = {}


def test_figure8_base(benchmark, harness, queries):
    def run():
        return {q.name: harness.run_column_config(q, CONFIG_LADDER[0])
                for q in queries}

    per_query = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS["Base"] = per_query
    benchmark.extra_info["simulated_seconds_avg"] = \
        sum(per_query.values()) / len(per_query)


@pytest.mark.parametrize("label,level", FIGURE8_LEVELS,
                         ids=[l for l, _ in FIGURE8_LEVELS])
def test_figure8_prejoined(benchmark, harness, queries, label, level):
    def run():
        return {q.name: harness.run_denormalized(q, level)
                for q in queries}

    per_query = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[label] = per_query
    benchmark.extra_info["simulated_seconds_avg"] = \
        sum(per_query.values()) / len(per_query)
    benchmark.extra_info["simulated_seconds"] = per_query


def test_figure8_shape():
    if len(_RESULTS) < 4:
        pytest.skip("run the figure8 benchmarks first")
    avg = {k: sum(v.values()) / len(v) for k, v in _RESULTS.items()}
    # uncompressed strings in the fact table are a disaster (paper: 5x)
    assert avg["PJ, No C"] > 2.5 * avg["Base"]
    # integer codes close most of the gap but usually don't win
    assert avg["Base"] < avg["PJ, Int C"] < avg["PJ, No C"]
    # only max compression makes denormalization competitive
    assert avg["PJ, Max C"] < 1.2 * avg["Base"]
