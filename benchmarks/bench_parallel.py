"""Serial vs morsel-parallel wall-clock over the 13 SSBM queries.

Runs every query at ``workers=1`` and ``workers=4`` against the same
engine, checks that rows and the simulated I/O ledger are identical
(the morsel layer's contract), and writes per-flight wall-clock
aggregates to ``BENCH_parallel.json``.

Wall-clock speedup depends on the host: the numpy kernels release the
GIL, so gains track physical cores.  ``cpu_count`` is recorded in the
output — on a single-core host the parallel run measures overhead, not
speedup, and that is reported honestly rather than hidden.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--sf 0.1] [--out PATH]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import time

from repro.colstore.engine import CStore
from repro.core.config import ExecutionConfig
from repro.ssb.cache import load_or_generate
from repro.ssb.generator import DEFAULT_SEED
from repro.ssb.queries import ALL_QUERIES, FLIGHT_OF

_IO_FIELDS = ("pages_read", "bytes_read", "seeks", "buffer_hits")


def _time_queries(store: CStore, config: ExecutionConfig):
    """(per-query wall seconds, per-query (rows, io ledger slice))."""
    walls, fingerprints = {}, {}
    for query in ALL_QUERIES:
        started = time.perf_counter()
        run = store.execute(query, config)
        walls[query.name] = time.perf_counter() - started
        fingerprints[query.name] = (
            run.result.rows,
            tuple(getattr(run.stats, f) for f in _IO_FIELDS),
        )
    return walls, fingerprints


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sf", type=float, default=0.1,
                        help="scale factor (default 0.1)")
    parser.add_argument("--workers", type=int, default=4,
                        help="parallel worker count (default 4)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions; best-of is reported")
    parser.add_argument("--out", default="BENCH_parallel.json",
                        help="output path (default BENCH_parallel.json)")
    args = parser.parse_args(argv)
    if args.workers < 2:
        parser.error(f"--workers must be >= 2, got {args.workers}")
    if args.repeat < 1:
        parser.error(f"--repeat must be >= 1, got {args.repeat}")

    print(f"generating SSB data at SF {args.sf} ...")
    data = load_or_generate(args.sf, DEFAULT_SEED)
    store = CStore(data)
    serial = ExecutionConfig.baseline()
    parallel = dataclasses.replace(serial, workers=args.workers)

    best = {"serial": {}, "parallel": {}}
    fingerprints = {}
    for _ in range(args.repeat):
        walls, fp_serial = _time_queries(store, serial)
        for name, wall in walls.items():
            best["serial"][name] = min(best["serial"].get(name, wall), wall)
        walls, fp_parallel = _time_queries(store, parallel)
        for name, wall in walls.items():
            best["parallel"][name] = min(
                best["parallel"].get(name, wall), wall)
        fingerprints = (fp_serial, fp_parallel)

    mismatches = [name for name in best["serial"]
                  if fingerprints[0][name] != fingerprints[1][name]]
    if mismatches:
        raise SystemExit(f"parallel run deviates from serial on: "
                         f"{', '.join(mismatches)}")

    flights = {}
    for name in best["serial"]:
        flight = f"flight{FLIGHT_OF[name]}"
        agg = flights.setdefault(flight, {"serial_s": 0.0, "parallel_s": 0.0})
        agg["serial_s"] += best["serial"][name]
        agg["parallel_s"] += best["parallel"][name]
    for agg in flights.values():
        agg["speedup"] = (agg["serial_s"] / agg["parallel_s"]
                          if agg["parallel_s"] else 0.0)

    total_serial = sum(best["serial"].values())
    total_parallel = sum(best["parallel"].values())
    cpu_count = os.cpu_count() or 1
    # more workers than cores: threads time-slice one another, so the
    # parallel column measures scheduling overhead, not speedup
    degraded = args.workers > cpu_count
    report = {
        "scale_factor": args.sf,
        "workers": args.workers,
        "cpu_count": cpu_count,
        "degraded": degraded,
        "repeat": args.repeat,
        "queries": {
            name: {
                "serial_s": best["serial"][name],
                "parallel_s": best["parallel"][name],
                "speedup": (best["serial"][name] / best["parallel"][name]
                            if best["parallel"][name] else 0.0),
            }
            for name in sorted(best["serial"])
        },
        "flights": dict(sorted(flights.items())),
        "total": {
            "serial_s": total_serial,
            "parallel_s": total_parallel,
            "speedup": (total_serial / total_parallel
                        if total_parallel else 0.0),
        },
        "results_identical": True,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"\n{'query':8s} {'serial':>9s} {'x' + str(args.workers):>9s} "
          f"{'speedup':>8s}")
    for name, row in report["queries"].items():
        print(f"{name:8s} {row['serial_s']:8.3f}s {row['parallel_s']:8.3f}s "
              f"{row['speedup']:7.2f}x")
    print(f"{'total':8s} {total_serial:8.3f}s {total_parallel:8.3f}s "
          f"{report['total']['speedup']:7.2f}x  "
          f"(host has {report['cpu_count']} CPU(s))")
    if degraded:
        print("=" * 64)
        print(f"WARNING: {args.workers} workers on a {cpu_count}-CPU "
              f"host — the parallel numbers measure thread overhead, "
              f"not speedup.  Artifact stamped \"degraded\": true; do "
              f"not cite its speedups.")
        print("=" * 64)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
