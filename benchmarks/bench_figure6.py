"""Figure 6: the five row-store physical designs.

Paper shape: MV < T < {T(B)} << VP < AI on average — none of the
column-store emulations comes close to the traditional design, and
index-only plans are the worst by far.  (Our honest T(B) implementation
lacks the commercial optimizer's pathologies, so T(B) is asserted to be
merely "not better than MV" rather than 2.5x worse than T; see
EXPERIMENTS.md.)
"""

import pytest

from repro.bench.figures import FIGURE6_DESIGNS

_RESULTS = {}


@pytest.mark.parametrize("label,design", FIGURE6_DESIGNS,
                         ids=[l for l, _ in FIGURE6_DESIGNS])
def test_figure6_design(benchmark, harness, queries, label, design):
    def run():
        return {q.name: harness.run_row_design(q, design) for q in queries}

    per_query = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[label] = per_query
    benchmark.extra_info["simulated_seconds_avg"] = \
        sum(per_query.values()) / len(per_query)
    benchmark.extra_info["simulated_seconds"] = per_query


def test_figure6_shape():
    if len(_RESULTS) < 5:
        pytest.skip("run the figure6 benchmarks first")
    avg = {k: sum(v.values()) / len(v) for k, v in _RESULTS.items()}
    # materialized views beat every scan-based design; the column-store
    # emulations (VP, AI) lose badly — the paper's core claim
    assert avg["MV"] < avg["T"] < avg["VP"] < avg["AI"]
    assert avg["VP"] > 1.5 * avg["T"]
    assert avg["AI"] > 3.0 * avg["T"]
    assert avg["AI"] == max(avg.values())
    # known divergence: our honest bitmap plans have none of System X's
    # optimizer pathologies (the paper's T(B) hits 304s on Q2.3), so
    # T(B) realizes only the paper's qualitative upside — "bitmap
    # indices sometimes help, especially when the selectivity of queries
    # is low" — and beats T here.  See EXPERIMENTS.md.
    assert avg["T(B)"] <= avg["T"]
    assert _RESULTS["T(B)"]["Q1.3"] < _RESULTS["T"]["Q1.3"]


def test_figure6_flight2_vp_competitive():
    """Paper Section 6.2: for flight 2 (no orderdate partitioning
    benefit) vertical partitioning is competitive with traditional —
    within about 2x rather than the 3x+ overall gap."""
    if len(_RESULTS) < 5:
        pytest.skip("run the figure6 benchmarks first")
    flight2 = ["Q2.1", "Q2.2", "Q2.3"]
    t = sum(_RESULTS["T"][q] for q in flight2)
    vp = sum(_RESULTS["VP"][q] for q in flight2)
    assert vp < 2.5 * t
