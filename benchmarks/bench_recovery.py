"""Crash-recovery soak: every kill point, both engines, one artifact.

One experiment, one artifact (``BENCH_recovery.json``): for each engine
and each seeded kill point the soak drives the deterministic DML
workload until the crash fires, discards all in-memory state, cold
starts from the simulated disk, replays the redo journal, and audits
the exactly-once contract:

* **zero lost acked writes** — the recovered snapshot is column-
  identical to an independent replay of exactly the acknowledged
  operations, at the same epoch (acked present / unacked absent / never
  partial);
* **clean starts are free** — a never-written engine recovers as a
  no-op with ``journal_replay_pages``, ``recovered_batches``, and
  ``torn_tail_records`` all zero (the byte-identity guarantee for every
  pre-existing ledger).

Replay cost is priced through the cost model (2008 hardware) from the
recovery ledger; the artifact records pages scanned, batches replayed,
torn-tail truncations, moves rolled forward, and simulated replay
seconds per (engine × kill point) cell.

``--check`` runs the same soak at a tiny scale factor and exits nonzero
if any contract fails.  CI calls this via ``benchmarks/smoke_baseline.sh``
and the chaos lane.

Usage::

    PYTHONPATH=src python benchmarks/bench_recovery.py [--sf 0.05] [--out PATH]
    PYTHONPATH=src python benchmarks/bench_recovery.py --check [--sf 0.01]
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from repro.simio.faults import CRASH_POINTS, CrashPolicy
from repro.simio.stats import QueryStats
from repro.ssb.cache import load_or_generate
from repro.write.recovery import CrashHarness
from repro.write.verify import _clone_rows, _drive_workload

#: seeds soaked per (engine × kill point) cell
SOAK_SEEDS = (0, 1, 2)

NEW_COUNTERS = ("journal_replay_pages", "recovered_batches",
                "torn_tail_records")


def _snapshot_matches(harness: CrashHarness) -> bool:
    """Acked present / unacked absent / never partial: the recovered
    snapshot must equal the acked-only reference replay, column for
    column."""
    recovered = harness.engine.snapshot_tables()
    expected = harness.reference_store().effective_tables()
    for name in sorted(expected):
        for col in expected[name].columns():
            if not np.array_equal(col.data,
                                  recovered[name].column(col.name).data):
                return False
    return True


def soak_cell(kind: str, point: str, data, seed: int,
              problems: list) -> dict:
    """One crash → cold start → replay → audit cycle."""
    tag = f"{kind}/{point}/seed{seed}"
    # the workload passes each journal point several times (seed-drawn
    # arrival) but runs exactly one move, so move points pin arrival 1
    max_at = 1 if "move" in point else 2
    harness = CrashHarness(
        data, kind=kind, seed=seed,
        crashes=[CrashPolicy(point, at=None, max_at=max_at)])
    _drive_workload(harness, _clone_rows(data.lineorder, 8))
    if harness.crashed is None:
        problems.append(f"{tag}: kill point never fired")
        return {"seed": seed, "fired": False}
    stats = QueryStats()
    report = harness.crash_and_recover(stats=stats)
    if not _snapshot_matches(harness):
        problems.append(f"{tag}: recovered snapshot diverges from the "
                        f"acked-only replay (lost or phantom write)")
    ref_epoch = harness.reference_store().epoch
    if harness.engine._writes.epoch != ref_epoch:
        problems.append(f"{tag}: recovered epoch "
                        f"{harness.engine._writes.epoch} != reference "
                        f"epoch {ref_epoch}")
    return {
        "seed": seed,
        "fired": True,
        "acked_ops": len(harness.acked),
        "unacked_ops": len(harness.unacked),
        "records_scanned": report.records_scanned,
        "recovered_batches": report.recovered_batches,
        "moves_rolled_forward": report.moves_rolled_forward,
        "torn_tail_records": report.torn_tail_records,
        "journal_replay_pages": stats.journal_replay_pages,
        "io_retries": stats.io_retries,
        "replay_seconds": harness.engine.cost_model.seconds(stats),
    }


def clean_start_cell(kind: str, data, problems: list) -> dict:
    """A never-written engine must recover for free."""
    harness = CrashHarness(data, kind=kind)
    stats = QueryStats()
    report = harness.engine.recover(stats=stats)
    if not report.clean:
        problems.append(f"{kind}/clean: recovery was not a no-op: "
                        f"{report.render()}")
    for counter in NEW_COUNTERS:
        if getattr(stats, counter):
            problems.append(f"{kind}/clean: {counter} nonzero on a "
                            f"clean start")
    return {counter: getattr(stats, counter) for counter in NEW_COUNTERS}


def run_engine(kind: str, data, seeds, problems: list) -> dict:
    record = {"engine": kind,
              "clean_start": clean_start_cell(kind, data, problems),
              "crash_points": {}}
    for point in CRASH_POINTS:
        cells = [soak_cell(kind, point, data, seed, problems)
                 for seed in seeds]
        record["crash_points"][point] = cells
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sf", type=float, default=0.05,
                        help="scale factor (default 0.05)")
    parser.add_argument("--out", default="BENCH_recovery.json",
                        help="output path (default BENCH_recovery.json)")
    parser.add_argument("--check", action="store_true",
                        help="assert the durability contracts and exit "
                             "(no artifact written); meant for CI at a "
                             "small --sf")
    args = parser.parse_args(argv)

    print(f"generating SSB data at SF {args.sf} ...")
    data = load_or_generate(args.sf, seed=7)
    seeds = SOAK_SEEDS[:1] if args.check else SOAK_SEEDS
    problems: list = []
    engines = [run_engine("cs", data, seeds, problems),
               run_engine("rs", data, seeds, problems)]

    if args.check:
        if problems:
            print(f"RECOVERY CHECK FAILED — {len(problems)} problem(s):")
            for message in problems:
                print(f"  {message}")
            return 1
        cells = sum(len(c) for e in engines
                    for c in e["crash_points"].values())
        print(f"recovery check passed: {cells} crash cycle(s) across "
              f"{len(CRASH_POINTS)} kill points x 2 engines; zero lost "
              f"acked writes, clean-start counters all zero")
        return 0

    report = {
        "scale_factor": args.sf,
        "soak_seeds": list(seeds),
        "crash_points": list(CRASH_POINTS),
        "engines": engines,
        "guarantees_hold": not problems,
        "problems": problems,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"\n{'engine':7s} {'kill point':28s} {'scan':>5s} {'replay':>7s} "
          f"{'torn':>5s} {'moves':>6s} {'replay ms':>10s}")
    for cell in engines:
        for point, runs in cell["crash_points"].items():
            fired = [r for r in runs if r.get("fired")]
            if not fired:
                continue
            mean = lambda key: sum(r[key] for r in fired) / len(fired)
            print(f"{cell['engine']:7s} {point:28s} "
                  f"{mean('records_scanned'):5.1f} "
                  f"{mean('recovered_batches'):7.1f} "
                  f"{mean('torn_tail_records'):5.1f} "
                  f"{mean('moves_rolled_forward'):6.1f} "
                  f"{mean('replay_seconds') * 1000:10.2f}")
    if problems:
        print(f"\nWARNING — {len(problems)} guarantee violation(s):")
        for message in problems:
            print(f"  {message}")
    print(f"wrote {args.out}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
