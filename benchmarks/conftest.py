"""Benchmark fixtures: one harness per session at the bench scale factor.

``REPRO_SF`` controls the scale (default 0.05 = 300,000 fact rows).  The
pytest-benchmark tables report *wall-clock* time of the Python
simulation; every benchmark also attaches the *simulated seconds on the
paper's 2008 hardware* via ``extra_info`` — that simulated number is the
one compared against the paper (see EXPERIMENTS.md).
"""

import pytest

from repro.bench.harness import Harness


@pytest.fixture(scope="session")
def harness():
    return Harness()


@pytest.fixture(scope="session")
def queries(harness):
    return harness.queries()
