"""Zone-map ablation: block skipping vs full scans on both axes.

Two experiments, one artifact (``BENCH_zonemaps.json``):

* **SSB flight 1** (the selective flight filters) on the column store,
  compression on (``tICL``) and off (``tIcL``), zone maps off vs on.
  Pruning must never change a result; with compression off the Q1.x
  scans read strictly fewer pages, and with compression on the columns
  are already so dense that min/max rarely excludes a block — both
  outcomes are recorded honestly.
* **Selectivity sweep** over raw column scans: range predicates covering
  1 %–100 % of the domain against the projection's sorted primary key
  (``orderdate``) and an unsorted uniform column (``custkey``), at
  ``CompressionLevel.NONE`` and ``MAX``.  Sorted columns skip in
  proportion to selectivity; unsorted uniform columns skip nothing
  (every block spans the full domain) — the textbook zone-map picture.

``--check`` runs the SSB half at a tiny scale factor and exits nonzero
if zone maps ever read *more* pages than the full scan, if the expected
strict wins (Q1.x, compression off) fail to materialize, or if any row
or non-skip ledger field drifts.  CI calls this via
``benchmarks/smoke_baseline.sh``.

Usage::

    PYTHONPATH=src python benchmarks/bench_zonemaps.py [--sf 0.05] [--out PATH]
    PYTHONPATH=src python benchmarks/bench_zonemaps.py --check [--sf 0.004]
"""

from __future__ import annotations

import argparse
import dataclasses
import json

from repro.bench.harness import Harness
from repro.colstore.operators.scan import predicate_positions
from repro.core.config import ExecutionConfig
from repro.simio.stats import QueryStats
from repro.ssb.queries import ALL_QUERIES
from repro.storage.colfile import CompressionLevel

#: column-store configs measured in the SSB half: compression on / off
#: (late materialization + invisible join in both, the C-Store defaults)
CONFIGS = ("tICL", "tIcL")

#: queries whose flight-level filters are selective enough that pruning
#: must win strictly when compression is off (acceptance criterion)
STRICT_QUERIES = ("Q1.1", "Q1.2", "Q1.3")
STRICT_CONFIG = "tIcL"

#: fraction of the column's domain covered by each sweep predicate
SWEEP_FRACTIONS = (0.01, 0.05, 0.10, 0.25, 0.50, 1.00)


def _run_pair(store, query, label):
    """(off-run, on-run) for one query/config, on fresh ledgers."""
    off = store.execute(query, ExecutionConfig.from_label(label))
    on = store.execute(
        query,
        dataclasses.replace(ExecutionConfig.from_label(label),
                            zone_maps=True))
    return off, on


def _ledger_mod_skips(stats: QueryStats) -> dict:
    """The flat ledger with the two skip counters masked out."""
    flat = dataclasses.asdict(stats)
    flat.pop("synopsis_probes", None)
    flat.pop("blocks_skipped", None)
    return flat


def run_ssb(harness: Harness) -> list:
    store = harness.cstore()
    cells = []
    flight1 = [q for q in ALL_QUERIES if q.name.startswith("Q1.")]
    for label in CONFIGS:
        for query in flight1:
            off, on = _run_pair(store, query, label)
            if not off.result.same_rows(on.result):
                raise SystemExit(
                    f"zone maps changed the result of {query.name} "
                    f"[{label}] — pruning is wrong, not a perf issue")
            cells.append({
                "query": query.name,
                "config": label,
                "pages_read_off": off.stats.pages_read,
                "pages_read_on": on.stats.pages_read,
                "striped_io_seconds_off": off.cost.io_elapsed_seconds,
                "striped_io_seconds_on": on.cost.io_elapsed_seconds,
                "seconds_off": off.seconds,
                "seconds_on": on.seconds,
                "synopsis_probes": on.stats.synopsis_probes,
                "blocks_skipped": on.stats.blocks_skipped,
                "ledger_identical_mod_skips":
                    _ledger_mod_skips(off.stats) == _ledger_mod_skips(
                        on.stats),
            })
    return cells


def run_sweep(harness: Harness) -> list:
    """Raw predicate scans: selectivity x sorted/unsorted x compression."""
    store = harness.cstore()
    lineorder = harness.data.tables["lineorder"]
    domains = {
        name: (int(lineorder.column(name).data.min()),
               int(lineorder.column(name).data.max()))
        for name in ("orderdate", "custkey")
    }
    cells = []
    for level in (CompressionLevel.NONE, CompressionLevel.MAX):
        proj = store.projection("lineorder", level)
        config = ExecutionConfig(compression=level is not
                                 CompressionLevel.NONE)
        for column, sortedness in (("orderdate", "sorted"),
                                   ("custkey", "unsorted")):
            colfile = proj.column_file(column)
            lo, hi = domains[column]
            for fraction in SWEEP_FRACTIONS:
                upper = lo + max(0, int((hi - lo) * fraction))
                results = {}
                for zone_maps in (False, True):
                    stats = QueryStats()
                    store.disk.stats = stats
                    store.pool.clear()
                    positions = predicate_positions(
                        colfile, store.pool, (lo, upper),
                        dataclasses.replace(config, zone_maps=zone_maps))
                    results[zone_maps] = (stats, positions.count)
                if results[False][1] != results[True][1]:
                    raise SystemExit(
                        f"sweep {column} f={fraction}: position counts "
                        f"differ with zone maps on")
                cells.append({
                    "column": column,
                    "sorted": sortedness,
                    "compression": level.name,
                    "fraction": fraction,
                    "qualifying": results[True][1],
                    "pages_read_off": results[False][0].pages_read,
                    "pages_read_on": results[True][0].pages_read,
                    "blocks_skipped": results[True][0].blocks_skipped,
                    "synopsis_probes": results[True][0].synopsis_probes,
                })
    return cells


def check(cells: list) -> list:
    """Violated guarantees in the SSB cells (empty list = pass)."""
    problems = []
    for cell in cells:
        name = f"{cell['query']} [{cell['config']}]"
        if cell["pages_read_on"] > cell["pages_read_off"]:
            problems.append(
                f"{name}: zone maps read MORE pages "
                f"({cell['pages_read_on']} > {cell['pages_read_off']})")
        if cell["config"] == STRICT_CONFIG and \
                cell["query"] in STRICT_QUERIES and \
                cell["pages_read_on"] >= cell["pages_read_off"]:
            problems.append(
                f"{name}: expected a strict page win, got "
                f"{cell['pages_read_on']} vs {cell['pages_read_off']}")
        if cell["blocks_skipped"] == 0 and \
                not cell["ledger_identical_mod_skips"]:
            problems.append(
                f"{name}: pruning skipped nothing but the ledger "
                f"still drifted")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sf", type=float, default=0.05,
                        help="scale factor (default 0.05)")
    parser.add_argument("--out", default="BENCH_zonemaps.json",
                        help="output path (default BENCH_zonemaps.json)")
    parser.add_argument("--check", action="store_true",
                        help="assert the pruning guarantees and exit "
                             "(no artifact written); meant for CI at a "
                             "small --sf")
    args = parser.parse_args(argv)

    print(f"generating SSB data at SF {args.sf} ...")
    harness = Harness(scale_factor=args.sf)
    ssb_cells = run_ssb(harness)
    problems = check(ssb_cells)

    if args.check:
        if problems:
            print(f"ZONE-MAP CHECK FAILED — {len(problems)} problem(s):")
            for message in problems:
                print(f"  {message}")
            return 1
        print(f"zone-map check passed: {len(ssb_cells)} SSB cell(s), "
              f"on-mode never read more pages than off-mode")
        return 0

    sweep_cells = run_sweep(harness)
    report = {
        "scale_factor": args.sf,
        "ssb": ssb_cells,
        "sweep": sweep_cells,
        "guarantees_hold": not problems,
        "problems": problems,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"\n{'query':8s} {'config':6s} {'pages off':>9s} {'on':>5s} "
          f"{'skipped':>7s} {'io off':>9s} {'io on':>9s}")
    for cell in ssb_cells:
        print(f"{cell['query']:8s} {cell['config']:6s} "
              f"{cell['pages_read_off']:9d} {cell['pages_read_on']:5d} "
              f"{cell['blocks_skipped']:7d} "
              f"{cell['striped_io_seconds_off']:8.4f}s "
              f"{cell['striped_io_seconds_on']:8.4f}s")
    print(f"\n{'column':10s} {'comp':5s} {'frac':>5s} {'pages off':>9s} "
          f"{'on':>5s} {'skipped':>7s}")
    for cell in sweep_cells:
        print(f"{cell['column']:10s} {cell['compression']:5s} "
              f"{cell['fraction']:5.2f} {cell['pages_read_off']:9d} "
              f"{cell['pages_read_on']:5d} {cell['blocks_skipped']:7d}")
    if problems:
        print(f"\nWARNING — {len(problems)} guarantee violation(s):")
        for message in problems:
            print(f"  {message}")
    print(f"wrote {args.out}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
