#!/usr/bin/env sh
# Smoke test for the baseline regression workflow: write a figure-5
# baseline at a tiny scale factor, then immediately re-check it.  The
# whole stack is deterministic, so the check must pass (exit 0); any
# nonzero exit here means either a real regression or broken plumbing.
#
# Usage:  sh benchmarks/smoke_baseline.sh  (from the repo root)
set -e

SF="${REPRO_SMOKE_SF:-0.004}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

PYTHONPATH=src python -m repro.bench figure5 --sf "$SF" \
    --write-baseline "$OUT/baseline.json" \
    --trace-json "$OUT/traces.jsonl" > /dev/null
PYTHONPATH=src python -m repro.bench --check-baseline "$OUT/baseline.json"
echo "smoke_baseline: OK (sf $SF)"
