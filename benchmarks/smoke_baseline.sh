#!/usr/bin/env sh
# Smoke test for the baseline regression workflow: write a figure-5
# baseline at a tiny scale factor, then immediately re-check it.  The
# whole stack is deterministic, so the check must pass (exit 0); any
# nonzero exit here means either a real regression or broken plumbing.
#
# The cycle runs twice — zone maps off (the paper's configuration) and
# on — and then benchmarks/bench_zonemaps.py --check asserts the pruning
# contract: the on-mode never reads more pages than the off-mode, and
# the selective Q1.x scans read strictly fewer.
#
# Finally benchmarks/bench_resilience.py --check asserts the service
# resilience contract: under the persistent-corruption fault profile,
# circuit breakers + degraded serving strictly reduce the error rate
# and strictly raise availability, degraded answers match the healthy
# engine's rows, and a fault-free service ledger stays byte-identical
# to a direct engine call.
#
# benchmarks/bench_sharding.py --check asserts the scatter-gather
# contract: rows, merged ledgers, and traces identical at shards=4 vs
# shards=1, and shard elimination strictly reducing pages read on the
# Q1.x scans.  It runs at SF 0.01 (not the smoke SF): below that the
# fact shards are so small that the per-shard dimension replicas
# dominate the page counts and the strict win is not expected.
#
# benchmarks/bench_writes.py --check asserts the delta-store contract:
# read-only ledgers byte-identical with the write path present,
# pre-move merge reads row-identical to the reference over the
# effective tables, and post-move reads byte-identical in ledger to a
# cold rebuild.
#
# benchmarks/bench_recovery.py --check asserts the crash-recovery
# contract: every seeded kill point on both engines cold-starts to
# zero lost acked writes (recovered snapshot identical to an acked-only
# replay), and clean starts keep the replay counters all zero.
#
# Usage:  sh benchmarks/smoke_baseline.sh  (from the repo root)
set -e

SF="${REPRO_SMOKE_SF:-0.004}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

for MODE in off on; do
    PYTHONPATH=src python -m repro.bench figure5 --sf "$SF" \
        --zone-maps "$MODE" \
        --write-baseline "$OUT/baseline-$MODE.json" \
        --trace-json "$OUT/traces-$MODE.jsonl" > /dev/null
    PYTHONPATH=src python -m repro.bench \
        --check-baseline "$OUT/baseline-$MODE.json"
done

PYTHONPATH=src python benchmarks/bench_zonemaps.py --check --sf "$SF"
PYTHONPATH=src python benchmarks/bench_resilience.py --check --sf "$SF"
PYTHONPATH=src python benchmarks/bench_sharding.py --check --sf 0.01
PYTHONPATH=src python benchmarks/bench_writes.py --check --sf 0.01
PYTHONPATH=src python benchmarks/bench_recovery.py --check --sf 0.01
echo "smoke_baseline: OK (sf $SF, zone maps off+on, resilience," \
     "sharding, writes, recovery checks)"
