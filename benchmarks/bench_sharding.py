"""Sharded scatter-gather: shard elimination vs the single-stack scan.

One experiment, one artifact (``BENCH_sharding.json``): SSB flight 1
(the selective orderdate-driven filters) at ``--shards`` (default 4) vs
``shards=1``, on both engines:

* **Column store**: compression on (``tICL``) and off (``tIcL``).  With
  compression off the fact columns dominate I/O and eliminating shards
  wins strictly on every Q1.x.  With compression on the RLE columns are
  so small that re-reading each shard's replicated dimension copies can
  cost more pages than elimination saves — recorded honestly, not
  asserted.
* **Row store** (traditional design): with partition pruning disabled
  the full-heap scan shrinks to the surviving shards' heaps — strict
  wins on every Q1.x.  With the year-partitioned heaps pruning already
  (Section 6.2) the two mechanisms overlap; recorded, not asserted.

Every cell additionally verifies the sharding invariants: rows identical
to ``shards=1``, the merged ledger equal to the sum of the per-shard
span ledgers plus the elimination probes, ``Trace.verify`` clean on the
merged trace, and one ``shard:K`` span per shard.

``--check`` runs at a tiny scale factor and exits nonzero if any
invariant or expected strict win fails.  CI calls this via
``benchmarks/smoke_baseline.sh``.

Usage::

    PYTHONPATH=src python benchmarks/bench_sharding.py [--sf 0.05] [--out PATH]
    PYTHONPATH=src python benchmarks/bench_sharding.py --check [--sf 0.01]
"""

from __future__ import annotations

import argparse
import dataclasses
import json

from repro.bench.harness import Harness
from repro.core.config import ExecutionConfig
from repro.rowstore.designs import DesignKind
from repro.rowstore.engine import SystemX
from repro.ssb.queries import ALL_QUERIES

#: column-store configs measured: compression on / off
CS_CONFIGS = ("tICL", "tIcL")

#: settings where elimination must read strictly fewer pages on Q1.x
STRICT_QUERIES = ("Q1.1", "Q1.2", "Q1.3")
STRICT_SETTINGS = ("cs:tIcL", "rs:traditional:noprune")


def _verify_invariants(name: str, base_run, sharded_run, shards: int
                       ) -> None:
    """The sharding contract for one cell; raises SystemExit on breach."""
    if base_run.result.rows != sharded_run.result.rows:
        raise SystemExit(
            f"{name}: sharded rows differ from shards=1 — the gather "
            f"is wrong, not a perf issue")
    trace = sharded_run.trace
    trace.verify(sharded_run.stats)  # merged span tree vs flat ledger
    shard_spans = [s for s in trace.root.children
                   if s.name.startswith("shard:")]
    if len(shard_spans) != shards:
        raise SystemExit(
            f"{name}: expected {shards} shard spans, got "
            f"{[s.name for s in trace.root.children]}")
    merged = dataclasses.asdict(sharded_run.stats)
    summed: dict = {key: 0 for key in merged}
    for span in trace.root.children:  # shard:K spans + shard-elimination
        for key, value in dataclasses.asdict(span.stats).items():
            summed[key] += value
    if merged != summed:
        drift = {k: (merged[k], summed[k]) for k in merged
                 if merged[k] != summed[k]}
        raise SystemExit(f"{name}: merged ledger is not the sum of the "
                         f"per-shard ledgers: {drift}")


def _cell(name: str, query, setting: str, base_run, sharded_run,
          shards: int) -> dict:
    _verify_invariants(name, base_run, sharded_run, shards)
    report = sharded_run.shard_report
    return {
        "query": query.name,
        "setting": setting,
        "shards": shards,
        "executed_shards": list(report.executed),
        "eliminated_shards": list(report.eliminated),
        "pages_read_1": base_run.stats.pages_read,
        "pages_read_n": sharded_run.stats.pages_read,
        "bytes_read_1": base_run.stats.bytes_read,
        "bytes_read_n": sharded_run.stats.bytes_read,
        "seconds_1": base_run.seconds,
        "seconds_n": sharded_run.seconds,
        "synopsis_probes": sharded_run.stats.synopsis_probes,
    }


def run_cells(harness: Harness, shards: int) -> list:
    flight1 = [q for q in ALL_QUERIES if q.name.startswith("Q1.")]
    cells = []

    store = harness.cstore()
    for label in CS_CONFIGS:
        config = ExecutionConfig.from_label(label)
        sharded = dataclasses.replace(config, shards=shards)
        for query in flight1:
            base_run = store.execute(query, config)
            sharded_run = store.execute(query, sharded)
            setting = f"cs:{label}"
            cells.append(_cell(f"{query.name} [{setting}]", query, setting,
                               base_run, sharded_run, shards))

    design = DesignKind.TRADITIONAL
    rs1 = harness.system_x([design])
    rs_n = SystemX(harness.data, designs=[design],
                   zone_maps=harness.zone_maps, shards=shards)
    for prune, tag in ((False, "noprune"), (True, "prune")):
        for query in flight1:
            base_run = rs1.execute(query, design, prune_partitions=prune)
            sharded_run = rs_n.execute(query, design,
                                       prune_partitions=prune)
            setting = f"rs:traditional:{tag}"
            cells.append(_cell(f"{query.name} [{setting}]", query, setting,
                               base_run, sharded_run, shards))
    return cells


def check(cells: list) -> list:
    """Violated guarantees (empty list = pass).  Row identity, ledger
    additivity, and trace shape are enforced during the run; this checks
    the elimination contract on top."""
    problems = []
    for cell in cells:
        name = f"{cell['query']} [{cell['setting']}]"
        if cell["query"] in STRICT_QUERIES:
            if not cell["eliminated_shards"]:
                problems.append(
                    f"{name}: flight-1 filters eliminated no shard")
            if cell["setting"] in STRICT_SETTINGS and \
                    cell["pages_read_n"] >= cell["pages_read_1"]:
                problems.append(
                    f"{name}: expected a strict page win over shards=1, "
                    f"got {cell['pages_read_n']} vs "
                    f"{cell['pages_read_1']}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sf", type=float, default=0.05,
                        help="scale factor (default 0.05)")
    parser.add_argument("--shards", type=int, default=4,
                        help="shard count to compare against 1 (default 4)")
    parser.add_argument("--out", default="BENCH_sharding.json",
                        help="output path (default BENCH_sharding.json)")
    parser.add_argument("--check", action="store_true",
                        help="assert the elimination guarantees and exit "
                             "(no artifact written); meant for CI at a "
                             "small --sf")
    args = parser.parse_args(argv)
    if args.shards < 2:
        parser.error(f"--shards must be >= 2, got {args.shards}")

    print(f"generating SSB data at SF {args.sf} ...")
    harness = Harness(scale_factor=args.sf)
    cells = run_cells(harness, args.shards)
    problems = check(cells)

    if args.check:
        if problems:
            print(f"SHARDING CHECK FAILED — {len(problems)} problem(s):")
            for message in problems:
                print(f"  {message}")
            return 1
        print(f"sharding check passed: {len(cells)} cell(s); rows, "
              f"merged ledgers, and traces identical across shard "
              f"counts; elimination won strictly where required")
        return 0

    report = {
        "scale_factor": args.sf,
        "shards": args.shards,
        "cells": cells,
        "guarantees_hold": not problems,
        "problems": problems,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"\n{'query':7s} {'setting':22s} {'pages@1':>8s} "
          f"{'pages@N':>8s} {'executed':>9s} {'sec@1':>9s} {'sec@N':>9s}")
    for cell in cells:
        executed = f"{len(cell['executed_shards'])}/{cell['shards']}"
        print(f"{cell['query']:7s} {cell['setting']:22s} "
              f"{cell['pages_read_1']:8d} {cell['pages_read_n']:8d} "
              f"{executed:>9s} {cell['seconds_1']:8.4f}s "
              f"{cell['seconds_n']:8.4f}s")
    if problems:
        print(f"\nWARNING — {len(problems)} guarantee violation(s):")
        for message in problems:
            print(f"  {message}")
    print(f"wrote {args.out}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
