"""Figure 7: the C-Store optimization ablation (tICL .. Ticl).

The paper's central decomposition: compression ~2x on average (an order
of magnitude on flight 1's sorted columns), late materialization ~3x,
block iteration and the invisible join ~1.5x each, and the fully
stripped configuration (Ticl) an order of magnitude slower than full
C-Store — at which point the column store "acts like a row-store".
"""

import pytest

from repro.core.config import CONFIG_LADDER

_RESULTS = {}


@pytest.mark.parametrize("config", CONFIG_LADDER, ids=lambda c: c.label)
def test_figure7_config(benchmark, harness, queries, config):
    def run():
        return {q.name: harness.run_column_config(q, config)
                for q in queries}

    per_query = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[config.label] = per_query
    benchmark.extra_info["simulated_seconds_avg"] = \
        sum(per_query.values()) / len(per_query)
    benchmark.extra_info["simulated_seconds"] = per_query


def _avg(label):
    return sum(_RESULTS[label].values()) / len(_RESULTS[label])


def test_figure7_ladder_monotone_at_ends():
    if len(_RESULTS) < 7:
        pytest.skip("run the figure7 benchmarks first")
    assert _avg("tICL") == min(_avg(l) for l in _RESULTS)
    assert _avg("Ticl") == max(_avg(l) for l in _RESULTS)
    assert _avg("Ticl") / _avg("tICL") > 6.0  # paper: ~10x


def test_figure7_compression_factor():
    if len(_RESULTS) < 7:
        pytest.skip("run the figure7 benchmarks first")
    # compression ~2x on average...
    assert _avg("ticL") / _avg("tiCL") > 1.5
    # ...and an order of magnitude on the flight that reads the three
    # (secondarily) sorted columns
    flight1_sorted_gain = (_RESULTS["ticL"]["Q1.2"]
                           / _RESULTS["tICL"]["Q1.2"])
    assert flight1_sorted_gain > 5.0


def test_figure7_late_materialization_factor():
    if len(_RESULTS) < 7:
        pytest.skip("run the figure7 benchmarks first")
    assert _avg("Ticl") / _avg("TicL") > 1.8  # paper: ~2.6x


def test_figure7_invisible_join_factor():
    if len(_RESULTS) < 7:
        pytest.skip("run the figure7 benchmarks first")
    ratio = _avg("tiCL") / _avg("tICL")
    assert 1.1 < ratio < 4.0  # paper: 50-75%


def test_figure7_block_iteration_factor():
    if len(_RESULTS) < 7:
        pytest.skip("run the figure7 benchmarks first")
    with_comp = _avg("TICL") / _avg("tICL")
    without_comp = _avg("TicL") / _avg("ticL")
    assert 1.0 < without_comp < with_comp  # paper: 5-50%, larger with C
    # flight 1 under compression barely notices tuple-at-a-time
    # processing because selections run over a handful of RLE runs
    assert _RESULTS["TICL"]["Q1.2"] < 4 * _RESULTS["tICL"]["Q1.2"]
