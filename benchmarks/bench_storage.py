"""E5: Section 6.2's storage-size comparison.

Paper (SF 10): one VP column-table 0.7-1.1 GB (~16 bytes/value of header
+ rid + value), the traditional fact table ~4 GB compressed, a C-Store
int column 240 MB plain (4 bytes/value, no overhead), the whole C-Store
table 2.3 GB compressed, and the RLE'd orderdate column under 64 KB.
The byte-per-row ratios are scale-free, so they must hold here too.
"""

import pytest

from repro.bench.figures import storage_report


@pytest.fixture(scope="module")
def report(harness):
    return storage_report(harness)


def test_storage_report_bench(benchmark, harness):
    benchmark.extra_info["report"] = benchmark.pedantic(
        lambda: storage_report(harness), rounds=1, iterations=1)


def test_vp_column_overhead_ratio(report):
    """A VP column-table stores ~16 bytes per 4-byte value — the paper's
    'scanning just four of the columns ... will take as long as scanning
    the entire fact table'."""
    rows = report["fact rows"]
    one_column_mb = report["vertical partition: one int column-table"]
    bytes_per_value = one_column_mb * 1024 * 1024 / rows
    assert 15.0 <= bytes_per_value <= 18.0


def test_four_vp_columns_cost_a_fact_scan(report):
    four_columns = 4 * report["vertical partition: one int column-table"]
    traditional = report["row-store fact heap (traditional)"]
    assert 0.5 <= four_columns / traditional <= 1.5


def test_cstore_column_has_no_overhead(report):
    rows = report["fact rows"]
    plain_mb = report["C-Store one int column (uncompressed)"]
    bytes_per_value = plain_mb * 1024 * 1024 / rows
    assert 3.9 <= bytes_per_value <= 4.5  # 4 bytes + page slack


def test_cstore_compresses_fact_table(report):
    assert report["C-Store fact projection (compressed)"] < \
        0.6 * report["C-Store fact projection (uncompressed)"]


def test_orderdate_column_tiny(report):
    """The paper's '<64 KB' claim for the RLE'd sort column: scale-free
    equivalent is bytes proportional to distinct dates, not rows."""
    mb = report["C-Store orderdate column (compressed, RLE)"]
    assert mb * 1024 <= 64  # KB


def test_vp_total_exceeds_traditional(report):
    assert report["vertical partition: all 17 column-tables"] > \
        2 * report["row-store fact heap (traditional)"]
