"""Ablation benches for the design choices DESIGN.md calls out.

* E7 — orderdate-year partition pruning is worth ~2x for the row store
  (Section 6.1).
* E9 — between-predicate rewriting inside the invisible join ("often
  yields a significant performance gain", Section 5.4.2).
* Position-list representations: range vs bitmap vs array intersection.
* Buffer pool size: "different sizes did not yield large differences"
  (Section 6.2).
* Codec choice: auto-selection vs forcing plain on the fact columns.
"""

import dataclasses

import numpy as np
import pytest

from repro.colstore.positions import (
    ArrayPositions,
    BitmapPositions,
    RangePositions,
    intersect,
)
from repro.core.config import ExecutionConfig
from repro.rowstore.designs import DesignKind
from repro.rowstore.engine import SystemX
from repro.simio.stats import QueryStats
from repro.ssb import query_by_name


# --------------------------------------------------------------------- #
# E7: partition pruning
# --------------------------------------------------------------------- #
def test_partition_pruning_factor(benchmark, harness):
    """Queries restricting orderdate speed up ~flights' pruned share;
    the paper reports ~2x on average across the workload."""
    pruned_queries = ["Q1.1", "Q1.2", "Q1.3", "Q3.4", "Q4.2", "Q4.3"]

    def run():
        out = {}
        for name in pruned_queries:
            q = query_by_name(name)
            out[name] = (
                harness.run_row_design(q, DesignKind.TRADITIONAL,
                                       prune_partitions=True),
                harness.run_row_design(q, DesignKind.TRADITIONAL,
                                       prune_partitions=False),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    factors = [unpruned / pruned for pruned, unpruned in results.values()]
    benchmark.extra_info["pruning_factors"] = dict(
        zip(pruned_queries, factors))
    assert min(factors) > 1.5
    assert sum(factors) / len(factors) > 2.0


# --------------------------------------------------------------------- #
# E9: between-predicate rewriting
# --------------------------------------------------------------------- #
def test_between_rewrite_gain(benchmark, harness, queries):
    """Invisible join with vs without between-predicate rewriting: the
    rewrite replaces hash probes with range checks on every query."""
    with_rewrite = ExecutionConfig.baseline()
    without = dataclasses.replace(with_rewrite, between_rewriting=False)

    def run():
        on = {q.name: harness.run_column_config(q, with_rewrite)
              for q in queries}
        off = {q.name: harness.run_column_config(q, without)
               for q in queries}
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    avg_on = sum(on.values()) / len(on)
    avg_off = sum(off.values()) / len(off)
    benchmark.extra_info["gain"] = avg_off / avg_on
    assert avg_off > 1.15 * avg_on
    # and never a regression on any query beyond noise
    assert all(off[q] >= 0.95 * on[q] for q in on)


# --------------------------------------------------------------------- #
# position-list representations
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", ["range", "bitmap", "array"])
def test_position_intersection_cost(benchmark, kind):
    """Ranges intersect in O(1); bitmaps per word; arrays per element —
    the representation hierarchy of Section 5.2."""
    n = 1_000_000
    rng = np.random.default_rng(0)
    if kind == "range":
        a, b = RangePositions(0, n), RangePositions(n // 2, n)
    elif kind == "bitmap":
        a = BitmapPositions(0, rng.random(n) < 0.5)
        b = BitmapPositions(0, rng.random(n) < 0.5)
    else:
        a = ArrayPositions(np.flatnonzero(rng.random(n) < 0.05)
                           .astype(np.int64))
        b = ArrayPositions(np.flatnonzero(rng.random(n) < 0.05)
                           .astype(np.int64))

    stats = QueryStats()
    out = benchmark(lambda: intersect(a, b, stats))
    benchmark.extra_info["position_ops_per_call"] = stats.position_ops
    assert out.count >= 0


def test_position_representation_charges():
    stats = QueryStats()
    n = 1_000_000
    intersect(RangePositions(0, n), RangePositions(1, n), stats)
    range_ops = stats.position_ops
    stats.reset()
    bits = np.ones(n, dtype=bool)
    bits[::3] = False
    intersect(BitmapPositions(0, bits), BitmapPositions(0, ~bits), stats)
    bitmap_ops = stats.position_ops
    stats.reset()
    arr = np.arange(0, n, 2, dtype=np.int64)
    intersect(ArrayPositions(arr), ArrayPositions(arr + 1), stats)
    array_ops = stats.position_ops
    assert range_ops < bitmap_ops < array_ops


# --------------------------------------------------------------------- #
# buffer pool sweep
# --------------------------------------------------------------------- #
def test_buffer_pool_insensitivity(benchmark, harness):
    """Section 6.2: buffer pool size barely matters because the scans
    exceed it."""
    q = query_by_name("Q2.1")

    def run():
        out = {}
        for pool_mb in (1, 4, 16):
            engine = SystemX(harness.data,
                             designs=[DesignKind.TRADITIONAL],
                             buffer_pool_bytes=pool_mb * 1024 * 1024)
            out[pool_mb] = engine.execute(q, DesignKind.TRADITIONAL).seconds
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    times = list(results.values())
    benchmark.extra_info["seconds_by_pool_mb"] = results
    assert max(times) < 1.3 * min(times)


# --------------------------------------------------------------------- #
# codec choice
# --------------------------------------------------------------------- #
def test_codec_choice_beats_forced_plain(benchmark, harness):
    """Auto codec selection vs storing everything plain: flight 1 pays
    the full order-of-magnitude penalty when RLE is taken away."""
    compressed = ExecutionConfig.from_label("tICL")
    plain = ExecutionConfig.from_label("ticL")

    def run():
        q = query_by_name("Q1.2")
        return (harness.run_column_config(q, compressed),
                harness.run_column_config(q, plain))

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["gain"] = slow / fast
    assert slow > 4 * fast


# --------------------------------------------------------------------- #
# redundant projections (the C-Store feature the paper forgoes, §5.1)
# --------------------------------------------------------------------- #
def test_extra_projection_gain(benchmark, harness):
    """Adding a custkey-sorted fact projection accelerates flight 3
    (customer-restricted queries) — the paper notes it stores only one
    sort order and therefore leaves this win on the table."""
    from repro.colstore.engine import CStore
    from repro.storage.colfile import CompressionLevel

    base_store = CStore(harness.data, levels=[CompressionLevel.MAX])
    extra_store = CStore(harness.data, levels=[CompressionLevel.MAX])
    extra_store.add_projection("lineorder", ("custkey", "suppkey"))
    flight3 = [query_by_name(n) for n in ("Q3.1", "Q3.2", "Q3.3", "Q3.4")]

    def run():
        base = {q.name: base_store.execute(q).seconds for q in flight3}
        extra = {q.name: extra_store.execute(q).seconds for q in flight3}
        return base, extra

    base, extra = benchmark.pedantic(run, rounds=1, iterations=1)
    gains = {q: base[q] / extra[q] for q in base}
    benchmark.extra_info["gains"] = gains
    benchmark.extra_info["storage_overhead"] = (
        extra_store.storage_bytes() / base_store.storage_bytes())
    # selective flight-3 queries benefit; none regress meaningfully
    assert gains["Q3.2"] > 1.2
    assert min(gains.values()) > 0.9


# --------------------------------------------------------------------- #
# sorted-column binary search (extension; the paper's C-Store scans)
# --------------------------------------------------------------------- #
def test_sorted_binary_search_gain(benchmark, harness):
    """Resolving the rewritten orderdate predicate by binary search
    instead of a column scan — a post-paper optimization, biggest when
    compression is off and the sort column would otherwise be scanned
    in full."""
    plain = ExecutionConfig.from_label("tIcL")
    searched = dataclasses.replace(plain, sorted_binary_search=True)
    flight1 = [query_by_name(n) for n in ("Q1.1", "Q1.2", "Q1.3")]

    def run():
        base = {q.name: harness.run_column_config(q, plain)
                for q in flight1}
        fast = {q.name: harness.run_column_config(q, searched)
                for q in flight1}
        return base, fast

    base, fast = benchmark.pedantic(run, rounds=1, iterations=1)
    gains = {q: base[q] / fast[q] for q in base}
    benchmark.extra_info["gains"] = gains
    assert all(g >= 1.0 for g in gains.values())
    assert max(gains.values()) > 1.2


# --------------------------------------------------------------------- #
# VP position joins: hash (what System X did) vs merge (what it could do)
# --------------------------------------------------------------------- #
def test_vp_merge_join_gain(benchmark, harness):
    """Section 6.2.2: 'System X could be tricked into ... a merge join
    (without a sort)' — quantify what that would have bought."""
    flight2 = [query_by_name(n) for n in ("Q2.1", "Q2.2", "Q2.3")]

    def run():
        engine = harness.system_x([DesignKind.VERTICAL_PARTITIONING,
                                   DesignKind.TRADITIONAL])
        hash_cost = sum(
            engine.execute(q, DesignKind.VERTICAL_PARTITIONING,
                           vp_join="hash").seconds for q in flight2)
        merge_cost = sum(
            engine.execute(q, DesignKind.VERTICAL_PARTITIONING,
                           vp_join="merge").seconds for q in flight2)
        t_cost = sum(engine.execute(q, DesignKind.TRADITIONAL).seconds
                     for q in flight2)
        return hash_cost, merge_cost, t_cost

    hash_cost, merge_cost, t_cost = benchmark.pedantic(run, rounds=1,
                                                       iterations=1)
    benchmark.extra_info["hash_over_merge"] = hash_cost / merge_cost
    benchmark.extra_info["merge_over_traditional"] = merge_cost / t_cost
    assert merge_cost < hash_cost           # merge joins help VP...
    assert merge_cost > 0.8 * t_cost        # ...but VP still cannot win


# --------------------------------------------------------------------- #
# predicate application strategy (Section 5.4's two alternatives)
# --------------------------------------------------------------------- #
def test_pipelined_vs_parallel_predicates(benchmark, harness, queries):
    pipelined = ExecutionConfig.baseline()
    parallel = dataclasses.replace(pipelined, pipelined_predicates=False)

    def run():
        piped = {q.name: harness.run_column_config(q, pipelined)
                 for q in queries}
        par = {q.name: harness.run_column_config(q, parallel)
               for q in queries}
        return piped, par

    piped, par = benchmark.pedantic(run, rounds=1, iterations=1)
    avg_piped = sum(piped.values()) / len(piped)
    avg_par = sum(par.values()) / len(par)
    benchmark.extra_info["parallel_over_pipelined"] = avg_par / avg_piped
    # pipelining never loses and wins clearly on the selective queries
    assert avg_par >= avg_piped
    assert par["Q1.3"] > 1.2 * piped["Q1.3"]


# --------------------------------------------------------------------- #
# warm vs cold buffer pool (Section 6.1's measurement protocol)
# --------------------------------------------------------------------- #
def test_warm_pool_gain(benchmark, harness):
    """The paper ran on warm pools, worth ~30% but 'not particularly
    dramatic because the amount of data read by each query exceeds the
    size of the buffer pool' — with the pool scaled to 0.5% of the data
    the same logic bounds the gain here."""
    engine = harness.system_x([DesignKind.TRADITIONAL])
    q = query_by_name("Q2.1")

    def run():
        cold = engine.execute(q, DesignKind.TRADITIONAL).seconds
        engine.execute(q, DesignKind.TRADITIONAL, cold_pool=False)
        warm = engine.execute(q, DesignKind.TRADITIONAL,
                              cold_pool=False).seconds
        return cold, warm

    cold, warm = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["warm_gain"] = cold / warm
    assert warm <= cold            # warmth never hurts
    assert warm > 0.5 * cold       # and cannot be dramatic (pool << data)


# --------------------------------------------------------------------- #
# super tuples (Halverson et al.; the paper's conclusion list)
# --------------------------------------------------------------------- #
def test_super_tuple_vp_gain(benchmark, harness):
    """Header-free, position-implicit, block-scanned vertical partitions:
    the storage/executor improvements the conclusion says a row store
    needs.  They rescue VP — and still lose to full C-Store, which is
    the paper's whole point: storage layout alone is not enough."""
    from repro.core.config import ExecutionConfig

    engine = harness.system_x([DesignKind.VERTICAL_PARTITIONING,
                               DesignKind.TRADITIONAL])
    store = harness.cstore()
    qs = [query_by_name(n) for n in ("Q2.1", "Q3.1", "Q4.1")]

    def run():
        vp = sum(engine.execute(
            q, DesignKind.VERTICAL_PARTITIONING).seconds for q in qs)
        sup = sum(engine.execute(
            q, DesignKind.VERTICAL_PARTITIONING, vp_super_tuples=True,
            vp_join="merge").seconds for q in qs)
        t = sum(engine.execute(q, DesignKind.TRADITIONAL).seconds
                for q in qs)
        cs = sum(store.execute(q).seconds for q in qs)
        return vp, sup, t, cs

    vp, sup, t, cs = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["vp_over_super"] = vp / sup
    benchmark.extra_info["super_over_full_cstore"] = sup / cs
    assert sup < 0.5 * vp      # super tuples rescue VP...
    assert sup < t             # ...even past the traditional design...
    assert sup > 2 * cs        # ...but never reach full C-Store
