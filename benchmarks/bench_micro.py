"""Microbenchmarks of the substrate (real wall-clock via pytest-benchmark):
codec encode/decode throughput, B+Tree operations, heap scans, and the
SSB generator itself."""

import numpy as np
import pytest

from repro.rowstore.btree import BPlusTree
from repro.simio.buffer_pool import BufferPool
from repro.simio.disk import SimulatedDisk
from repro.simio.stats import QueryStats
from repro.ssb.generator import generate
from repro.storage.colfile import ColumnFile, CompressionLevel
from repro.storage.column import Column
from repro.storage.encodings import (
    BitPackCodec,
    DeltaCodec,
    DictionaryCodec,
    PlainCodec,
    RleCodec,
    decode_payload,
)
from repro.types import int32

N = 200_000


@pytest.fixture(scope="module")
def int_data():
    rng = np.random.default_rng(0)
    return {
        "random": rng.integers(0, 2**28, N).astype(np.int32),
        "sorted": np.sort(rng.integers(0, 2**28, N)).astype(np.int32),
        "lowcard": rng.integers(0, 16, N).astype(np.int32),
        "runs": np.repeat(np.arange(N // 1000, dtype=np.int32), 1000),
    }


_CODEC_INPUTS = [
    ("plain", PlainCodec(), "random"),
    ("rle", RleCodec(), "runs"),
    ("bitpack", BitPackCodec(), "lowcard"),
    ("delta", DeltaCodec(), "sorted"),
    ("dictionary", DictionaryCodec(), "lowcard"),
]


@pytest.mark.parametrize("name,codec,key", _CODEC_INPUTS,
                         ids=[n for n, _c, _k in _CODEC_INPUTS])
def test_codec_encode(benchmark, int_data, name, codec, key):
    values = int_data[key]
    framed = benchmark(lambda: codec.frame(values))
    benchmark.extra_info["bytes_per_value"] = len(framed) / N


@pytest.mark.parametrize("name,codec,key", _CODEC_INPUTS,
                         ids=[n for n, _c, _k in _CODEC_INPUTS])
def test_codec_decode(benchmark, int_data, name, codec, key):
    framed = codec.frame(int_data[key])
    out = benchmark(lambda: decode_payload(framed))
    assert len(out) == N


def test_btree_bulk_load(benchmark, int_data):
    rids = np.arange(N, dtype=np.int32)

    def build():
        disk = SimulatedDisk(QueryStats())
        return BPlusTree.build(disk, "idx", int_data["random"], rids)

    tree = benchmark.pedantic(build, rounds=3, iterations=1)
    assert tree.num_entries == N


def test_btree_point_lookup(benchmark, int_data):
    disk = SimulatedDisk(QueryStats())
    tree = BPlusTree.build(disk, "idx", int_data["random"],
                           np.arange(N, dtype=np.int32))
    pool = BufferPool(disk, 64 * 1024 * 1024)
    key = int(int_data["random"][N // 2])
    rids = benchmark(lambda: tree.lookup(pool, key))
    assert len(rids) >= 1


def test_colfile_scan(benchmark, int_data):
    disk = SimulatedDisk(QueryStats())
    col = Column.from_ints("v", int_data["sorted"], int32())
    f = ColumnFile.load(disk, "c", col, CompressionLevel.MAX)
    pool = BufferPool(disk, 64 * 1024 * 1024)
    out = benchmark(lambda: f.read_all(pool))
    assert len(out) == N


@pytest.fixture(scope="module")
def group_matrix():
    """Realistic grouped-aggregation input: SSBM flight-4-style group
    codes (year x nation x category) over N surviving rows."""
    rng = np.random.default_rng(3)
    return np.stack([
        rng.integers(1997, 2004, N).astype(np.int64),
        rng.integers(0, 25, N).astype(np.int64),
        rng.integers(0, 25, N).astype(np.int64),
    ])


def test_group_factorize_packed(benchmark, group_matrix):
    """Packed-key factorization (the grouped_aggregate fast path)."""
    from repro.colstore.operators.aggregate import factorize_groups

    uniq, inverse = benchmark(lambda: factorize_groups(group_matrix))
    ref_uniq, ref_inverse = np.unique(group_matrix, axis=1,
                                      return_inverse=True)
    assert np.array_equal(uniq, ref_uniq)
    assert np.array_equal(inverse, np.ravel(ref_inverse))
    benchmark.extra_info["num_groups"] = int(uniq.shape[1])


def test_group_factorize_axis_unique(benchmark, group_matrix):
    """The np.unique(axis=1) path factorize_groups replaced (baseline)."""
    uniq, _inverse = benchmark(
        lambda: np.unique(group_matrix, axis=1, return_inverse=True))
    benchmark.extra_info["num_groups"] = int(uniq.shape[1])


def test_generator_throughput(benchmark):
    data = benchmark.pedantic(lambda: generate(0.01, seed=7), rounds=3,
                              iterations=1)
    assert data.lineorder.num_rows == 60_000
