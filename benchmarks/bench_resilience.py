"""Chaos soak for the service resilience layer: breakers, shedding,
degraded serving.

Grid mode crosses named fault profiles with client counts and the
resilience layer on/off, runs a discount-heavy workload through a
:class:`QueryService` per cell, and writes ``BENCH_resilience.json``
with availability, p99 latency, shed rate, degraded-hit and breaker
counts per cell.

``--check`` runs the deterministic single-client scenario under the
``persistent`` profile (a dead region in every discount column) and
exits nonzero unless the resilience layer *strictly* reduces the error
rate and *strictly* raises availability versus the resilience-off run,
every degraded answer matches the healthy engine's rows, and a
fault-free service run stays byte-identical to a direct engine call
with every resilience counter at zero.  CI calls this via
``benchmarks/smoke_baseline.sh``.

``--fault-profile list`` prints the named profiles and exits.

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py [--sf 0.004] [--out PATH]
    PYTHONPATH=src python benchmarks/bench_resilience.py --check [--sf 0.004]
    PYTHONPATH=src python benchmarks/bench_resilience.py --fault-profile list
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import threading

import numpy as np

from repro.bench.harness import Harness
from repro.core.config import ExecutionConfig
from repro.errors import ReproError
from repro.plan.logical import AggExpr, ColumnRef, Comparison, CompareOp, \
    StarQuery
from repro.serve.service import QueryService, ServiceConfig
from repro.simio.faults import PROFILES, PROFILE_NOTES, \
    injector_from_profile

#: fault profiles exercised by the soak grid (``--check`` uses only the
#: persistent one, the scenario breakers exist for)
SOAK_PROFILES = ("transient", "persistent")
SOAK_CLIENTS = (1, 4)

#: orderdate cut points chosen against the SF 0.004 projection geometry
#: (8186 values per uncompressed 32 KB page): ``V_MID``/``V_A`` keep
#: surviving positions spanning into discount page 1 (the dead region),
#: ``V_B`` keeps them inside clean page 0
V_MID = 19950510
V_A = 19941005
V_B = 19930825


def _lo(column: str) -> ColumnRef:
    return ColumnRef("lineorder", column)


def _query(name: str, predicates) -> StarQuery:
    return StarQuery(
        name=name, fact_table="lineorder", joins={},
        predicates=tuple(predicates), group_by=(),
        aggregates=(AggExpr("sum", _lo("extendedprice"), "revenue"),))


def build_workload() -> list:
    """The deterministic scenario: one healthy broad query that seeds a
    position cache entry, three unsubsumable probes that trip the
    breaker, one variant whose re-filter needs the dead region, and six
    variants the cache can serve honestly from clean pages."""
    broad = _query("broad", [
        Comparison(_lo("orderdate"), CompareOp.LE, V_MID)])
    probes = [_query(f"probe{k}", [
        Comparison(_lo("discount"), CompareOp.GE, k)]) for k in (1, 2, 3)]
    var_a = _query("varA", [
        Comparison(_lo("orderdate"), CompareOp.LE, V_A),
        Comparison(_lo("discount"), CompareOp.GE, 4)])
    var_b = [_query(f"varB{k}", [
        Comparison(_lo("orderdate"), CompareOp.LE, V_B),
        Comparison(_lo("discount"), CompareOp.GE, k)])
        for k in (1, 2, 3, 4, 5, 6)]
    return [broad] + probes + [var_a] + var_b


def session_config() -> ExecutionConfig:
    """Compression off (one value per 4 bytes, so the dead region is a
    fixed position range) and parallel-AND predicates (every predicate
    column is scanned in full, Section 5.4 ablation) — full runs must
    touch the dead region, re-filters of narrow variants must not."""
    return dataclasses.replace(ExecutionConfig.baseline(),
                               compression=False,
                               pipelined_predicates=False)


def service_config(resilience: bool, clients: int = 1) -> ServiceConfig:
    return ServiceConfig(
        max_in_flight=2 if clients > 1 else 4,
        cache_admit_seconds=0.0,
        breakers=resilience,
        degraded_serving=resilience,
        # far beyond the workload's simulated seconds: the breaker must
        # stay open for the whole scenario, no half-open trials
        breaker_cooldown=1000.0,
        shed_threshold=0.5 if (resilience and clients > 1) else None,
    )


def run_cell(scale_factor: float, profile: str, clients: int,
             resilience: bool, seed: int, rounds: int = 1) -> dict:
    """One soak cell: ``clients`` threads replaying the workload against
    a freshly corrupted store, resilience layer on or off."""
    harness = Harness(scale_factor=scale_factor)
    store = harness.cstore()
    service = QueryService(cstore=store,
                           config=service_config(resilience, clients))
    config = session_config()
    sessions = [
        service.session(f"client{i}", engine="cs", config=config,
                        priority=1 if i == 0 else 0)
        for i in range(clients)
    ]
    workload = build_workload()

    # every client warms the cache with the broad query pre-fault, so
    # degraded serving has something honest to answer from
    sessions[0].execute(workload[0])
    injector_from_profile(profile, seed=seed).install(store.disk)

    lock = threading.Lock()
    outcomes: list = []

    def client(session) -> None:
        for _ in range(rounds):
            for query in workload[1:]:
                try:
                    run = session.execute(query)
                    record = ("ok", query.name, run.source, run.degraded,
                              run.wall_seconds)
                except ReproError as error:
                    record = ("err", query.name, type(error).__name__,
                              False, 0.0)
                with lock:
                    outcomes.append(record)

    threads = [threading.Thread(target=client, args=(s,))
               for s in sessions]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    snap = service.stats.snapshot()
    walls = [o[4] for o in outcomes if o[0] == "ok"] or [0.0]
    total = len(outcomes)
    ok = sum(1 for o in outcomes if o[0] == "ok")
    return {
        "profile": profile,
        "clients": clients,
        "resilience": resilience,
        "queries": total,
        "ok": ok,
        "errors": total - ok,
        "availability": ok / total if total else 1.0,
        "error_rate": (total - ok) / total if total else 0.0,
        "p99_wall_seconds": float(np.percentile(walls, 99)),
        "shed": snap["shed"],
        "shed_rate": snap["shed"] / total if total else 0.0,
        "degraded_hits": snap["degraded_hits"],
        "breaker_opens": snap["breaker_opens"],
        "breaker_rejections": snap["breaker_rejections"],
        "breaker_states": service.serve_stats()["resilience"]["breakers"],
        "outcomes": [
            {"status": o[0], "query": o[1], "detail": o[2],
             "degraded": bool(o[3])}
            for o in outcomes
        ],
    }


# ---------------------------------------------------------------------- #
# --check: the strict-improvement contract
# ---------------------------------------------------------------------- #
def check(scale_factor: float, seed: int) -> list:
    """Violated guarantees (empty list = pass)."""
    problems = []

    # healthy reference rows for every workload query
    healthy = Harness(scale_factor=scale_factor)
    store = healthy.cstore()
    config = session_config()
    expected = {q.name: store.execute(q, config).result
                for q in build_workload()}

    cells = {
        resilience: run_cell(scale_factor, "persistent", clients=1,
                             resilience=resilience, seed=seed)
        for resilience in (False, True)
    }
    off, on = cells[False], cells[True]

    if on["error_rate"] >= off["error_rate"]:
        problems.append(
            f"resilience did not strictly reduce the error rate: "
            f"{on['error_rate']:.3f} (on) vs {off['error_rate']:.3f} (off)")
    if on["availability"] <= off["availability"]:
        problems.append(
            f"resilience did not strictly raise availability: "
            f"{on['availability']:.3f} (on) vs "
            f"{off['availability']:.3f} (off)")
    if on["breaker_opens"] < 1:
        problems.append("the persistent profile never opened a breaker")
    if on["degraded_hits"] < 1:
        problems.append("no query was served degraded from the cache")
    if off["degraded_hits"] or off["breaker_opens"] or off["shed"]:
        problems.append(
            "the resilience-off cell shows breaker/degraded/shed activity")

    # degraded answers must be honest: same rows the healthy engine gives
    harness = Harness(scale_factor=scale_factor)
    store = harness.cstore()
    service = QueryService(cstore=store,
                           config=service_config(resilience=True))
    session = service.session("client", engine="cs", config=config)
    workload = build_workload()
    session.execute(workload[0])
    injector_from_profile("persistent", seed=seed).install(store.disk)
    for query in workload[1:]:
        try:
            run = session.execute(query)
        except ReproError:
            continue
        if not run.degraded:
            continue
        if not run.result.same_rows(expected[query.name]):
            problems.append(
                f"degraded answer for {query.name} differs from the "
                f"healthy engine's rows — degraded serving is dishonest")

    # fault-free honesty: with the cache off, a service ledger must stay
    # byte-identical to a direct engine call, resilience layer and all
    harness = Harness(scale_factor=scale_factor)
    store = harness.cstore()
    query = build_workload()[0]
    direct = store.execute(query, config)
    service = QueryService(
        cstore=store,
        config=dataclasses.replace(service_config(resilience=True),
                                   cache=False))
    session = service.session("client", engine="cs", config=config)
    run = session.execute(query)
    if run.stats.snapshot() != direct.stats.snapshot():
        problems.append(
            "fault-free service ledger is not byte-identical to a "
            "direct engine call")
    snap = service.stats.snapshot()
    for counter in ("shed", "cancelled", "degraded_hits", "breaker_opens",
                    "breaker_half_opens", "breaker_closes",
                    "breaker_rejections"):
        if snap[counter]:
            problems.append(
                f"fault-free run left resilience counter "
                f"{counter}={snap[counter]} (expected 0)")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sf", type=float, default=0.004,
                        help="scale factor (default 0.004; the scenario's "
                             "page geometry is tuned for it)")
    parser.add_argument("--out", default="BENCH_resilience.json",
                        help="output path (default BENCH_resilience.json)")
    parser.add_argument("--seed", type=int, default=7,
                        help="fault-injection seed (default 7)")
    parser.add_argument("--fault-profile", default=None,
                        help="soak only this profile, or 'list' to print "
                             "the named profiles and exit")
    parser.add_argument("--check", action="store_true",
                        help="assert the strict-improvement contract and "
                             "exit (no artifact written); meant for CI")
    args = parser.parse_args(argv)

    if args.fault_profile == "list":
        for name in sorted(PROFILES):
            print(f"{name:12s} {PROFILE_NOTES.get(name, '')}")
        return 0
    if args.fault_profile is not None and args.fault_profile not in PROFILES:
        raise SystemExit(
            f"unknown fault profile {args.fault_profile!r}; choices are "
            f"{sorted(PROFILES)} (or 'list')")

    if args.check:
        problems = check(args.sf, args.seed)
        if problems:
            print(f"RESILIENCE CHECK FAILED — {len(problems)} problem(s):")
            for message in problems:
                print(f"  {message}")
            return 1
        print("resilience check passed: breakers strictly reduced the "
              "error rate under persistent corruption, degraded answers "
              "matched the healthy rows, and the fault-free ledger "
              "stayed byte-identical")
        return 0

    profiles = (args.fault_profile,) if args.fault_profile \
        else SOAK_PROFILES
    cells = []
    for profile in profiles:
        for clients in SOAK_CLIENTS:
            for resilience in (False, True):
                print(f"soak: profile={profile} clients={clients} "
                      f"resilience={'on' if resilience else 'off'} ...")
                cells.append(run_cell(args.sf, profile, clients,
                                      resilience, args.seed))
    report = {
        "schema": "repro-resilience-v1",
        "scale_factor": args.sf,
        "seed": args.seed,
        "cells": [
            {k: v for k, v in cell.items() if k != "outcomes"}
            for cell in cells
        ],
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"\n{'profile':11s} {'cl':>2s} {'resil':5s} {'avail':>6s} "
          f"{'errors':>6s} {'shed':>4s} {'degr':>4s} {'p99':>9s}")
    for cell in report["cells"]:
        print(f"{cell['profile']:11s} {cell['clients']:2d} "
              f"{'on' if cell['resilience'] else 'off':5s} "
              f"{cell['availability']:6.3f} {cell['errors']:6d} "
              f"{cell['shed']:4d} {cell['degraded_hits']:4d} "
              f"{cell['p99_wall_seconds']:8.4f}s")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
