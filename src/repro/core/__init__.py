"""The paper's primary contribution: the invisible join, its
between-predicate rewriting, and the ablation configuration that turns
C-Store's optimizations off one by one (Section 6.3.2).
"""

from .config import ExecutionConfig, CONFIG_LADDER
from .invisible_join import InvisibleJoin, DimensionFilter, JoinStrategy

__all__ = [
    "ExecutionConfig",
    "CONFIG_LADDER",
    "InvisibleJoin",
    "DimensionFilter",
    "JoinStrategy",
]
