"""The invisible join (Section 5.4) and its late-materialized fallback.

The invisible join rewrites star-schema foreign-key joins into predicates
on the fact table's FK columns, in three phases:

1. **Dimension filtering** — each dimension's predicates are evaluated
   column-at-a-time, producing a position list over the dimension.  The
   surviving keys either form a contiguous range — in which case the fact
   predicate is rewritten as a **between predicate** (Section 5.4.2) —
   or they are collected into a hash set.
2. **Fact predicate application** — every rewritten join predicate and
   every native fact predicate is applied to its FK/fact column,
   producing position lists that are intersected (bitmap ANDs, range
   clips).  Application is pipelined: each predicate scans only the
   blocks overlapping the bounds of the intersection so far.
3. **Extraction** — only after all predicates are applied are dimension
   rows resolved for the surviving positions.  Contiguous dimension keys
   make this a subtraction ("a fast array look-up"); the date table's
   yyyymmdd keys require a real lookup, charged as hash probes.

Between-predicate rewriting requires no optimizer support: phase 1
detects at run time whether the surviving positions are contiguous and
whether the key column is monotonic, exactly as the paper describes.

:class:`LateMaterializedJoin` is the fallback C-Store uses when the
invisible join is disabled (the ``i`` configurations): the same late
position-list machinery, but every join probes a hash table (no between
rewriting) and dimension values are extracted out-of-order mid-plan —
the two costs the invisible join exists to avoid.
"""

from __future__ import annotations

import enum

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..plan.logical import Predicate, StarQuery
from ..simio.buffer_pool import BufferPool
from ..simio.stats import QueryStats
from ..storage.colfile import CompressionLevel
from ..storage.column import Column
from ..storage.projection import Projection
from ..colstore.operators.fetch import fetch_values, read_column
from ..colstore.operators.join import dimension_rows_for_keys
from ..colstore.operators.scan import (
    predicate_positions,
    probe_positions,
    sorted_predicate_positions,
    stored_bounds,
)
from ..colstore.positions import (
    ArrayPositions,
    EMPTY,
    Positions,
    RangePositions,
    intersect,
)
from .config import ExecutionConfig

from ..obs import span_context

if TYPE_CHECKING:  # avoid an import at module load; only used for typing
    from ..colstore.parallel import MorselEngine
    from ..obs import Tracer


class JoinStrategy(enum.Enum):
    """How one dimension's join predicate is applied to the fact table."""

    BETWEEN = "between"   # contiguous keys -> between-predicate rewrite
    HASH = "hash"         # hash-set membership probe
    NONE = "none"         # dimension has no predicates (extraction only)


@dataclass
class DimensionFilter:
    """Phase-1 output for one dimension."""

    dimension: str
    strategy: JoinStrategy
    positions: Positions
    selectivity: float
    #: inclusive FK bounds when strategy is BETWEEN
    key_bounds: Optional[Tuple[int, int]] = None
    #: sorted surviving keys when strategy is HASH
    key_set: Optional[np.ndarray] = None


@dataclass
class DimensionSide:
    """Static description of one dimension the join can touch."""

    name: str
    projection: Projection
    key_column: str
    catalog: Dict[str, Column]
    #: first key value when keys are contiguous (enables array extraction)
    contiguous_from: Optional[int]
    #: True when the key column is monotonically non-decreasing in
    #: position order (holds for contiguous keys and for the date table)
    key_monotonic: bool


class _JoinBase:
    """Shared machinery of the invisible and late-materialized joins."""

    def __init__(
        self,
        pool: BufferPool,
        config: ExecutionConfig,
        fact_projection: Projection,
        dims: Dict[str, DimensionSide],
        query: StarQuery,
        level: CompressionLevel,
        engine: Optional["MorselEngine"] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.pool = pool
        self.config = config
        self.fact = fact_projection
        self.dims = dims
        self.query = query
        self.level = level
        #: morsel engine for fact-table scans and fetches (None = serial).
        #: Dimension-side work stays serial: dimension tables are small
        #: and phase 1 is never the bottleneck.
        self.engine = engine
        #: optional span tracer; the three join phases open one span each
        self.tracer = tracer

    def _span(self, name: str):
        return span_context(self.tracer, name)

    @property
    def stats(self) -> QueryStats:
        return self.pool.stats

    # ------------------------------------------------------------------ #
    # fact-side operator dispatch (serial or morsel-parallel)
    # ------------------------------------------------------------------ #
    def _fact_predicate_scan(self, colfile, domain, restrict) -> Positions:
        if self.engine is not None:
            return self.engine.predicate_scan(colfile, domain,
                                              restrict=restrict)
        return predicate_positions(colfile, self.pool, domain, self.config,
                                   restrict=restrict)

    def _fact_probe_scan(self, colfile, key_set, restrict) -> Positions:
        if self.engine is not None:
            return self.engine.probe_scan(colfile, key_set,
                                          restrict=restrict)
        return probe_positions(colfile, self.pool, key_set, self.config,
                               restrict=restrict)

    def _fact_fetch(self, colfile, positions: Positions) -> np.ndarray:
        if self.engine is not None:
            return self.engine.fetch(colfile, positions)
        return fetch_values(colfile, self.pool, positions, self.config)

    # ------------------------------------------------------------------ #
    # phase 1: dimension filtering
    # ------------------------------------------------------------------ #
    def filter_dimension(self, dim: DimensionSide,
                         predicates: Sequence[Predicate],
                         allow_between: bool) -> DimensionFilter:
        num_rows = dim.projection.num_rows
        positions: Positions = RangePositions(0, num_rows)
        for pred in predicates:
            domain = stored_bounds(pred, dim.catalog[pred.column], self.level)
            plist = predicate_positions(
                dim.projection.column_file(pred.column), self.pool, domain,
                self.config, restrict=positions.bounds())
            positions = intersect(positions, plist, self.stats)
            if positions.count == 0:
                break
        selectivity = positions.count / max(num_rows, 1)
        if not predicates:
            return DimensionFilter(dim.name, JoinStrategy.NONE, positions,
                                   selectivity)
        contiguous_positions = isinstance(positions, RangePositions)
        if positions.count == 0:
            return DimensionFilter(dim.name, JoinStrategy.HASH, positions,
                                   0.0, key_set=np.zeros(0, dtype=np.int64))
        if allow_between and contiguous_positions and dim.key_monotonic:
            lo_key, hi_key = self._keys_at_range_ends(dim, positions)
            return DimensionFilter(dim.name, JoinStrategy.BETWEEN, positions,
                                   selectivity, key_bounds=(lo_key, hi_key))
        key_set = self._fetch_keys(dim, positions)
        # building the in-memory hash table of surviving keys
        self.stats.hash_inserts += len(key_set)
        return DimensionFilter(dim.name, JoinStrategy.HASH, positions,
                               selectivity, key_set=np.sort(key_set))

    def _keys_at_range_ends(self, dim: DimensionSide,
                            positions: RangePositions) -> Tuple[int, int]:
        if dim.contiguous_from is not None:
            return (dim.contiguous_from + positions.start,
                    dim.contiguous_from + positions.stop - 1)
        ends = ArrayPositions(np.asarray(
            [positions.start, positions.stop - 1], dtype=np.int64))
        key_file = dim.projection.column_file(dim.key_column)
        values = fetch_values(key_file, self.pool, ends, self.config)
        return int(values[0]), int(values[-1])

    def _fetch_keys(self, dim: DimensionSide, positions: Positions
                    ) -> np.ndarray:
        key_file = dim.projection.column_file(dim.key_column)
        return fetch_values(key_file, self.pool, positions,
                            self.config).astype(np.int64)

    # ------------------------------------------------------------------ #
    # phase 2 helpers
    # ------------------------------------------------------------------ #
    def _fact_pred_tasks(self) -> List[Tuple[float, str, object]]:
        """(priority, fact column, translated domain) for native fact
        predicates; sort-key columns get top priority because they can
        produce ranges that enable block skipping for everything else."""
        tasks: List[Tuple[float, str, object]] = []
        for pred in self.query.fact_predicates():
            catalog_col = self._fact_catalog_column(pred.column)
            domain = stored_bounds(pred, catalog_col, self.level)
            sort_pos = self.fact.sorted_on(pred.column)
            priority = float(sort_pos) if sort_pos is not None else 10.0
            tasks.append((priority, pred.column, domain))
        return tasks

    def _fact_catalog_column(self, column: str) -> Column:
        raise NotImplementedError

    def _apply_fact_tasks(
        self,
        tasks: List[Tuple[float, str, object, Optional[DimensionFilter]]],
    ) -> Positions:
        """Predicate application, in one of the two Section 5.4 styles:
        pipelined (each task scans only blocks overlapping the bounds of
        the intersection so far) or parallel-and-AND (every predicate
        runs over the full column; results merged with bitmap ops)."""
        pipelined = self.config.pipelined_predicates
        acc: Positions = RangePositions(0, self.fact.num_rows)
        for _priority, column, domain, dim_filter in sorted(
                tasks, key=lambda t: t[0]):
            restrict = acc.bounds() if pipelined else None
            colfile = self.fact.column_file(column)
            if dim_filter is not None and \
                    dim_filter.strategy is JoinStrategy.HASH:
                plist = self._fact_probe_scan(colfile, dim_filter.key_set,
                                              restrict)
            elif (self.config.sorted_binary_search
                  and self.fact.sorted_on(column) == 0
                  and isinstance(domain, tuple)):
                # O(log #blocks) page reads; nothing to parallelize
                plist = sorted_predicate_positions(colfile, self.pool,
                                                   domain, self.config)
            else:
                plist = self._fact_predicate_scan(colfile, domain, restrict)
            acc = intersect(acc, plist, self.stats)
            if pipelined and acc.count == 0:
                return EMPTY
        return acc


class InvisibleJoin(_JoinBase):
    """The paper's invisible join over one StarQuery."""

    def __init__(self, pool, config, fact_projection, dims, query, level,
                 fact_catalog: Dict[str, Column],
                 allow_between: bool = True,
                 engine: Optional["MorselEngine"] = None,
                 tracer: Optional["Tracer"] = None) -> None:
        super().__init__(pool, config, fact_projection, dims, query, level,
                         engine=engine, tracer=tracer)
        self.fact_catalog = fact_catalog
        self.allow_between = (allow_between and config.invisible_join
                              and config.between_rewriting)
        self.filters: Dict[str, DimensionFilter] = {}

    def _fact_catalog_column(self, column: str) -> Column:
        return self.fact_catalog[column]

    def run(self) -> Tuple[Positions, Dict[str, np.ndarray]]:
        """Execute all three phases.

        Returns the surviving fact positions and, per dimension that
        contributes group-by attributes, the dimension row index aligned
        with those positions.
        """
        query = self.query
        # phase 1
        filtered: List[DimensionFilter] = []
        with self._span("phase1:dimension-filter"):
            for dim_name in query.dimensions_used():
                dim = self.dims[dim_name]
                preds = query.dimension_predicates(dim_name)
                f = self.filter_dimension(dim, preds, self.allow_between)
                self.filters[dim_name] = f
                if f.strategy is not JoinStrategy.NONE:
                    filtered.append(f)

        # phase 2
        with self._span("phase2:fact-scan"):
            tasks: List[Tuple[float, str, object,
                              Optional[DimensionFilter]]] = []
            for priority, column, domain in self._fact_pred_tasks():
                tasks.append((priority, column, domain, None))
            for f in filtered:
                fk = query.fk_of(f.dimension)
                sort_pos = self.fact.sorted_on(fk)
                if sort_pos is not None:
                    priority = float(sort_pos)
                else:
                    priority = 20.0 + f.selectivity
                domain = f.key_bounds \
                    if f.strategy is JoinStrategy.BETWEEN else None
                tasks.append((priority, fk, domain, f))
            if tasks:
                survivors = self._apply_fact_tasks(tasks)
            else:
                survivors = RangePositions(0, self.fact.num_rows)

        # phase 3
        with self._span("phase3:extraction"):
            dim_rows: Dict[str, np.ndarray] = {}
            group_dims = {g.table for g in query.group_by
                          if g.table != query.fact_table}
            for dim_name in sorted(group_dims):
                dim = self.dims[dim_name]
                fk_file = self.fact.column_file(query.fk_of(dim_name))
                fk_values = self._fact_fetch(fk_file,
                                             survivors).astype(np.int64)
                if dim.contiguous_from is not None:
                    rows = dimension_rows_for_keys(
                        fk_values, self.stats, self.config,
                        dim.contiguous_from)
                else:
                    keys = read_column(
                        dim.projection.column_file(dim.key_column),
                        self.pool, self.config).astype(np.int64)
                    rows = dimension_rows_for_keys(
                        fk_values, self.stats, self.config, None,
                        sorted_keys=keys)
                dim_rows[dim_name] = rows
        return survivors, dim_rows


class LateMaterializedJoin(_JoinBase):
    """C-Store's pre-invisible-join fallback ([5], Section 5.4).

    Differences from the invisible join, each honestly charged:
    no between-predicate rewriting (every join predicate probes a hash
    set), and dimension rows for group-by extraction are resolved with
    hash lookups regardless of key contiguity (followed by out-of-order
    value extraction, charged by the caller via ``gather_attribute``).
    """

    def __init__(self, pool, config, fact_projection, dims, query, level,
                 fact_catalog: Dict[str, Column],
                 engine: Optional["MorselEngine"] = None,
                 tracer: Optional["Tracer"] = None) -> None:
        super().__init__(pool, config, fact_projection, dims, query, level,
                         engine=engine, tracer=tracer)
        self.fact_catalog = fact_catalog
        self.filters: Dict[str, DimensionFilter] = {}

    def _fact_catalog_column(self, column: str) -> Column:
        return self.fact_catalog[column]

    def run(self) -> Tuple[Positions, Dict[str, np.ndarray]]:
        query = self.query
        filtered: List[DimensionFilter] = []
        with self._span("phase1:dimension-filter"):
            for dim_name in query.dimensions_used():
                dim = self.dims[dim_name]
                preds = query.dimension_predicates(dim_name)
                f = self.filter_dimension(dim, preds, allow_between=False)
                self.filters[dim_name] = f
                if f.strategy is not JoinStrategy.NONE:
                    filtered.append(f)

        with self._span("phase2:fact-scan"):
            tasks: List[Tuple[float, str, object,
                              Optional[DimensionFilter]]] = []
            for priority, column, domain in self._fact_pred_tasks():
                tasks.append((priority, column, domain, None))
            for f in filtered:
                fk = query.fk_of(f.dimension)
                tasks.append((20.0 + f.selectivity, fk, None, f))
            if tasks:
                survivors = self._apply_fact_tasks(tasks)
            else:
                survivors = RangePositions(0, self.fact.num_rows)

        with self._span("phase3:extraction"):
            dim_rows: Dict[str, np.ndarray] = {}
            group_dims = {g.table for g in query.group_by
                          if g.table != query.fact_table}
            for dim_name in sorted(group_dims):
                dim = self.dims[dim_name]
                fk_file = self.fact.column_file(query.fk_of(dim_name))
                fk_values = self._fact_fetch(fk_file,
                                             survivors).astype(np.int64)
                # the LM join resolves dimension rows by hash lookup even
                # for contiguous keys — it has no key/position
                # equivalence notion
                keys = read_column(dim.projection.column_file(dim.key_column),
                                   self.pool, self.config).astype(np.int64)
                rows = dimension_rows_for_keys(
                    fk_values, self.stats, self.config, None,
                    sorted_keys=keys)
                dim_rows[dim_name] = rows
        return survivors, dim_rows


__all__ = [
    "InvisibleJoin",
    "LateMaterializedJoin",
    "JoinStrategy",
    "DimensionFilter",
    "DimensionSide",
]
