"""The C-Store ablation configuration (Figure 7's four-letter codes).

The paper encodes each configuration as four letters:

* ``t`` block iteration on / ``T`` tuple-at-a-time processing;
* ``I`` invisible join on / ``i`` off (falls back to the late
  materialized hash join);
* ``C`` compression on / ``c`` off (columns stored plain, strings at
  full CHAR width);
* ``L`` late materialization on / ``l`` off (tuples constructed at the
  start of the plan; forces row-style execution, which precludes the
  invisible join and direct operation on compressed data).

``CONFIG_LADDER`` lists the seven configurations measured in Figure 7 in
the paper's order: tICL, TICL, tiCL, TiCL, ticL, TicL, Ticl.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import PlanError


@dataclass(frozen=True)
class ExecutionConfig:
    """Which column-store optimizations are active."""

    block_iteration: bool = True
    invisible_join: bool = True
    compression: bool = True
    late_materialization: bool = True
    #: ablation-only switch: keep the invisible join but forbid its
    #: between-predicate rewriting (Section 5.4.2), forcing hash lookups
    between_rewriting: bool = True
    #: extension (off by default — the paper's C-Store scans): resolve
    #: range predicates on the projection's primary sort column by
    #: binary-searching block boundaries instead of scanning the column
    sorted_binary_search: bool = False
    #: Section 5.4 describes two predicate-application strategies: apply
    #: "in parallel and merge with fast bitmap operations", or pipeline
    #: one result into the next "to reduce the number of times the
    #: second predicate must be applied".  True (default) pipelines;
    #: False applies every predicate over the full column and ANDs.
    pipelined_predicates: bool = True
    #: morsel parallelism: number of worker threads evaluating scans,
    #: fetches and aggregation in horizontal partitions.  1 (default)
    #: takes the unchanged serial code path, so every paper ablation is
    #: bit-for-bit what it was before this knob existed.  Not part of
    #: the four-letter label: it changes wall-clock, never the plan,
    #: the results, or the simulated I/O ledger.
    workers: int = 1
    #: override the morsel size (rows per horizontal partition).  None
    #: splits each operator's position space evenly across ``workers``;
    #: explicit sizes are snapped up to storage block boundaries.
    morsel_rows: Optional[int] = None
    #: extension (off by default — the paper's C-Store scans): consult
    #: per-block min/max synopses (zone maps) before reading, skipping
    #: blocks that cannot satisfy the predicate.  Not part of the
    #: four-letter label: it never changes results, only which pages a
    #: scan touches (see ``docs/synopses.md``).
    zone_maps: bool = False
    #: scatter-gather sharding: number of fact-table shards, each a
    #: self-contained storage stack (see ``docs/sharding.md``).  1
    #: (default) takes the unchanged single-stack code path.  Not part
    #: of the four-letter label: like ``workers``, it never changes the
    #: rows — only how the work is partitioned and eliminated.
    shards: int = 1
    #: MVCC snapshot reads over the write store's delta (see
    #: ``docs/writes.md``).  False (default) takes the unchanged
    #: read-only code path; a store with *pending* writes refuses the
    #: read-only path with a typed error rather than silently dropping
    #: the delta.  Not part of the four-letter label: with no pending
    #: writes, on/off are byte-identical.
    writes: bool = False
    #: automatic tuple-mover policy (requires ``writes``): run the
    #: engine's tuple mover before a query when the write store's net
    #: pending rows exceed this.  None (default) keeps moves manual —
    #: the unchanged code path.  Not part of the four-letter label: a
    #: move never changes results, only where rows live.
    move_threshold_rows: Optional[int] = None

    def __post_init__(self) -> None:
        if self.invisible_join and not self.late_materialization:
            raise PlanError(
                "the invisible join requires late materialization "
                "(early materialization implies row-style execution)"
            )
        if self.workers < 1:
            raise PlanError(f"workers must be >= 1, got {self.workers}")
        if self.morsel_rows is not None and self.morsel_rows < 1:
            raise PlanError(
                f"morsel_rows must be >= 1, got {self.morsel_rows}"
            )
        if self.shards < 1:
            raise PlanError(f"shards must be >= 1, got {self.shards}")
        if self.move_threshold_rows is not None \
                and self.move_threshold_rows < 1:
            raise PlanError(
                f"move_threshold_rows must be >= 1, got "
                f"{self.move_threshold_rows}"
            )

    @property
    def label(self) -> str:
        """The paper's four-letter code, e.g. ``"tICL"``."""
        return "".join([
            "t" if self.block_iteration else "T",
            "I" if self.invisible_join else "i",
            "C" if self.compression else "c",
            "L" if self.late_materialization else "l",
        ])

    @classmethod
    def from_label(cls, label: str) -> "ExecutionConfig":
        """Parse a four-letter code like ``"TicL"``."""
        if len(label) != 4 or label[0] not in "tT" or label[1] not in "iI" \
                or label[2] not in "cC" or label[3] not in "lL":
            raise PlanError(f"bad configuration label {label!r}")
        return cls(
            block_iteration=label[0] == "t",
            invisible_join=label[1] == "I",
            compression=label[2] == "C",
            late_materialization=label[3] == "L",
        )

    @classmethod
    def baseline(cls) -> "ExecutionConfig":
        """Full C-Store: tICL."""
        return cls()

    @classmethod
    def row_store_like(cls) -> "ExecutionConfig":
        """Everything off: Ticl — "the column-store acts like a
        row-store" (Section 6.3.2)."""
        return cls(block_iteration=False, invisible_join=False,
                   compression=False, late_materialization=False)


#: Figure 7's seven configurations, most to least optimized.
CONFIG_LADDER: Tuple[ExecutionConfig, ...] = tuple(
    ExecutionConfig.from_label(code)
    for code in ("tICL", "TICL", "tiCL", "TiCL", "ticL", "TicL", "Ticl")
)


__all__ = ["ExecutionConfig", "CONFIG_LADDER"]
