"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subclasses are grouped by
subsystem; they carry enough context in their message to be actionable
without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchemaError(ReproError):
    """A schema is malformed or a referenced column/table does not exist."""


class TypeMismatchError(SchemaError):
    """A value or array does not match the declared column type."""


class StorageError(ReproError):
    """Low-level storage failure (page format, heap file, column file)."""


class PageFormatError(StorageError):
    """A slotted page is corrupt or an offset is out of bounds."""


class ChecksumError(StorageError):
    """A page image failed CRC verification on its way out of the disk.

    Carries the file, page number, and stripe disk so callers can decide
    whether a redundant copy exists (``file``/``page_no``/``disk_no``).
    """

    def __init__(self, file: str, page_no: int, disk_no: int,
                 detail: str = "") -> None:
        message = (f"checksum mismatch on {file!r} page {page_no} "
                   f"(stripe disk {disk_no})")
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.file = file
        self.page_no = page_no
        self.disk_no = disk_no


class TransientIOError(StorageError):
    """A page read failed transiently; retrying may succeed."""

    def __init__(self, file: str, page_no: int) -> None:
        super().__init__(f"transient read error on {file!r} page {page_no}")
        self.file = file
        self.page_no = page_no


class CorruptPageError(StorageError):
    """A page is persistently corrupt and no redundant copy could serve it.

    This is the structured, *final* verdict the engines raise instead of
    ever returning a silently wrong answer: it names the file, the page,
    and the stripe disk the page lives on.
    """

    def __init__(self, file: str, page_no: int, disk_no: int,
                 detail: str = "") -> None:
        message = (f"corrupt page {page_no} of {file!r} "
                   f"(stripe disk {disk_no})")
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.file = file
        self.page_no = page_no
        self.disk_no = disk_no


class ScrubError(StorageError):
    """The scrubber was misconfigured or could not complete an audit."""


class EncodingError(StorageError):
    """A compression codec cannot encode/decode the given data."""


class PlanError(ReproError):
    """A logical query cannot be lowered to a physical plan."""


class UnsupportedQueryError(PlanError):
    """The query uses a feature the engine (or SQL subset) does not support."""


class ExecutionError(ReproError):
    """A physical operator failed at run time."""


class SqlError(ReproError):
    """Base class for SQL frontend errors."""


class SqlLexError(SqlError):
    """The SQL text contains a character sequence that cannot be tokenized."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class SqlParseError(SqlError):
    """The SQL token stream does not match the supported grammar."""


class SqlBindError(SqlError):
    """A SQL identifier does not resolve against the catalog."""


class BenchmarkError(ReproError):
    """The benchmark harness was misconfigured or a run failed."""


class ServeError(ReproError):
    """Base class for errors raised by the :mod:`repro.serve` layer."""


#: Backwards-compatible alias — the serve layer's base error was named
#: ``ServiceError`` before the resilience work regrouped the family.
ServiceError = ServeError


class AdmissionError(ServeError):
    """A query was refused admission: the queue is full, the queue wait
    timed out, or the service is draining/closed.  The query never ran."""


class DeadlineError(ServeError):
    """A query's deadline expired before the service could start it."""


class ShedError(ServeError):
    """A query was shed by the brownout policy: the service is over its
    latency threshold and the query's priority was low enough to drop.
    The query never ran; retrying later (or at a higher priority) is
    legitimate."""


class QueryCancelledError(ServeError):
    """A query was cooperatively cancelled mid-execution.

    Raised at page/morsel boundaries by the cancellation token the
    service propagates into engine execution — when the query's wall
    deadline passed, its simulated-seconds budget ran out, or the token
    was cancelled explicitly.  The partial ledger up to the cancellation
    point is preserved and still verifies."""

    def __init__(self, reason: str) -> None:
        super().__init__(f"query cancelled: {reason}")
        self.reason = reason


class BreakerOpenError(ServeError):
    """The circuit breaker for this query's (engine, table) scope is
    open after repeated storage failures, and the query could not be
    served degraded from the cache.  Carries the scope so clients can
    route around it."""

    def __init__(self, scope, detail: str = "") -> None:
        message = f"circuit breaker open for scope {scope!r}"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.scope = scope


class WriteError(ReproError):
    """Base class for errors raised by the :mod:`repro.write` layer."""


class IntegrityError(WriteError):
    """A write violates schema or foreign-key integrity.

    Raised before anything is journaled or buffered: a rejected write
    leaves the write store exactly as it was.
    """


class SnapshotTooOldError(WriteError):
    """A pinned read epoch predates the tuple mover's merge horizon.

    Once the mover drains the WOS into new base pages, epochs older than
    the merge horizon can no longer be reconstructed; readers must pin a
    fresh epoch and retry.
    """


class WriteFaultError(StorageError):
    """A journal or base-page write failed after exhausting its retries.

    The write path is all-or-nothing: on this error the read store (and
    for a failed tuple move, the old epoch) is untouched and still
    serves correct rows.
    """


class WriteContentionError(WriteError):
    """A second writer raced into the write store mid-batch.

    Batch application is not re-entrant: the journal append and the
    buffer mutation of one batch must complete before the next begins,
    or the journal order would no longer describe the buffer state.
    Callers (the query service serializes DML explicitly) should retry
    after the in-flight batch finishes; nothing was journaled or
    buffered for the refused batch.
    """


class SimulatedCrashError(ReproError):
    """A seeded crash point fired: the simulated process dies here.

    Raised by :func:`repro.simio.faults.crash_point` when an armed
    :class:`~repro.simio.faults.CrashPolicy` matches.  The crash/restart
    harness (:mod:`repro.write.recovery`) catches it, discards every
    in-memory structure, and re-opens the database from simulated disk
    alone — anything not yet durable in the redo journal is gone, which
    is exactly the contract recovery is tested against.  Carries the
    crash point name in ``point``.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at {point!r}")
        self.point = point


class JournalTornError(WriteError):
    """Cold-start replay found a *committed* journal record missing.

    A torn tail of unacknowledged records is normal after a crash and is
    silently truncated (the writes were never acknowledged).  This error
    means the journal holds fewer valid records than the caller's
    committed LSN — an acknowledged write would be lost — so recovery
    refuses to produce a state that silently drops it.
    """


class TraceInvariantError(ReproError):
    """A query's span tree does not sum to its flat ledger.

    Raised by :meth:`repro.obs.Trace.verify` when per-span attribution
    loses or double-counts work — always a bug in span placement, never
    a data problem, which is why it is enforced on every execution.
    """
