"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subclasses are grouped by
subsystem; they carry enough context in their message to be actionable
without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchemaError(ReproError):
    """A schema is malformed or a referenced column/table does not exist."""


class TypeMismatchError(SchemaError):
    """A value or array does not match the declared column type."""


class StorageError(ReproError):
    """Low-level storage failure (page format, heap file, column file)."""


class PageFormatError(StorageError):
    """A slotted page is corrupt or an offset is out of bounds."""


class EncodingError(StorageError):
    """A compression codec cannot encode/decode the given data."""


class PlanError(ReproError):
    """A logical query cannot be lowered to a physical plan."""


class UnsupportedQueryError(PlanError):
    """The query uses a feature the engine (or SQL subset) does not support."""


class ExecutionError(ReproError):
    """A physical operator failed at run time."""


class SqlError(ReproError):
    """Base class for SQL frontend errors."""


class SqlLexError(SqlError):
    """The SQL text contains a character sequence that cannot be tokenized."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class SqlParseError(SqlError):
    """The SQL token stream does not match the supported grammar."""


class SqlBindError(SqlError):
    """A SQL identifier does not resolve against the catalog."""


class BenchmarkError(ReproError):
    """The benchmark harness was misconfigured or a run failed."""
