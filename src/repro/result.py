"""Query results: a tiny, engine-neutral result set.

Every engine returns a :class:`ResultSet`; integration tests compare an
engine's result against the reference oracle with :meth:`ResultSet.same_rows`
(order-insensitive) or exact equality after ORDER BY.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from .plan.logical import OrderKey

Cell = Union[int, str]
Row = Tuple[Cell, ...]


@dataclass
class ResultSet:
    """Named columns and materialized rows of one query's output."""

    columns: List[str]
    rows: List[Row]

    def __len__(self) -> int:
        return len(self.rows)

    def sorted_rows(self) -> List[Row]:
        """Rows in a canonical order (for order-insensitive comparison)."""
        return sorted(self.rows, key=lambda r: tuple(map(_sort_key, r)))

    def same_rows(self, other: "ResultSet") -> bool:
        """True when both results hold exactly the same multiset of rows."""
        return self.sorted_rows() == other.sorted_rows()

    def order_by(self, keys: Sequence[OrderKey]) -> "ResultSet":
        """Return a copy sorted per ORDER BY keys (stable, desc supported)."""
        if not keys:
            return ResultSet(self.columns, list(self.rows))
        rows = list(self.rows)
        for key in reversed(keys):
            idx = self.columns.index(key.key)
            rows.sort(key=lambda r: _sort_key(r[idx]),
                      reverse=not key.ascending)
        return ResultSet(self.columns, rows)

    def limited(self, limit) -> "ResultSet":
        """A copy truncated to the first ``limit`` rows (None = all)."""
        if limit is None:
            return self
        return ResultSet(self.columns, self.rows[:limit])

    def column_values(self, name: str) -> List[Cell]:
        """All values of one output column."""
        idx = self.columns.index(name)
        return [r[idx] for r in self.rows]

    def pretty(self, limit: int = 20) -> str:
        """A small fixed-width rendering for examples and debugging."""
        widths = [
            max(len(str(c)),
                max((len(str(r[i])) for r in self.rows[:limit]), default=0))
            for i, c in enumerate(self.columns)
        ]
        header = " | ".join(str(c).ljust(w) for c, w in zip(self.columns, widths))
        rule = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(str(v).ljust(w) for v, w in zip(row, widths))
            for row in self.rows[:limit]
        ]
        suffix = [] if len(self.rows) <= limit else [
            f"... ({len(self.rows) - limit} more rows)"
        ]
        return "\n".join([header, rule] + body + suffix)


def _sort_key(value: Cell) -> Tuple[int, Union[int, str]]:
    """Total order across ints and strings (ints first)."""
    if isinstance(value, str):
        return (1, value)
    return (0, int(value))


__all__ = ["ResultSet", "Row", "Cell"]
