"""Config-driven query planning for the column store.

Late-materialization plans run the invisible join (or its hash fallback),
fetch aggregate inputs only at surviving positions, and aggregate
vectorized.  Early-materialization plans read whole columns, construct
tuples up front, and execute a row-store-style pipeline — which is also
the execution mode of the "CS Row-MV" configuration.

Output decoding is uniform: group values travel in the stored domain
(ints, dictionary codes, or raw bytes when compression is off) and are
decoded per output cell at the end, charging a dictionary lookup per
decoded string.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import PlanError
from ..obs import Tracer, span_context
from ..plan.logical import StarQuery
from ..result import ResultSet, Row
from ..simio.buffer_pool import BufferPool
from ..simio.stats import QueryStats
from ..storage.colfile import CompressionLevel
from ..storage.column import Column
from ..storage.projection import Projection
from ..core.config import ExecutionConfig
from ..core.invisible_join import (
    DimensionSide,
    InvisibleJoin,
    LateMaterializedJoin,
)
from .operators.aggregate import (
    eval_fact_expr,
    factorize_groups,
    grouped_aggregate,
    scalar_aggregate,
)
from .parallel import MorselEngine, make_engine
from .operators.fetch import fetch_values, read_column
from .operators.join import gather_attribute
from .operators.materialize import (
    DimensionRows,
    _apply_row_predicate,
    row_pipeline,
)
from .operators.scan import stored_bounds

Decoder = Callable[[object], object]


class StoreContext:
    """What the planner needs from the engine (duck-typed facade slice)."""

    def __init__(
        self,
        pool: BufferPool,
        projections: Dict[Tuple[str, CompressionLevel], List[Projection]],
        tables: Dict[str, "object"],  # name -> storage Table
        dim_key_contiguous: Dict[str, Optional[int]],
        dim_key_monotonic: Dict[str, bool],
        forbidden: Optional[set] = None,
    ) -> None:
        self.pool = pool
        self.projections = projections
        self.tables = tables
        self.dim_key_contiguous = dim_key_contiguous
        self.dim_key_monotonic = dim_key_monotonic
        #: projection names the engine's recovery loop has ruled out
        #: (a page of theirs is quarantined); the planner plans around
        #: them as long as an alternative projection exists
        self.forbidden: set = forbidden if forbidden is not None else set()

    def candidates(self, table: str, level: CompressionLevel
                   ) -> List[Projection]:
        try:
            loaded = self.projections[(table, level)]
        except KeyError:
            raise PlanError(
                f"no projection loaded for table {table!r} at level "
                f"{level.value!r}"
            ) from None
        usable = [p for p in loaded if p.name not in self.forbidden]
        if not usable:
            raise PlanError(
                f"every projection for table {table!r} at level "
                f"{level.value!r} is ruled out by corrupt pages"
            )
        return usable

    def projection(self, table: str, level: CompressionLevel) -> Projection:
        """The table's primary (first-loaded) projection."""
        return self.candidates(table, level)[0]

    def best_projection(self, table: str, level: CompressionLevel,
                        query: StarQuery) -> Projection:
        """Pick the projection whose sort order serves ``query`` best.

        C-Store's projection selection, reduced to the property that
        matters here: a predicate (native or join-rewritten) on the
        projection's *primary* sort column turns into a contiguous
        position range, enabling block skipping for every later column.
        Earlier sort positions score higher; ties keep the first-loaded
        (default) projection.
        """
        candidates = self.candidates(table, level)
        if len(candidates) == 1 or table != query.fact_table:
            return candidates[0]
        restricted = {p.column for p in query.fact_predicates()}
        for dim in query.dimensions_used():
            if query.dimension_predicates(dim):
                restricted.add(query.fk_of(dim))

        def score(projection: Projection) -> float:
            total = 0.0
            for column in restricted:
                position = projection.sorted_on(column)
                if position is not None:
                    total += 1.0 / (1 + position)
            return total

        return max(candidates, key=score)

    def catalog_column(self, table: str, column: str) -> Column:
        return self.tables[table].column(column)


class ColumnPlanner:
    """Plans and executes one StarQuery under one configuration."""

    def __init__(self, ctx: StoreContext, config: ExecutionConfig,
                 level: Optional[CompressionLevel] = None,
                 tracer: Optional[Tracer] = None,
                 visibility=None) -> None:
        self.ctx = ctx
        self.config = config
        self.level = level if level is not None else (
            CompressionLevel.MAX if config.compression
            else CompressionLevel.NONE)
        #: optional span tracer (tracing is passive: ledgers are
        #: byte-identical with or without one attached)
        self.tracer = tracer
        #: optional :class:`~repro.write.store.Visibility` — a snapshot
        #: read with pending deletes patches base-scan positions; None
        #: (every read-only run) leaves all plan paths untouched
        self.visibility = visibility

    def _deleted_positions(self, query: StarQuery,
                           fact_proj: Projection) -> Optional[np.ndarray]:
        """Deleted fact rows mapped into ``fact_proj``'s position space,
        or None when this run needs no patching."""
        if self.visibility is None or not self.visibility.needs_patching:
            return None
        from ..write.store import projection_deleted_positions

        return projection_deleted_positions(
            self.ctx.tables[query.fact_table],
            fact_proj.sort_order.keys,
            self.visibility.fact_deleted,
        )

    def _span(self, name: str):
        return span_context(self.tracer, name)

    @property
    def pool(self) -> BufferPool:
        return self.ctx.pool

    @property
    def stats(self) -> QueryStats:
        return self.pool.stats

    # ------------------------------------------------------------------ #
    def run(self, query: StarQuery) -> ResultSet:
        # One morsel engine per execution (None when workers == 1, which
        # leaves every serial code path untouched).  Early materialization
        # stays serial by design: its row pipeline is a deliberate
        # reproduction of tuple-at-a-time execution, and parallelizing it
        # would change nothing the paper measures.
        self.engine: Optional[MorselEngine] = None
        if self.config.late_materialization:
            self.engine = make_engine(self.pool, self.config,
                                      tracer=self.tracer)
        try:
            if self.config.late_materialization:
                return self._run_late(query)
            return self._run_early(query)
        finally:
            if self.engine is not None:
                self.engine.close()
                self.engine = None

    def _fetch(self, colfile, positions) -> np.ndarray:
        """Value fetch, morsel-parallel when an engine is active."""
        if self.engine is not None:
            return self.engine.fetch(colfile, positions)
        return fetch_values(colfile, self.pool, positions, self.config)

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    def _dimension_sides(self, query: StarQuery) -> Dict[str, DimensionSide]:
        sides: Dict[str, DimensionSide] = {}
        for dim in query.dimensions_used():
            table = self.ctx.tables[dim]
            sides[dim] = DimensionSide(
                name=dim,
                projection=self.ctx.projection(dim, self.level),
                key_column=query.key_of(dim),
                catalog={c.name: c for c in table.columns()},
                contiguous_from=self.ctx.dim_key_contiguous[dim],
                key_monotonic=self.ctx.dim_key_monotonic[dim],
            )
        return sides

    def _decoder_for(self, table: str, column: str) -> Optional[Decoder]:
        """None for integer columns; otherwise a raw->str decoder."""
        catalog_column = self.ctx.catalog_column(table, column)
        if catalog_column.dictionary is None:
            return None
        if self.level is CompressionLevel.NONE:
            return lambda raw: raw.decode("ascii") if isinstance(raw, bytes) \
                else str(raw)
        dictionary = catalog_column.dictionary
        return lambda raw: dictionary.value(int(raw))

    def _finalize(
        self,
        query: StarQuery,
        group_arrays: List[np.ndarray],
        reduction: Tuple[np.ndarray, List],
    ) -> ResultSet:
        """Decode group codes, assemble rows, apply ORDER BY."""
        from ..plan.aggregates import finalize as finalize_agg

        uniq, reduced = reduction
        columns = [g.column for g in query.group_by] + [
            a.alias for a in query.aggregates
        ]
        decoders = [self._decoder_for(g.table, g.column)
                    for g in query.group_by]
        lookups = getattr(self, "_group_lookups", None)
        rows: List[Row] = []
        for gi in range(uniq.shape[1]):
            cells: List[object] = []
            for k, decoder in enumerate(decoders):
                raw = uniq[k, gi]
                if lookups is not None and lookups[k] is not None:
                    raw = lookups[k][int(raw)]
                if decoder is not None:
                    self.stats.dict_lookups += 1
                    cells.append(decoder(raw))
                else:
                    cells.append(int(raw))
            for agg, (primary, secondary) in zip(query.aggregates, reduced):
                cells.append(finalize_agg(
                    agg.func, int(primary[gi]),
                    None if secondary is None else int(secondary[gi])))
            rows.append(tuple(cells))
        return ResultSet(columns, rows).order_by(query.order_by).limited(
            query.limit)

    def _normalize_group_array(self, arr: np.ndarray
                               ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Byte-string group arrays become factor codes + a lookup."""
        if arr.dtype.kind == "S":
            lookup, codes = np.unique(arr, return_inverse=True)
            return codes.astype(np.int64), lookup
        return arr.astype(np.int64), None

    # ------------------------------------------------------------------ #
    # late materialization
    # ------------------------------------------------------------------ #
    def _run_late(self, query: StarQuery) -> ResultSet:
        fact_proj = self.ctx.best_projection(query.fact_table, self.level,
                                             query)
        dims = self._dimension_sides(query)
        fact_catalog = {
            c.name: c for c in self.ctx.tables[query.fact_table].columns()
        }
        join_cls = InvisibleJoin if self.config.invisible_join \
            else LateMaterializedJoin
        join = join_cls(self.pool, self.config, fact_proj, dims, query,
                        self.level, fact_catalog, engine=self.engine,
                        tracer=self.tracer)
        survivors, dim_rows = join.run()
        deleted = self._deleted_positions(query, fact_proj)
        if deleted is not None and len(deleted):
            # MVCC patch: drop surviving positions whose base row is
            # deleted as of the pinned epoch, keeping the per-survivor
            # dimension row indices aligned.  One position op per
            # survivor checked (the membership probe).
            self.stats.position_ops += survivors.count
            arr = survivors.to_array()
            keep = ~np.isin(arr, deleted)
            if not keep.all():
                from .positions import ArrayPositions

                survivors = ArrayPositions(arr[keep])
                dim_rows = {d: rows[keep] for d, rows in dim_rows.items()}
        # kept for EXPLAIN: the join's run-time decisions
        self.last_join = join
        self.last_survivors = survivors.count
        # kept for the service layer's semantic cache: the surviving
        # fact positions and the projection they index into
        self.last_positions = survivors
        self.last_projection = fact_proj.name

        from ..plan.logical import expr_columns

        from ..plan.aggregates import needs_expr_values

        agg_funcs = [a.func for a in query.aggregates]
        with self._span("aggregate"):
            # aggregate inputs at surviving positions only
            fact_arrays: Dict[str, np.ndarray] = {}
            for agg in query.aggregates:
                if not needs_expr_values(agg.func):
                    continue
                for ref in expr_columns(agg.expr):
                    if ref.table == query.fact_table and \
                            ref.column not in fact_arrays:
                        colfile = fact_proj.column_file(ref.column)
                        fact_arrays[ref.column] = self._fetch(colfile,
                                                              survivors)
            agg_arrays = [
                eval_fact_expr(a.expr, fact_arrays, self.stats, self.config)
                if needs_expr_values(a.func)
                else np.zeros(survivors.count, dtype=np.int64)
                for a in query.aggregates
            ]

            if not query.group_by:
                if self.engine is not None:
                    cells = self.engine.scalar(agg_arrays, funcs=agg_funcs)
                else:
                    cells = scalar_aggregate(agg_arrays, self.stats,
                                             self.config, funcs=agg_funcs)
                reduction = None
            else:
                group_arrays: List[np.ndarray] = []
                self._group_lookups: List[Optional[np.ndarray]] = []
                out_of_order = not self.config.invisible_join
                for g in query.group_by:
                    if g.table == query.fact_table:
                        raw = self._fetch(fact_proj.column_file(g.column),
                                          survivors)
                    else:
                        side = dims[g.table]
                        attr_values = read_column(
                            side.projection.column_file(g.column), self.pool,
                            self.config)
                        raw = gather_attribute(attr_values, dim_rows[g.table],
                                               self.stats, self.config,
                                               out_of_order=out_of_order)
                    codes, lookup = self._normalize_group_array(raw)
                    group_arrays.append(codes)
                    self._group_lookups.append(lookup)
                if self.engine is not None:
                    reduction = self.engine.grouped(group_arrays, agg_arrays,
                                                    funcs=agg_funcs)
                else:
                    reduction = grouped_aggregate(group_arrays, agg_arrays,
                                                  self.stats, self.config,
                                                  funcs=agg_funcs)

        with self._span("sort"):
            if reduction is None:
                columns = [a.alias for a in query.aggregates]
                return ResultSet(columns, [tuple(cells)]).order_by(
                    query.order_by).limited(query.limit)
            result = self._finalize(query, group_arrays, reduction)
        del self._group_lookups
        return result

    # ------------------------------------------------------------------ #
    # early materialization
    # ------------------------------------------------------------------ #
    def _dimension_rows_early(self, query: StarQuery, dim: str
                              ) -> DimensionRows:
        """Row-style dimension preparation: read, construct, filter."""
        proj = self.ctx.projection(dim, self.level)
        key_col = query.key_of(dim)
        preds = query.dimension_predicates(dim)
        attrs = query.group_by_of(dim)
        needed = [key_col] + [p.column for p in preds
                              if p.column not in attrs and p.column != key_col]
        needed += [a for a in attrs if a not in needed]
        arrays = {
            c: read_column(proj.column_file(c), self.pool, self.config)
            for c in needed
        }
        n = proj.num_rows
        self.stats.tuples_constructed += n
        self.stats.tuple_attrs_copied += n * len(needed)
        mask = np.ones(n, dtype=bool)
        for pred in preds:
            domain = stored_bounds(pred, self.ctx.catalog_column(
                dim, pred.column), self.level)
            alive = np.flatnonzero(mask)
            verdict = _apply_row_predicate(arrays[pred.column][alive], domain,
                                           self.stats)
            mask[alive[~verdict]] = False
        selector = np.flatnonzero(mask)
        keys = arrays[key_col][selector].astype(np.int64)
        order = np.argsort(keys)
        self.stats.hash_inserts += len(keys)
        return DimensionRows(
            dimension=dim,
            keys=keys[order],
            attrs={a: arrays[a][selector][order] for a in attrs},
        )

    def _run_early(self, query: StarQuery) -> ResultSet:
        fact_proj = self.ctx.projection(query.fact_table, self.level)
        needed = query.fact_columns_needed()
        with self._span("scan:fact-columns"):
            fact_arrays = {
                c: read_column(fact_proj.column_file(c), self.pool,
                               self.config)
                for c in needed
            }
        deleted = self._deleted_positions(query, fact_proj)
        live_rows = fact_proj.num_rows
        if deleted is not None and len(deleted):
            # MVCC patch: early materialization reads whole columns in
            # projection order, so deleted rows are masked before the
            # row pipeline sees them (one position op per stored row)
            live = np.ones(fact_proj.num_rows, dtype=bool)
            live[deleted] = False
            self.stats.position_ops += fact_proj.num_rows
            fact_arrays = {c: arr[live] for c, arr in fact_arrays.items()}
            live_rows = int(np.count_nonzero(live))
        pred_domains = [
            (p.column, stored_bounds(
                p, self.ctx.catalog_column(query.fact_table, p.column),
                self.level))
            for p in query.fact_predicates()
        ]
        with self._span("phase1:dimension-filter"):
            dims = [self._dimension_rows_early(query, d)
                    for d in query.dimensions_used()]
        with self._span("row-pipeline"):
            group_raw, agg_arrays, _group_dims = row_pipeline(
                query, fact_arrays, pred_domains, dims, self.stats,
                num_rows=live_rows)

        from ..plan.aggregates import (
            finalize as finalize_agg,
            reduce_groups,
            reduce_scalar,
        )

        agg_funcs = [a.func for a in query.aggregates]
        with self._span("aggregate"):
            if not query.group_by:
                cells = [
                    finalize_agg(func, *reduce_scalar(func, values))
                    for func, values in zip(agg_funcs, agg_arrays)
                ]
                reduction = None
            else:
                group_arrays: List[np.ndarray] = []
                self._group_lookups = []
                for raw in group_raw:
                    codes, lookup = self._normalize_group_array(raw)
                    group_arrays.append(codes)
                    self._group_lookups.append(lookup)
                # consolidation (already paid per tuple in the pipeline)
                matrix = np.stack(group_arrays) if group_arrays else \
                    np.zeros((0, 0), dtype=np.int64)
                if matrix.shape[1] == 0:
                    uniq = matrix
                    reduced = [(np.zeros(0, dtype=np.int64), None)
                               for _ in agg_arrays]
                else:
                    uniq, inverse = factorize_groups(matrix)
                    reduced = [
                        reduce_groups(func, values, inverse, uniq.shape[1])
                        for func, values in zip(agg_funcs, agg_arrays)
                    ]
                reduction = (uniq, reduced)

        with self._span("sort"):
            if reduction is None:
                columns = [a.alias for a in query.aggregates]
                return ResultSet(columns, [tuple(cells)]).order_by(
                    query.order_by).limited(query.limit)
            result = self._finalize(query, group_arrays, reduction)
        del self._group_lookups
        return result


__all__ = ["ColumnPlanner", "StoreContext"]
