"""The column-store engine ("C-Store" in the paper).

Storage is one :class:`~repro.storage.projection.Projection` per table:
the fact table sorted on (orderdate, quantity, discount), dimensions
sorted by their rollup hierarchies.  Execution follows Section 5:

* predicate scans produce **position lists** (:mod:`positions`) — ranges,
  bitmaps, or arrays — intersected with bitwise ANDs;
* scans operate **directly on RLE runs** when compression is enabled;
* values are fetched **late**, only at surviving positions, with block
  skipping;
* star joins run through the **invisible join**
  (:mod:`repro.core.invisible_join`) or its late-materialized hash-join
  fallback;
* every optimization can be disabled via
  :class:`~repro.core.config.ExecutionConfig`, reproducing the paper's
  tICL..Ticl ablation grid (Figure 7).
"""

from .positions import ArrayPositions, BitmapPositions, RangePositions

__all__ = [
    "CStore",
    "ColumnStoreRun",
    "ArrayPositions",
    "BitmapPositions",
    "RangePositions",
]


def __getattr__(name):
    # engine (and through it the planner) imports repro.core, which in
    # turn uses this package's operators; loading the engine lazily keeps
    # the import graph acyclic.
    if name in ("CStore", "ColumnStoreRun"):
        from . import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
