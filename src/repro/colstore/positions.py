"""Position lists: the intermediate currency of late materialization.

Section 5.2: "Depending on the predicate selectivity, this list of
positions can be represented as a simple array, a bit string ... or as a
set of ranges of positions.  These position representations are then
intersected ... to create a single position list."

Three representations are implemented, each knowing how to intersect
with the others and how to convert to a sorted position array.  Range x
range intersection is O(1); bitmap x bitmap is a vectorized AND charged
per word of overlap; arrays are merged.  ``intersect`` dispatches to the
cheapest combination and charges ``position_ops`` for the work actually
performed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ExecutionError
from ..simio.stats import QueryStats


@dataclass(frozen=True)
class RangePositions:
    """The contiguous positions [start, stop)."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.stop < self.start:
            raise ExecutionError(
                f"invalid position range [{self.start}, {self.stop})"
            )

    @property
    def count(self) -> int:
        return self.stop - self.start

    def bounds(self) -> Optional[Tuple[int, int]]:
        return (self.start, self.stop) if self.count else None

    def to_array(self) -> np.ndarray:
        return np.arange(self.start, self.stop, dtype=np.int64)


@dataclass(frozen=True)
class BitmapPositions:
    """A bit per position over [offset, offset + len(bits))."""

    offset: int
    bits: np.ndarray  # bool

    @property
    def count(self) -> int:
        # count is consulted repeatedly (intersection ordering, empty
        # checks, survivor reporting); popcount once and cache.
        cached = self.__dict__.get("_count")
        if cached is None:
            cached = int(self.bits.sum())
            object.__setattr__(self, "_count", cached)
        return cached

    def bounds(self) -> Optional[Tuple[int, int]]:
        if len(self.bits) == 0 or self.count == 0:
            return None
        first = int(np.argmax(self.bits))
        last = len(self.bits) - 1 - int(np.argmax(self.bits[::-1]))
        return (self.offset + first, self.offset + last + 1)

    def to_array(self) -> np.ndarray:
        return np.flatnonzero(self.bits).astype(np.int64) + self.offset


@dataclass(frozen=True)
class ArrayPositions:
    """An explicit, ascending array of positions."""

    positions: np.ndarray

    @property
    def count(self) -> int:
        return len(self.positions)

    def bounds(self) -> Optional[Tuple[int, int]]:
        if len(self.positions) == 0:
            return None
        return (int(self.positions[0]), int(self.positions[-1]) + 1)

    def to_array(self) -> np.ndarray:
        return self.positions


Positions = Union[RangePositions, BitmapPositions, ArrayPositions]

EMPTY = ArrayPositions(np.zeros(0, dtype=np.int64))


def from_bitmap_maybe_range(offset: int, bits: np.ndarray) -> Positions:
    """Collapse a bitmap whose set bits are contiguous into a range.

    Contiguity is decided from the popcount and the first/last set bit —
    no index array is materialized just to count or bound the bitmap.
    """
    count = int(bits.sum())
    if count == 0:
        return EMPTY
    first = int(np.argmax(bits))
    last = len(bits) - 1 - int(np.argmax(bits[::-1]))
    if last - first + 1 == count:
        return RangePositions(offset + first, offset + last + 1)
    out = BitmapPositions(offset, bits)
    object.__setattr__(out, "_count", count)
    return out


def _clip_bitmap(bm: BitmapPositions, start: int, stop: int
                 ) -> BitmapPositions:
    lo = max(bm.offset, start)
    hi = min(bm.offset + len(bm.bits), stop)
    if hi <= lo:
        return BitmapPositions(start, np.zeros(0, dtype=bool))
    return BitmapPositions(lo, bm.bits[lo - bm.offset:hi - bm.offset])


def intersect(a: Positions, b: Positions, stats: QueryStats) -> Positions:
    """AND two position lists, charging per element actually combined."""
    # empty short-circuits
    if a.count == 0 or b.count == 0:
        return EMPTY
    if isinstance(a, RangePositions) and isinstance(b, RangePositions):
        stats.position_ops += 1
        lo, hi = max(a.start, b.start), min(a.stop, b.stop)
        return RangePositions(lo, hi) if hi > lo else EMPTY
    if isinstance(a, RangePositions):
        return intersect(b, a, stats)
    if isinstance(b, RangePositions):
        # clip a to the range
        if isinstance(a, BitmapPositions):
            clipped = _clip_bitmap(a, b.start, b.stop)
            stats.position_ops += max(len(clipped.bits) // 64, 1)
            return from_bitmap_maybe_range(clipped.offset, clipped.bits)
        inside = a.positions[(a.positions >= b.start)
                             & (a.positions < b.stop)]
        stats.position_ops += len(a.positions)
        return ArrayPositions(inside)
    if isinstance(a, BitmapPositions) and isinstance(b, BitmapPositions):
        lo = max(a.offset, b.offset)
        hi = min(a.offset + len(a.bits), b.offset + len(b.bits))
        if hi <= lo:
            return EMPTY
        bits = (a.bits[lo - a.offset:hi - a.offset]
                & b.bits[lo - b.offset:hi - b.offset])
        # bitwise AND proceeds a word (64 positions) at a time
        stats.position_ops += max((hi - lo) // 64, 1)
        return from_bitmap_maybe_range(lo, bits)
    if isinstance(a, BitmapPositions):
        return intersect(b, a, stats)
    if isinstance(b, BitmapPositions):
        arr = a.positions
        inside = arr[(arr >= b.offset) & (arr < b.offset + len(b.bits))]
        keep = b.bits[inside - b.offset]
        stats.position_ops += len(arr)
        return ArrayPositions(inside[keep])
    # array x array
    stats.position_ops += a.count + b.count
    common = np.intersect1d(a.positions, b.positions, assume_unique=True)
    return ArrayPositions(common)


def slice_window(positions: Positions, lo: int, hi: int) -> Positions:
    """The sub-list of ``positions`` falling inside [lo, hi).

    Used by the morsel layer to hand each worker its share of a
    position list.  This is a physical split of disjoint windows, not a
    predicate evaluation, so no ``position_ops`` are charged.
    """
    if hi <= lo or positions.count == 0:
        return EMPTY
    if isinstance(positions, RangePositions):
        start, stop = max(positions.start, lo), min(positions.stop, hi)
        return RangePositions(start, stop) if stop > start else EMPTY
    if isinstance(positions, BitmapPositions):
        clipped = _clip_bitmap(positions, lo, hi)
        if len(clipped.bits) == 0:
            return EMPTY
        return from_bitmap_maybe_range(clipped.offset, clipped.bits)
    arr = positions.positions
    a = int(np.searchsorted(arr, lo, side="left"))
    b = int(np.searchsorted(arr, hi, side="left"))
    return ArrayPositions(arr[a:b]) if b > a else EMPTY


def concat_windows(parts: Sequence[Positions], lo: int, hi: int) -> Positions:
    """Reassemble per-window position lists back into one list over
    [lo, hi).

    The windows must be disjoint and ascending (the morsel invariant).
    The result is exactly what a serial scan of the whole window would
    have produced — including the bitmap-to-range collapse — so parallel
    and serial plans hand identical representations downstream.
    """
    live = [p for p in parts if p.count != 0]
    if not live:
        return EMPTY
    if hi <= lo:
        raise ExecutionError(f"invalid concat window [{lo}, {hi})")
    if len(live) == 1 and isinstance(live[0], RangePositions):
        return live[0]
    bits = np.zeros(hi - lo, dtype=bool)
    for part in live:
        if isinstance(part, RangePositions):
            bits[part.start - lo:part.stop - lo] = True
        elif isinstance(part, BitmapPositions):
            off = part.offset - lo
            bits[off:off + len(part.bits)] = part.bits
        else:
            bits[part.positions - lo] = True
    return from_bitmap_maybe_range(lo, bits)


def intersect_all(lists, stats: QueryStats) -> Positions:
    """Fold :func:`intersect` over a sequence, cheapest-first."""
    items = sorted(lists, key=lambda p: p.count)
    if not items:
        raise ExecutionError("intersect of zero position lists")
    acc = items[0]
    for other in items[1:]:
        acc = intersect(acc, other, stats)
        if acc.count == 0:
            return EMPTY
    return acc


__all__ = [
    "RangePositions",
    "BitmapPositions",
    "ArrayPositions",
    "Positions",
    "EMPTY",
    "intersect",
    "intersect_all",
    "from_bitmap_maybe_range",
    "slice_window",
    "concat_windows",
]
