"""Position lists: the intermediate currency of late materialization.

Section 5.2: "Depending on the predicate selectivity, this list of
positions can be represented as a simple array, a bit string ... or as a
set of ranges of positions.  These position representations are then
intersected ... to create a single position list."

Three representations are implemented, each knowing how to intersect
with the others and how to convert to a sorted position array.  Range x
range intersection is O(1); bitmap x bitmap is a vectorized AND charged
per word of overlap; arrays are merged.  ``intersect`` dispatches to the
cheapest combination and charges ``position_ops`` for the work actually
performed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from ..errors import ExecutionError
from ..simio.stats import QueryStats


@dataclass(frozen=True)
class RangePositions:
    """The contiguous positions [start, stop)."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.stop < self.start:
            raise ExecutionError(
                f"invalid position range [{self.start}, {self.stop})"
            )

    @property
    def count(self) -> int:
        return self.stop - self.start

    def bounds(self) -> Optional[Tuple[int, int]]:
        return (self.start, self.stop) if self.count else None

    def to_array(self) -> np.ndarray:
        return np.arange(self.start, self.stop, dtype=np.int64)


@dataclass(frozen=True)
class BitmapPositions:
    """A bit per position over [offset, offset + len(bits))."""

    offset: int
    bits: np.ndarray  # bool

    @property
    def count(self) -> int:
        return int(self.bits.sum())

    def bounds(self) -> Optional[Tuple[int, int]]:
        hits = np.flatnonzero(self.bits)
        if len(hits) == 0:
            return None
        return (self.offset + int(hits[0]), self.offset + int(hits[-1]) + 1)

    def to_array(self) -> np.ndarray:
        return np.flatnonzero(self.bits).astype(np.int64) + self.offset


@dataclass(frozen=True)
class ArrayPositions:
    """An explicit, ascending array of positions."""

    positions: np.ndarray

    @property
    def count(self) -> int:
        return len(self.positions)

    def bounds(self) -> Optional[Tuple[int, int]]:
        if len(self.positions) == 0:
            return None
        return (int(self.positions[0]), int(self.positions[-1]) + 1)

    def to_array(self) -> np.ndarray:
        return self.positions


Positions = Union[RangePositions, BitmapPositions, ArrayPositions]

EMPTY = ArrayPositions(np.zeros(0, dtype=np.int64))


def from_bitmap_maybe_range(offset: int, bits: np.ndarray) -> Positions:
    """Collapse a bitmap whose set bits are contiguous into a range."""
    hits = np.flatnonzero(bits)
    if len(hits) == 0:
        return EMPTY
    first, last = int(hits[0]), int(hits[-1])
    if last - first + 1 == len(hits):
        return RangePositions(offset + first, offset + last + 1)
    return BitmapPositions(offset, bits)


def _clip_bitmap(bm: BitmapPositions, start: int, stop: int
                 ) -> BitmapPositions:
    lo = max(bm.offset, start)
    hi = min(bm.offset + len(bm.bits), stop)
    if hi <= lo:
        return BitmapPositions(start, np.zeros(0, dtype=bool))
    return BitmapPositions(lo, bm.bits[lo - bm.offset:hi - bm.offset])


def intersect(a: Positions, b: Positions, stats: QueryStats) -> Positions:
    """AND two position lists, charging per element actually combined."""
    # empty short-circuits
    if a.count == 0 or b.count == 0:
        return EMPTY
    if isinstance(a, RangePositions) and isinstance(b, RangePositions):
        stats.position_ops += 1
        lo, hi = max(a.start, b.start), min(a.stop, b.stop)
        return RangePositions(lo, hi) if hi > lo else EMPTY
    if isinstance(a, RangePositions):
        return intersect(b, a, stats)
    if isinstance(b, RangePositions):
        # clip a to the range
        if isinstance(a, BitmapPositions):
            clipped = _clip_bitmap(a, b.start, b.stop)
            stats.position_ops += max(len(clipped.bits) // 64, 1)
            return from_bitmap_maybe_range(clipped.offset, clipped.bits)
        inside = a.positions[(a.positions >= b.start)
                             & (a.positions < b.stop)]
        stats.position_ops += len(a.positions)
        return ArrayPositions(inside)
    if isinstance(a, BitmapPositions) and isinstance(b, BitmapPositions):
        lo = max(a.offset, b.offset)
        hi = min(a.offset + len(a.bits), b.offset + len(b.bits))
        if hi <= lo:
            return EMPTY
        bits = (a.bits[lo - a.offset:hi - a.offset]
                & b.bits[lo - b.offset:hi - b.offset])
        # bitwise AND proceeds a word (64 positions) at a time
        stats.position_ops += max((hi - lo) // 64, 1)
        return from_bitmap_maybe_range(lo, bits)
    if isinstance(a, BitmapPositions):
        return intersect(b, a, stats)
    if isinstance(b, BitmapPositions):
        arr = a.positions
        inside = arr[(arr >= b.offset) & (arr < b.offset + len(b.bits))]
        keep = b.bits[inside - b.offset]
        stats.position_ops += len(arr)
        return ArrayPositions(inside[keep])
    # array x array
    stats.position_ops += a.count + b.count
    common = np.intersect1d(a.positions, b.positions, assume_unique=True)
    return ArrayPositions(common)


def intersect_all(lists, stats: QueryStats) -> Positions:
    """Fold :func:`intersect` over a sequence, cheapest-first."""
    items = sorted(lists, key=lambda p: p.count)
    if not items:
        raise ExecutionError("intersect of zero position lists")
    acc = items[0]
    for other in items[1:]:
        acc = intersect(acc, other, stats)
        if acc.count == 0:
            return EMPTY
    return acc


__all__ = [
    "RangePositions",
    "BitmapPositions",
    "ArrayPositions",
    "Positions",
    "EMPTY",
    "intersect",
    "intersect_all",
    "from_bitmap_maybe_range",
]
