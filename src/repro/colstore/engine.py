"""The C-Store facade: load projections once, execute queries per config.

Also implements the "CS Row-MV" mode of Figure 5: the row-oriented
materialized-view data is stored inside the column store as a table with
a single string column whose values are entire tuples (exactly the trick
the paper describes in Section 6.1), and queries over it reconstruct
tuples up front and run the row-style pipeline.  C-Store has no
partitioning, so Row-MV scans always read every year.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ChecksumError, CorruptPageError, PlanError, WriteError
from ..obs import Span, Trace, Tracer, span_context
from ..plan.logical import StarQuery
from ..result import ResultSet
from ..simio.buffer_pool import BufferPool
from ..simio.disk import SimulatedDisk
from ..simio.stats import CostBreakdown, CostModel, PAPER_2008, QueryStats
from ..ssb.generator import SsbData
from ..ssb.queries import FLIGHT_OF
from ..ssb.schema import DIMENSION_SORT_KEYS, FACT_SORT_KEYS
from ..storage.colfile import ColumnFile, CompressionLevel
from ..storage.column import Column
from ..storage.projection import Projection
from ..storage.rowpage import RowFormat
from ..storage.table import Table
from ..core.config import ExecutionConfig
from ..rowstore.designs import mv_columns_for_flight
from .operators.aggregate import factorize_groups
from .operators.materialize import row_pipeline
from .operators.scan import stored_bounds
from .planner import ColumnPlanner, StoreContext

#: Same machine as the row store: pool scales with the data (Section 6).
PAPER_BUFFER_POOL_BYTES = 500 * 1024 * 1024
PAPER_SCALE_FACTOR = 10.0
MIN_POOL_BYTES = 8 * 32 * 1024


@dataclass
class ColumnStoreRun:
    """Outcome of one query execution."""

    result: ResultSet
    stats: QueryStats
    cost: CostBreakdown
    #: per-phase span tree; verified to sum exactly to ``stats``
    trace: Optional[Trace] = None
    #: surviving fact positions (late-materialization plans only) and
    #: the fact projection they index into — consumed by the service
    #: layer's semantic cache; ``None`` for early-materialization plans
    survivors: Optional[object] = None
    projection_name: Optional[str] = None
    #: which shards ran / were eliminated (sharded executions only)
    shard_report: Optional[object] = None

    @property
    def seconds(self) -> float:
        return self.cost.total_seconds


class CStore:
    """A C-Store-style column engine over the simulated disk.

    Parameters
    ----------
    data:
        The generated SSB database.
    levels:
        Which compression levels to materialize projections at.  ``MAX``
        serves the compressed configurations, ``NONE`` the uncompressed
        ones; load only what you need.
    row_mv:
        Also store the per-flight materialized views as rows-in-a-string-
        column for the CS Row-MV experiment.
    """

    def __init__(
        self,
        data: SsbData,
        levels: Sequence[CompressionLevel] = (
            CompressionLevel.MAX, CompressionLevel.NONE),
        row_mv: bool = False,
        cost_model: CostModel = PAPER_2008,
        buffer_pool_bytes: Optional[int] = None,
        fault_injector=None,
    ) -> None:
        self.data = data
        self.cost_model = cost_model
        scale = data.scale_factor / PAPER_SCALE_FACTOR
        if buffer_pool_bytes is None:
            buffer_pool_bytes = max(MIN_POOL_BYTES,
                                    int(PAPER_BUFFER_POOL_BYTES * scale))
        self._levels = tuple(levels)
        self._pool_bytes = buffer_pool_bytes
        #: shard count -> [(FactShard, child CStore)], built lazily
        self._shard_sets: Dict[int, List[Tuple[object, "CStore"]]] = {}
        #: lazily created delta store (first accepted write); None means
        #: this engine has never seen a write
        self._writes = None
        #: write epoch the current base pages (and their zone-map
        #: sidecars) reflect; bumped by the tuple mover
        self._zm_epoch = 0
        #: the tables this engine was opened with — cold-start replay
        #: always re-applies the journal against these, never against a
        #: possibly-moved current base, so recovery is idempotent
        self._genesis_tables: Dict[str, Table] = dict(data.tables)
        self.disk = SimulatedDisk()
        # installed before any load so shadow rebuilds are fault-injectable
        self.disk.fault_injector = fault_injector
        self.pool = BufferPool(self.disk, buffer_pool_bytes)
        self._projections: Dict[Tuple[str, CompressionLevel],
                                List[Projection]] = {}
        self._tables: Dict[str, Table] = dict(data.tables)
        self._contiguous: Dict[str, Optional[int]] = {}
        self._monotonic: Dict[str, bool] = {}
        for level in levels:
            self.load_table(data.lineorder, FACT_SORT_KEYS, level)
            for name, dim in data.dimensions().items():
                self.load_table(dim, DIMENSION_SORT_KEYS[name], level)
        self._row_mv: Dict[int, Tuple[RowFormat, ColumnFile, List[str]]] = {}
        if row_mv:
            for flight in sorted({FLIGHT_OF[name] for name in FLIGHT_OF}):
                self.load_row_mv(flight)

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #
    def load_table(self, table: Table, sort_keys: Sequence[str],
                   level: CompressionLevel) -> Projection:
        """Materialize a projection of ``table`` (idempotent per level
        and sort order).  The first projection loaded for a table is its
        default; later ones (see :meth:`add_projection`) become
        candidates for query-driven projection selection."""
        key = (table.name, level)
        existing = self._projections.get(key, [])
        for projection in existing:
            if projection.sort_order.keys == tuple(sort_keys):
                return projection
        name = (f"{table.name}.{level.value}."
                f"{'_'.join(sort_keys) or 'unsorted'}")
        projection = Projection.create(self.disk, table, sort_keys, level,
                                       name=name)
        self._projections.setdefault(key, []).append(projection)
        self._tables[table.name] = table
        if table.name not in self._contiguous:
            self._classify_keys(table)
        return projection

    def add_projection(self, table_name: str, sort_keys: Sequence[str],
                       levels: Optional[Sequence[CompressionLevel]] = None
                       ) -> None:
        """Store an *additional* projection of an already-loaded table in
        a different sort order — the redundancy C-Store supports but the
        paper deliberately forgoes (Section 5.1).  The planner picks the
        projection whose primary sort key is restricted by the query."""
        table = self._tables[table_name]
        if levels is None:
            levels = sorted({lv for (t, lv) in self._projections
                             if t == table_name}, key=lambda lv: lv.value)
        for level in levels:
            self.load_table(table, sort_keys, level)

    def _classify_keys(self, table: Table) -> None:
        """Detect contiguous-from-1 and monotonic key columns (used by
        the invisible join's extraction phase)."""
        key_column = table.columns()[0]
        if key_column.dictionary is not None:
            self._contiguous[table.name] = None
            self._monotonic[table.name] = False
            return
        keys = key_column.data
        if len(keys) and np.array_equal(
                keys, np.arange(1, len(keys) + 1, dtype=keys.dtype)):
            self._contiguous[table.name] = 1
            self._monotonic[table.name] = True
        else:
            self._contiguous[table.name] = None
            self._monotonic[table.name] = bool(
                len(keys) == 0 or np.all(np.diff(keys.astype(np.int64)) >= 0))

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _context(self, forbidden: Optional[set] = None) -> StoreContext:
        return StoreContext(
            pool=self.pool,
            projections=self._projections,
            tables=self._tables,
            dim_key_contiguous=self._contiguous,
            dim_key_monotonic=self._monotonic,
            forbidden=forbidden,
        )

    def find_owner(self, file_name: str
                   ) -> Optional[Tuple[Projection, str]]:
        """Which (projection, column) a disk file belongs to, if any."""
        for candidates in self._projections.values():
            for projection in candidates:
                column = projection.column_for_file(file_name)
                if column is not None:
                    return projection, column
        return None

    def execute(
        self,
        query: StarQuery,
        config: ExecutionConfig = ExecutionConfig.baseline(),
        level: Optional[CompressionLevel] = None,
        cold_pool: bool = True,
        cancellation=None,
        _visibility=None,
    ) -> ColumnStoreRun:
        """Run ``query`` under ``config`` on a fresh ledger.

        ``level`` overrides the compression level implied by the config
        (used by the Figure 8 denormalization cases, where "PJ, Int C"
        keeps dictionary codes but no further compression).
        ``cold_pool=False`` keeps the pool warm across runs (the
        paper's Section 6.1 measurement protocol).
        ``cancellation`` installs a cooperative
        :class:`~repro.serve.resilience.CancellationToken` for the run:
        page and morsel boundaries check it, and an expired deadline or
        budget surfaces as :class:`~repro.errors.QueryCancelledError`.

        Degrades gracefully under persistent corruption: when a read
        hits a quarantined/corrupt page of a projection and another
        projection of the same table exists at the same level, the query
        restarts planned around the damaged projection (counted in
        ``stats.recoveries``).  When no redundancy remains the query
        fails with a structured :class:`CorruptPageError` — never a
        silently wrong result.

        ``config.shards > 1`` routes through the scatter-gather
        executor: each shard is a complete child ``CStore`` on its own
        disk array, shard elimination runs before any I/O, and the
        returned run carries the merged ledger and span tree (see
        ``docs/sharding.md``).

        When the engine holds pending writes the run becomes a snapshot
        read pinned at the current epoch (see ``docs/writes.md``):
        pending deletes patch base-scan positions in place, and visible
        WOS fact inserts add a ``wos-merge`` partial combined through
        the scatter-gather merger.  Requires ``config.writes``; a
        read-only config against a dirty engine raises
        :class:`~repro.errors.WriteError` rather than answering wrong.
        """
        ws = self._writes
        if (_visibility is None and ws is not None and config.writes
                and config.move_threshold_rows is not None
                and ws.pending_rows() > config.move_threshold_rows):
            # automatic tuple-mover policy: drain on its own ledger so
            # the query's ledger only ever carries query work
            self.move()
        if _visibility is None and ws is not None and ws.has_pending():
            if not config.writes:
                raise WriteError(
                    "engine holds pending writes; enable "
                    "ExecutionConfig.writes or run the tuple mover first"
                )
            vis = ws.visibility()
            if vis.needs_merge:
                return self._execute_merge(query, config, level, cold_pool,
                                           cancellation, vis)
            _visibility = vis
        if config.shards > 1:
            return self._execute_sharded(query, config, level, cold_pool,
                                         cancellation, _visibility)
        forbidden: set = set()
        recoveries = 0
        saved_cancellation = self.disk.cancellation
        if cancellation is not None:
            self.disk.cancellation = cancellation
        try:
            while True:
                stats = QueryStats()
                self.disk.stats = stats
                # cold pool per query: order-independent, deterministic
                # ledgers
                if cold_pool:
                    self.pool.clear()
                else:
                    self.disk.reset_head()
                tracer = Tracer(stats, self.cost_model)
                planner = ColumnPlanner(self._context(forbidden), config,
                                        level, tracer=tracer,
                                        visibility=_visibility)
                try:
                    result = planner.run(query)
                except ChecksumError as error:
                    forbidden, recoveries = self._plan_recovery(
                        error, forbidden, recoveries)
                    continue
                stats.recoveries += recoveries
                # the span tree is verified to sum exactly to the flat
                # ledger
                trace = tracer.finish(stats)
                return ColumnStoreRun(
                    result, stats, self.cost_model.cost(stats), trace=trace,
                    survivors=getattr(planner, "last_positions", None),
                    projection_name=getattr(planner, "last_projection",
                                            None))
        finally:
            self.disk.cancellation = saved_cancellation

    # ------------------------------------------------------------------ #
    # sharded execution
    # ------------------------------------------------------------------ #
    def shard_children(self, shards: int) -> List[Tuple[object, "CStore"]]:
        """The ``shards``-way shard set: each entry pairs a
        :class:`~repro.shard.partition.FactShard` with a complete child
        engine on its own simulated disk array.  Built once per shard
        count and reused across queries (the shards *are* the physical
        design, not per-query scratch state)."""
        existing = self._shard_sets.get(shards)
        if existing is not None:
            return existing
        from ..shard.partition import ShardScheme, partition_data

        scheme = (ShardScheme.RANGE
                  if self.data.lineorder.sort_order.sorted_prefix_of(
                      "orderdate")
                  else ShardScheme.HASH)
        child_pool = max(MIN_POOL_BYTES, self._pool_bytes // shards)
        children = [
            (shard, CStore(shard.data, levels=self._levels,
                           cost_model=self.cost_model,
                           buffer_pool_bytes=child_pool))
            for shard in partition_data(self.data, shards, scheme)
        ]
        self._shard_sets[shards] = children
        return children

    def _execute_sharded(
        self,
        query: StarQuery,
        config: ExecutionConfig,
        level: Optional[CompressionLevel],
        cold_pool: bool,
        cancellation,
        visibility=None,
    ) -> ColumnStoreRun:
        from ..shard.executor import scatter_gather

        children = self.shard_children(config.shards)
        child_config = replace(config, shards=1)

        def execute_one(k: int, shard_query: StarQuery) -> ColumnStoreRun:
            child_vis = None
            if visibility is not None and visibility.needs_patching:
                # slice the database-wide deleted mask down to this
                # shard's fact rows (shard positions index the unsharded
                # fact table)
                from ..write.store import Visibility

                shard = children[k][0]
                mask = visibility.fact_deleted[shard.positions]
                if bool(mask.any()):
                    child_vis = Visibility(
                        epoch=visibility.epoch, store=visibility.store,
                        fact_deleted=mask)
            return children[k][1].execute(
                shard_query, child_config, level=level, cold_pool=cold_pool,
                cancellation=cancellation, _visibility=child_vis)

        result, stats, trace, report = scatter_gather(
            query, [shard.synopsis for shard, _engine in children],
            self.data.date, execute_one, self.cost_model)
        return ColumnStoreRun(result, stats, self.cost_model.cost(stats),
                              trace=trace, shard_report=report)

    # ------------------------------------------------------------------ #
    # snapshot reads over pending inserts (WOS merge)
    # ------------------------------------------------------------------ #
    def _execute_merge(
        self,
        query: StarQuery,
        config: ExecutionConfig,
        level: Optional[CompressionLevel],
        cold_pool: bool,
        cancellation,
        vis,
    ) -> ColumnStoreRun:
        """Base run plus a WOS delta partial, combined like one more
        shard.  The scatter rewrite makes the partials mergeable (AVG as
        SUM+COUNT, hidden row counts for scalar MIN/MAX), and the merged
        trace carries the delta's compute under a ``wos-merge`` span."""
        from ..shard.executor import gather, shard_plan
        from ..write.delta import delta_partial

        spec = shard_plan(query)
        base_run = self.execute(spec.shard_query, config, level=level,
                                cold_pool=cold_pool,
                                cancellation=cancellation, _visibility=vis)
        delta_stats = QueryStats()
        partial = delta_partial(spec.shard_query, vis.delta_tables(),
                                delta_stats)
        result = gather(query, spec, [base_run.result, partial])
        merged = QueryStats(**base_run.stats.snapshot())
        merged.merge(delta_stats)
        spans = [
            Span("base-store", QueryStats(**base_run.stats.snapshot()),
                 base_run.cost, children=[base_run.trace.root]),
            Span("wos-merge", QueryStats(**delta_stats.snapshot()),
                 self.cost_model.cost(delta_stats)),
        ]
        root = Span("query", QueryStats(**merged.snapshot()),
                    self.cost_model.cost(merged), children=spans)
        trace = Trace(root).verify(merged)
        return ColumnStoreRun(result, merged, self.cost_model.cost(merged),
                              trace=trace,
                              shard_report=base_run.shard_report)

    def _plan_recovery(self, error: ChecksumError, forbidden: set,
                       recoveries: int) -> Tuple[set, int]:
        """Decide how to continue after a persistent corrupt page.

        Returns the updated (forbidden projections, recovery count) when
        an alternative projection can serve the damaged one's table, or
        raises :class:`CorruptPageError` when none can.
        """
        owner = self.find_owner(error.file)
        if owner is not None:
            victim, _column = owner
            alternatives = [
                p for p in self._projections.get(
                    (victim.table_name, victim.level), [])
                if p.name != victim.name and p.name not in forbidden
            ]
            if alternatives:
                return forbidden | {victim.name}, recoveries + 1
        raise CorruptPageError(
            error.file, error.page_no, error.disk_no,
            detail="no redundant projection covers this file",
        ) from error

    # ------------------------------------------------------------------ #
    # writes: WOS delegation and the tuple mover
    # ------------------------------------------------------------------ #
    def _write_store(self):
        if self._writes is None:
            from ..write.store import WriteStore

            self._writes = WriteStore(dict(self.data.tables))
            # journal faults come from the same injector as data faults
            self._writes.journal.disk.fault_injector = \
                self.disk.fault_injector
        return self._writes

    def insert(self, table: str, rows, stats: Optional[QueryStats] = None,
               tracer: Optional[Tracer] = None) -> int:
        """Validate, journal, and buffer ``rows`` into the WOS.
        All-or-nothing; returns rows accepted."""
        if stats is None:
            stats = QueryStats()
        return self._write_store().insert(table, rows, stats, tracer)

    def delete(self, table: str, predicates,
               stats: Optional[QueryStats] = None,
               tracer: Optional[Tracer] = None) -> int:
        """Mark matching rows deleted as of a fresh epoch (dimension
        deletes are RESTRICTed while referenced).  Returns rows marked."""
        if stats is None:
            stats = QueryStats()
        return self._write_store().delete(table, predicates, stats, tracer)

    def pending_writes(self) -> int:
        """Rows the tuple mover would merge right now (0 = clean)."""
        return 0 if self._writes is None else self._writes.pending_rows()

    def snapshot_tables(self):
        """The tables a reference oracle should replay: the current base
        merged with any pending delta (post-move, the adopted base)."""
        if self._writes is None:
            return self.data.tables
        return self._writes.effective_tables()

    @property
    def write_epoch(self) -> int:
        return 0 if self._writes is None else self._writes.epoch

    def move(self, stats: Optional[QueryStats] = None,
             tracer: Optional[Tracer] = None) -> int:
        """The tuple mover: drain the WOS into fresh base pages.

        Builds a complete shadow engine from the effective tables (the
        cold-rebuild order, so post-move reads are byte-identical to a
        rebuild), retrying transient write faults with the journal's
        backoff schedule, then swaps it in atomically and advances the
        merge horizon.  All shadow-build I/O is charged to ``stats``
        under a ``tuple-move`` span.  On failure the serving store is
        untouched.  Returns the number of rows merged.
        """
        ws = self._writes
        if ws is None or not ws.has_pending():
            return 0
        if stats is None:
            stats = QueryStats()
        from ..simio.faults import (CRASH_AFTER_MOVE_SWAP,
                                    CRASH_BEFORE_MOVE_SWAP, crash_point)

        moved = ws.pending_rows()
        effective = ws.effective_tables()
        with span_context(tracer, "tuple-move"):
            shadow = self._rebuild_from_effective(effective, ws.epoch, stats,
                                                  crash_points=True)
            stats.merge(shadow.disk.stats)
            # the move record is the swap's commit point: a crash before
            # it leaves orphan shadow pages recovery discards, a crash
            # after it is a completed move recovery rolls forward
            crash_point(self.disk.fault_injector, CRASH_BEFORE_MOVE_SWAP)
            ws.journal.append({"op": "move", "epoch": ws.epoch,
                               "rows": moved}, stats, tracer)
            crash_point(self.disk.fault_injector, CRASH_AFTER_MOVE_SWAP)
            self._adopt_shadow(shadow)
            ws.complete_move(effective)
            self._zm_epoch = ws.epoch
            stats.moves += 1
        return moved

    def _rebuild_from_effective(self, effective: Dict[str, Table],
                                epoch: int, stats: QueryStats,
                                crash_points: bool = False) -> "CStore":
        """Build (and epoch-stamp) a complete shadow engine from the
        effective tables, retrying transient write faults with the
        journal's backoff schedule.  Shared by the tuple mover and by
        cold-start recovery; only the mover arms the mid-shadow kill
        point (recovery re-running this path must not re-crash)."""
        from ..errors import TransientIOError, WriteFaultError
        from ..simio.buffer_pool import _backoff_us
        from ..simio.faults import CRASH_MID_MOVE_SHADOW, crash_point
        from ..synopsis import stamp_sidecars
        from ..write.journal import MAX_WRITE_RETRIES

        data = SsbData(
            scale_factor=self.data.scale_factor,
            seed=self.data.seed,
            lineorder=effective["lineorder"],
            customer=effective["customer"],
            supplier=effective["supplier"],
            part=effective["part"],
            date=effective["date"],
        )
        for attempt in range(1, MAX_WRITE_RETRIES + 1):
            try:
                shadow = CStore(
                    data, levels=self._levels,
                    row_mv=bool(self._row_mv),
                    cost_model=self.cost_model,
                    buffer_pool_bytes=self._pool_bytes,
                    fault_injector=self.disk.fault_injector)
                if crash_points:
                    # dies with shadow pages built but unstamped and no
                    # move record: pure orphans, discarded on recovery
                    crash_point(self.disk.fault_injector,
                                CRASH_MID_MOVE_SHADOW)
                # stamp the shadow's sidecars with the merged epoch
                # so the scrubber can tell drift from pending delta
                stamp_sidecars(shadow.disk, epoch)
                return shadow
            except TransientIOError as exc:
                stats.io_retries += 1
                stats.retry_backoff_us += _backoff_us(attempt)
                if attempt == MAX_WRITE_RETRIES:
                    raise WriteFaultError(
                        f"tuple move failed after {MAX_WRITE_RETRIES} "
                        f"shadow-build attempts: {exc}"
                    ) from exc

    def _adopt_shadow(self, shadow: "CStore") -> None:
        """Atomically swap the shadow engine's storage in as our own."""
        self.data = shadow.data
        self.disk = shadow.disk
        self.pool = shadow.pool
        self._projections = shadow._projections
        self._tables = shadow._tables
        self._contiguous = shadow._contiguous
        self._monotonic = shadow._monotonic
        self._row_mv = shadow._row_mv
        self._shard_sets = {}
        self.disk.stats = QueryStats()

    def recover(self, journal=None, committed_lsn: Optional[int] = None,
                stats: Optional[QueryStats] = None,
                tracer: Optional[Tracer] = None):
        """Cold-start crash recovery: replay the redo journal against the
        genesis tables, roll a committed move forward, refresh stale
        zone-map sidecars, and adopt the recovered write store.  Returns
        a :class:`~repro.write.recovery.RecoveryReport`; see
        ``docs/writes.md`` ("Crash recovery")."""
        from ..write.recovery import recover_engine

        return recover_engine(self, journal, committed_lsn, stats, tracer)

    def storage_bytes(self) -> int:
        return self.disk.total_bytes

    def projection(self, table: str, level: CompressionLevel) -> Projection:
        return self._context().projection(table, level)

    def explain(
        self,
        query: StarQuery,
        config: ExecutionConfig = ExecutionConfig.baseline(),
        level: Optional[CompressionLevel] = None,
    ) -> str:
        """EXPLAIN (analyze-style): execute ``query`` on a throwaway
        ledger and describe the plan with its run-time decisions —
        between-rewrites taken, hash fallbacks, surviving positions."""
        from .explain import explain as _explain

        saved = self.disk.stats
        self.disk.stats = QueryStats()
        forbidden: set = set()
        recoveries = 0
        try:
            while True:
                try:
                    return _explain(self._context(forbidden), query, config,
                                    level)
                except ChecksumError as error:
                    # same failover contract as execute(): plan around the
                    # damaged projection or raise CorruptPageError
                    forbidden, recoveries = self._plan_recovery(
                        error, forbidden, recoveries)
                    self.disk.stats.recoveries = recoveries
        finally:
            self.disk.stats = saved

    # ------------------------------------------------------------------ #
    # CS Row-MV (Figure 5)
    # ------------------------------------------------------------------ #
    def load_row_mv(self, flight: int) -> None:
        """Store flight ``flight``'s materialized view as rows inside the
        column store: one column of type string, each value a tuple."""
        if flight in self._row_mv:
            return
        columns = mv_columns_for_flight(flight)
        view = self.data.lineorder.project(columns,
                                           new_name=f"rowmv_f{flight}")
        fmt = RowFormat(view.schema, header_bytes=0)
        records = fmt.build_records(view)
        blob = np.frombuffer(records.tobytes(),
                             dtype=f"S{fmt.record_width}")
        colfile = ColumnFile.load(
            self.disk, f"rowmv_f{flight}.rows",
            _ByteColumn(f"rowmv_f{flight}", blob),
            CompressionLevel.NONE)
        self._row_mv[flight] = (fmt, colfile, columns)

    def execute_row_mv(self, query: StarQuery) -> ColumnStoreRun:
        """Figure 5's "CS (Row-MV)": scan the row-blob column, reconstruct
        tuples, then run the row-style pipeline (no partition pruning)."""
        if self._writes is not None and self._writes.has_pending():
            raise WriteError(
                "row-MV execution does not support pending writes; "
                "run the tuple mover first"
            )
        try:
            return self._execute_row_mv(query)
        except ChecksumError as error:
            # Row-MV blobs are stored once; a persistently corrupt page
            # has no redundant projection to recover from.
            raise CorruptPageError(
                error.file, error.page_no, error.disk_no,
                detail="row-MV data has no redundant copy",
            ) from error

    def _execute_row_mv(self, query: StarQuery) -> ColumnStoreRun:
        flight = FLIGHT_OF.get(query.name)
        if flight is None or flight not in self._row_mv:
            raise PlanError(
                f"row-MV for query {query.name!r} not loaded; call "
                f"load_row_mv({flight}) first"
            )
        fmt, colfile, _columns = self._row_mv[flight]
        stats = QueryStats()
        self.disk.stats = stats
        self.pool.clear()
        config = ExecutionConfig.row_store_like()
        tracer = Tracer(stats, self.cost_model)
        planner = ColumnPlanner(self._context(), config,
                                CompressionLevel.MAX, tracer=tracer)

        with tracer.span("scan:row-mv"):
            raw = colfile.read_all(self.pool)
            n = len(raw)
            stats.iterator_calls += n  # the scan's per-tuple getNext
            records = np.frombuffer(raw.tobytes(), dtype=fmt.dtype)
            needed = query.fact_columns_needed()
            fact_arrays = {c: np.ascontiguousarray(records[c])
                           for c in needed}
            stats.tuples_constructed += n
            stats.tuple_attrs_copied += n * len(needed)

        pred_domains = [
            (p.column, stored_bounds(
                p, self.data.lineorder.column(p.column),
                CompressionLevel.NONE))
            for p in query.fact_predicates()
        ]
        with tracer.span("phase1:dimension-filter"):
            dims = [planner._dimension_rows_early(query, d)
                    for d in query.dimensions_used()]
        with tracer.span("row-pipeline"):
            group_raw, agg_arrays, _dims = row_pipeline(
                query, fact_arrays, pred_domains, dims, stats)

        from ..plan.aggregates import (
            finalize as finalize_agg,
            reduce_groups,
            reduce_scalar,
        )

        agg_funcs = [a.func for a in query.aggregates]
        if not query.group_by:
            with tracer.span("aggregate"):
                cells = [finalize_agg(func, *reduce_scalar(func, values))
                         for func, values in zip(agg_funcs, agg_arrays)]
            with tracer.span("sort"):
                columns = [a.alias for a in query.aggregates]
                result = ResultSet(columns, [tuple(cells)]).order_by(
                    query.order_by).limited(query.limit)
            return ColumnStoreRun(result, stats, self.cost_model.cost(stats),
                                  trace=tracer.finish(stats))

        with tracer.span("aggregate"):
            group_arrays: List[np.ndarray] = []
            planner._group_lookups = []
            for raw_arr in group_raw:
                codes, lookup = planner._normalize_group_array(raw_arr)
                group_arrays.append(codes)
                planner._group_lookups.append(lookup)
            matrix = np.stack(group_arrays)
            uniq, inverse = factorize_groups(matrix)
            reduced = [reduce_groups(func, values, inverse, uniq.shape[1])
                       for func, values in zip(agg_funcs, agg_arrays)]
        with tracer.span("sort"):
            result = planner._finalize(query, group_arrays, (uniq, reduced))
        return ColumnStoreRun(result, stats, self.cost_model.cost(stats),
                              trace=tracer.finish(stats))


class _ByteCType:
    """Type descriptor for a raw byte-string blob column."""

    is_string = False

    def __init__(self, dtype: np.dtype) -> None:
        self.width = dtype.itemsize
        self.numpy_dtype = dtype


class _ByteColumn:
    """Adapter presenting a raw byte-string array (one whole tuple per
    value) as a loadable column — the paper's "single column of type
    string whose values are entire tuples"."""

    def __init__(self, name: str, data: np.ndarray) -> None:
        self.name = name
        self.data = data
        self.dictionary = None
        self.ctype = _ByteCType(data.dtype)


__all__ = ["CStore", "ColumnStoreRun"]
