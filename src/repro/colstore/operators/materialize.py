"""Early materialization: tuple construction and row-style execution.

When late materialization is disabled (the ``l`` configurations and the
"CS Row-MV" mode of Figure 5), C-Store reads the needed columns, stitches
them into rows at the *start* of the plan, and executes the rest with
row-store operators (Section 6.1).  This module charges that path
honestly:

* ``construct_tuples`` — one tuple construction plus one attribute copy
  per column per row (decompression was already charged at read time);
* ``row_pipeline`` — per-tuple predicate evaluation, per-tuple hash
  probes into dimension tables, per-tuple attribute copies for the
  values carried along, and per-tuple aggregate updates, exactly the
  ledger profile of the row engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ...errors import ExecutionError
from ...plan.logical import (
    BinOp,
    ColumnRef,
    Expr,
    Literal,
    StarQuery,
)
from ...simio.stats import QueryStats


@dataclass
class DimensionRows:
    """A filtered dimension materialized for row-style probing:
    ``keys`` sorted ascending, attribute arrays aligned with them."""

    dimension: str
    keys: np.ndarray
    attrs: Dict[str, np.ndarray]


def construct_tuples(fact_arrays: Dict[str, np.ndarray],
                     stats: QueryStats) -> int:
    """Charge the stitching of column data into rows; returns row count."""
    if not fact_arrays:
        return 0
    n = len(next(iter(fact_arrays.values())))
    for name, arr in fact_arrays.items():
        if len(arr) != n:
            raise ExecutionError(
                f"ragged tuple construction: {name!r} has {len(arr)} rows, "
                f"expected {n}"
            )
    stats.tuples_constructed += n
    stats.tuple_attrs_copied += n * len(fact_arrays)
    return n


def _width_words(arr: np.ndarray) -> int:
    return max(1, arr.dtype.itemsize // 4)


def _apply_row_predicate(values: np.ndarray, domain, stats: QueryStats
                         ) -> np.ndarray:
    """Per-tuple predicate evaluation (scalar charges)."""
    n = len(values)
    stats.iterator_calls += n
    stats.attr_extractions += n
    if isinstance(domain, list):
        stats.values_scanned_scalar += n * _width_words(values) * max(
            1, len(domain))
        if not domain:
            return np.zeros(n, dtype=bool)
        return np.isin(values, np.asarray(sorted(domain)))
    lo, hi = domain
    stats.values_scanned_scalar += 2 * n * _width_words(values)
    return (values >= lo) & (values <= hi)


def _eval_expr_rowwise(expr: Expr, columns: Dict[str, np.ndarray],
                       stats: QueryStats) -> np.ndarray:
    n = len(next(iter(columns.values()))) if columns else 0
    if isinstance(expr, ColumnRef):
        stats.attr_extractions += n
        return columns[expr.column].astype(np.int64)
    if isinstance(expr, Literal):
        return np.full(n, expr.value, dtype=np.int64)
    if isinstance(expr, BinOp):
        left = _eval_expr_rowwise(expr.left, columns, stats)
        right = _eval_expr_rowwise(expr.right, columns, stats)
        stats.values_scanned_scalar += n
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        return left * right
    raise ExecutionError(f"unknown expression node {type(expr).__name__}")


def row_pipeline(
    query: StarQuery,
    fact_arrays: Dict[str, np.ndarray],
    fact_pred_domains: Sequence[Tuple[str, object]],
    dims: Sequence[DimensionRows],
    stats: QueryStats,
    num_rows: Optional[int] = None,
) -> Tuple[List[np.ndarray], List[np.ndarray], List[Optional[str]]]:
    """Row-store-style tail over constructed tuples.

    Returns (group arrays raw, aggregate input arrays, group source
    dimension per group column — None for fact columns).  The caller
    consolidates and decodes.  ``num_rows`` supplies the tuple count
    when the plan references no fact columns at all (a bare
    ``count(*)``), where ``fact_arrays`` cannot speak for it.
    """
    columns = dict(fact_arrays)
    n = construct_tuples(columns, stats)
    if not columns and num_rows is not None:
        n = num_rows

    # per-tuple selection
    mask = np.ones(n, dtype=bool)
    for column, domain in fact_pred_domains:
        alive = np.flatnonzero(mask)
        verdict = _apply_row_predicate(columns[column][alive], domain, stats)
        mask[alive[~verdict]] = False
    selector = np.flatnonzero(mask)
    columns = {k: v[selector] for k, v in columns.items()}

    # per-tuple dimension joins (probe + carry attributes along)
    dim_attr_values: Dict[Tuple[str, str], np.ndarray] = {}
    for dim in dims:
        fk = query.fk_of(dim.dimension)
        fk_values = columns[fk]
        stats.iterator_calls += len(fk_values)
        stats.hash_probes += len(fk_values)
        idx = np.searchsorted(dim.keys, fk_values)
        idx = np.minimum(idx, max(len(dim.keys) - 1, 0))
        found = (dim.keys[idx] == fk_values) if len(dim.keys) else \
            np.zeros(len(fk_values), dtype=bool)
        columns = {k: v[found] for k, v in columns.items()}
        matched = idx[found]
        for (d, a), v in list(dim_attr_values.items()):
            dim_attr_values[(d, a)] = v[found]
        for attr, values in dim.attrs.items():
            gathered = values[matched]
            stats.tuple_attrs_copied += len(gathered)
            dim_attr_values[(dim.dimension, attr)] = gathered

    # per-tuple aggregation inputs
    rows_final = len(next(iter(columns.values()))) if columns else n
    agg_arrays = [
        np.ones(rows_final, dtype=np.int64) if agg.func == "count"
        else _eval_expr_rowwise(agg.expr, columns, stats)
        for agg in query.aggregates
    ]
    stats.agg_updates += rows_final

    group_arrays: List[np.ndarray] = []
    group_dims: List[Optional[str]] = []
    for g in query.group_by:
        if g.table == query.fact_table:
            stats.attr_extractions += rows_final
            group_arrays.append(columns[g.column])
            group_dims.append(None)
        else:
            group_arrays.append(dim_attr_values[(g.table, g.column)])
            group_dims.append(g.table)
    return group_arrays, agg_arrays, group_dims


__all__ = ["DimensionRows", "construct_tuples", "row_pipeline"]
