"""Vectorized aggregation and expression evaluation for the column store.

Aggregate inputs are evaluated column-at-a-time over int64; grouped
aggregation consolidates raw group codes with a single sort-based pass.
Charges are per value per operator pass, at the vector or scalar rate
depending on block iteration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...errors import ExecutionError
from ...plan import aggregates as agg_semantics
from ...plan.logical import BinOp, ColumnRef, Expr, Literal
from ...simio.stats import QueryStats
from ...core.config import ExecutionConfig


def _charge(stats: QueryStats, config: ExecutionConfig, n: int,
            passes: int = 1) -> None:
    if config.block_iteration:
        stats.block_calls += 1
        stats.values_scanned_vector += n * passes
    else:
        stats.values_scanned_scalar += n * passes


def eval_fact_expr(
    expr: Expr,
    fact_columns: Dict[str, np.ndarray],
    stats: QueryStats,
    config: ExecutionConfig,
) -> np.ndarray:
    """Evaluate an aggregate-input expression over fetched fact columns."""
    if isinstance(expr, ColumnRef):
        try:
            return fact_columns[expr.column].astype(np.int64)
        except KeyError:
            raise ExecutionError(
                f"fact column {expr.column!r} was not fetched"
            ) from None
    if isinstance(expr, Literal):
        n = len(next(iter(fact_columns.values()))) if fact_columns else 0
        return np.full(n, expr.value, dtype=np.int64)
    if isinstance(expr, BinOp):
        left = eval_fact_expr(expr.left, fact_columns, stats, config)
        right = eval_fact_expr(expr.right, fact_columns, stats, config)
        _charge(stats, config, len(left))
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        return left * right
    raise ExecutionError(f"unknown expression node {type(expr).__name__}")


def scalar_aggregate(values_list: Sequence[np.ndarray], stats: QueryStats,
                     config: ExecutionConfig,
                     funcs: Optional[Sequence[str]] = None) -> List:
    """Reduce each input array (the no-GROUP-BY case of flight 1)."""
    if funcs is None:
        funcs = ["sum"] * len(values_list)
    out: List = []
    for func, values in zip(funcs, values_list):
        _charge(stats, config, len(values))
        primary, secondary = agg_semantics.reduce_scalar(func, values)
        out.append(agg_semantics.finalize(func, primary, secondary))
    return out


GroupReduction = Tuple[np.ndarray, Optional[np.ndarray]]

_I64 = np.iinfo(np.int64)


def factorize_groups(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Unique group keys (lexicographic by row order) and per-row inverse.

    Equivalent to ``np.unique(matrix, axis=1, return_inverse=True)`` but
    avoids the notoriously slow ``axis=`` path: the k group-code rows are
    ravelled into a single int64 packed key (first row most significant,
    so sorted packed order == lexicographic column order) and factorized
    with a 1-D ``np.unique``.  Falls back to the axis path only when the
    combined key domain cannot fit in an int64.
    """
    k, n = matrix.shape
    if n == 0:
        return matrix, np.zeros(0, dtype=np.int64)
    if k == 1:
        uniq, inverse = np.unique(matrix[0], return_inverse=True)
        return uniq[np.newaxis, :], inverse
    mins = matrix.min(axis=1)
    maxs = matrix.max(axis=1)
    spans = [int(hi) - int(lo) + 1 for lo, hi in zip(mins, maxs)]
    domain = 1
    for span in spans:  # exact product in Python ints; no silent overflow
        domain *= span
    if domain > 2 ** 62:
        uniq, inverse = np.unique(matrix, axis=1, return_inverse=True)
        return uniq, inverse
    key = np.zeros(n, dtype=np.int64)
    for row, lo, span in zip(matrix, mins, spans):
        key *= span
        key += row - lo
    _keys, index, inverse = np.unique(key, return_index=True,
                                      return_inverse=True)
    return matrix[:, index], inverse


def grouped_aggregate(
    group_arrays: Sequence[np.ndarray],
    agg_arrays: Sequence[np.ndarray],
    stats: QueryStats,
    config: ExecutionConfig,
    funcs: Optional[Sequence[str]] = None,
) -> Tuple[np.ndarray, List[GroupReduction]]:
    """Group and reduce.

    Returns (group key matrix [k x num_groups], per-aggregate (primary,
    secondary) accumulators — see :mod:`repro.plan.aggregates`).
    Charges one pass per value per group column (key formation) plus one
    per value per aggregate (accumulation).
    """
    if not group_arrays:
        raise ExecutionError("grouped_aggregate requires group columns")
    if funcs is None:
        funcs = ["sum"] * len(agg_arrays)
    n = len(group_arrays[0])
    for arr in group_arrays:
        _charge(stats, config, len(arr))
    matrix = np.stack([a.astype(np.int64) for a in group_arrays])
    if n == 0:
        return matrix, [(np.zeros(0, dtype=np.int64), None)
                        for _ in agg_arrays]
    uniq, inverse = factorize_groups(matrix)
    reduced: List[GroupReduction] = []
    for func, values in zip(funcs, agg_arrays):
        _charge(stats, config, len(values))
        reduced.append(agg_semantics.reduce_groups(func, values, inverse,
                                                   uniq.shape[1]))
    return uniq, reduced


def merge_group_reductions(
    funcs: Sequence[str],
    parts: Sequence[Tuple[np.ndarray, List[GroupReduction]]],
) -> Tuple[np.ndarray, List[GroupReduction]]:
    """Combine per-morsel :func:`grouped_aggregate` outputs into one.

    Each part carries its own unique-key matrix and accumulators; the
    merged result is identical to grouping the undivided input because
    every accumulator follows :mod:`repro.plan.aggregates` semantics
    (sum/count/avg add, min/max take elementwise extrema).
    """
    live = [(u, r) for u, r in parts if u.shape[1] > 0]
    if not live:
        return parts[0] if parts else (np.zeros((0, 0), dtype=np.int64), [])
    matrix = np.concatenate([u for u, _ in live], axis=1)
    uniq, inverse = factorize_groups(matrix)
    num_groups = uniq.shape[1]
    merged: List[GroupReduction] = []
    for i, func in enumerate(funcs):
        primary_in = np.concatenate([r[i][0] for _, r in live])
        if func in ("sum", "count", "avg"):
            primary = np.zeros(num_groups, dtype=np.int64)
            np.add.at(primary, inverse, primary_in)
        elif func == "min":
            primary = np.full(num_groups, _I64.max, dtype=np.int64)
            np.minimum.at(primary, inverse, primary_in)
        elif func == "max":
            primary = np.full(num_groups, _I64.min, dtype=np.int64)
            np.maximum.at(primary, inverse, primary_in)
        else:
            raise ExecutionError(f"cannot merge aggregate {func!r}")
        secondary: Optional[np.ndarray] = None
        if func == "avg":
            secondary = np.zeros(num_groups, dtype=np.int64)
            np.add.at(secondary, inverse,
                      np.concatenate([r[i][1] for _, r in live]))
        merged.append((primary, secondary))
    return uniq, merged


def partial_scalar_aggregate(
    values_list: Sequence[np.ndarray],
    stats: QueryStats,
    config: ExecutionConfig,
    funcs: Sequence[str],
) -> List[Tuple[int, Optional[int]]]:
    """One morsel's share of :func:`scalar_aggregate`: reduce to raw
    (primary, secondary) accumulators without finalizing, so partials
    from different morsels stay mergeable."""
    out: List[Tuple[int, Optional[int]]] = []
    for func, values in zip(funcs, values_list):
        _charge(stats, config, len(values))
        out.append(agg_semantics.reduce_scalar(func, values))
    return out


def merge_scalar_reductions(
    funcs: Sequence[str],
    parts: Sequence[List[Tuple[int, Optional[int]]]],
) -> List:
    """Fold per-morsel scalar accumulators and finalize each aggregate."""
    merged = [agg_semantics.empty_accumulator(func) for func in funcs]
    for part in parts:
        merged = [agg_semantics.merge(func, acc, cell)
                  for func, acc, cell in zip(funcs, merged, part)]
    return [agg_semantics.finalize(func, primary, secondary)
            for func, (primary, secondary) in zip(funcs, merged)]


__all__ = [
    "eval_fact_expr",
    "scalar_aggregate",
    "grouped_aggregate",
    "factorize_groups",
    "merge_group_reductions",
    "partial_scalar_aggregate",
    "merge_scalar_reductions",
]
