"""Vectorized aggregation and expression evaluation for the column store.

Aggregate inputs are evaluated column-at-a-time over int64; grouped
aggregation consolidates raw group codes with a single sort-based pass.
Charges are per value per operator pass, at the vector or scalar rate
depending on block iteration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...errors import ExecutionError
from ...plan import aggregates as agg_semantics
from ...plan.logical import BinOp, ColumnRef, Expr, Literal
from ...simio.stats import QueryStats
from ...core.config import ExecutionConfig


def _charge(stats: QueryStats, config: ExecutionConfig, n: int,
            passes: int = 1) -> None:
    if config.block_iteration:
        stats.block_calls += 1
        stats.values_scanned_vector += n * passes
    else:
        stats.values_scanned_scalar += n * passes


def eval_fact_expr(
    expr: Expr,
    fact_columns: Dict[str, np.ndarray],
    stats: QueryStats,
    config: ExecutionConfig,
) -> np.ndarray:
    """Evaluate an aggregate-input expression over fetched fact columns."""
    if isinstance(expr, ColumnRef):
        try:
            return fact_columns[expr.column].astype(np.int64)
        except KeyError:
            raise ExecutionError(
                f"fact column {expr.column!r} was not fetched"
            ) from None
    if isinstance(expr, Literal):
        n = len(next(iter(fact_columns.values()))) if fact_columns else 0
        return np.full(n, expr.value, dtype=np.int64)
    if isinstance(expr, BinOp):
        left = eval_fact_expr(expr.left, fact_columns, stats, config)
        right = eval_fact_expr(expr.right, fact_columns, stats, config)
        _charge(stats, config, len(left))
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        return left * right
    raise ExecutionError(f"unknown expression node {type(expr).__name__}")


def scalar_aggregate(values_list: Sequence[np.ndarray], stats: QueryStats,
                     config: ExecutionConfig,
                     funcs: Optional[Sequence[str]] = None) -> List:
    """Reduce each input array (the no-GROUP-BY case of flight 1)."""
    if funcs is None:
        funcs = ["sum"] * len(values_list)
    out: List = []
    for func, values in zip(funcs, values_list):
        _charge(stats, config, len(values))
        primary, secondary = agg_semantics.reduce_scalar(func, values)
        out.append(agg_semantics.finalize(func, primary, secondary))
    return out


GroupReduction = Tuple[np.ndarray, Optional[np.ndarray]]


def grouped_aggregate(
    group_arrays: Sequence[np.ndarray],
    agg_arrays: Sequence[np.ndarray],
    stats: QueryStats,
    config: ExecutionConfig,
    funcs: Optional[Sequence[str]] = None,
) -> Tuple[np.ndarray, List[GroupReduction]]:
    """Group and reduce.

    Returns (group key matrix [k x num_groups], per-aggregate (primary,
    secondary) accumulators — see :mod:`repro.plan.aggregates`).
    Charges one pass per value per group column (key formation) plus one
    per value per aggregate (accumulation).
    """
    if not group_arrays:
        raise ExecutionError("grouped_aggregate requires group columns")
    if funcs is None:
        funcs = ["sum"] * len(agg_arrays)
    n = len(group_arrays[0])
    for arr in group_arrays:
        _charge(stats, config, len(arr))
    matrix = np.stack([a.astype(np.int64) for a in group_arrays])
    if n == 0:
        return matrix, [(np.zeros(0, dtype=np.int64), None)
                        for _ in agg_arrays]
    uniq, inverse = np.unique(matrix, axis=1, return_inverse=True)
    reduced: List[GroupReduction] = []
    for func, values in zip(funcs, agg_arrays):
        _charge(stats, config, len(values))
        reduced.append(agg_semantics.reduce_groups(func, values, inverse,
                                                   uniq.shape[1]))
    return uniq, reduced


__all__ = ["eval_fact_expr", "scalar_aggregate", "grouped_aggregate"]
