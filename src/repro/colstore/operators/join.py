"""Dimension-side join helpers for the column store.

Two distinct costs live here (Section 5.4.1):

* ``dimension_rows_for_keys`` — mapping fact FK values to dimension rows.
  When the dimension's keys are a sorted, contiguous list starting at 1
  (customer/supplier/part after key reassignment), the key *is* the
  position and the mapping is a subtraction — "simply a fast array
  look-up".  Otherwise (the date table) a real join is performed, charged
  as one hash probe per value.
* ``gather_attribute`` — extracting dimension attribute values at a set
  of rows.  The invisible join performs this once, after all predicates,
  in a vectorized pass over an L2-resident column; the late materialized
  join performs it out-of-order mid-plan, which is charged at the scalar
  rate — the "significant cost" of [5] the invisible join avoids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...errors import ExecutionError
from ...simio.stats import QueryStats
from ...core.config import ExecutionConfig


def dimension_rows_for_keys(
    fk_values: np.ndarray,
    stats: QueryStats,
    config: ExecutionConfig,
    contiguous_from: Optional[int],
    sorted_keys: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Dimension row index for each FK value.

    ``contiguous_from`` is the first key when keys are contiguous (the
    common case, enabling direct array extraction); otherwise
    ``sorted_keys`` must hold the dimension's key column and each value
    pays a hash probe.
    """
    if contiguous_from is not None:
        if config.block_iteration:
            stats.block_calls += 1
            stats.values_scanned_vector += len(fk_values)
        else:
            stats.values_scanned_scalar += len(fk_values)
        return fk_values.astype(np.int64) - contiguous_from
    if sorted_keys is None:
        raise ExecutionError(
            "non-contiguous dimension keys require the key column"
        )
    stats.hash_probes += len(fk_values)
    rows = np.searchsorted(sorted_keys, fk_values)
    rows = np.minimum(rows, max(len(sorted_keys) - 1, 0))
    if len(sorted_keys) and not np.all(sorted_keys[rows] == fk_values):
        raise ExecutionError("dangling foreign key during dimension lookup")
    return rows.astype(np.int64)


def gather_attribute(
    attr_values: np.ndarray,
    rows: np.ndarray,
    stats: QueryStats,
    config: ExecutionConfig,
    out_of_order: bool = False,
) -> np.ndarray:
    """Dimension attribute values at ``rows``.

    ``out_of_order=True`` charges the scalar rate per extraction —
    the mid-plan, cache-unfriendly extraction pattern of the late
    materialized join.  The invisible join's post-predicate extraction
    uses the vectorized rate (the column fits in L2; Section 5.4.1).
    """
    width_words = max(1, attr_values.dtype.itemsize // 4)
    n = len(rows)
    if out_of_order or not config.block_iteration:
        stats.values_scanned_scalar += n * width_words
    else:
        stats.block_calls += 1
        stats.values_scanned_vector += n * width_words
    return attr_values[rows]


@dataclass
class LmJoinResult:
    """One late-materialized join's output: surviving fact positions are
    tracked by the caller; this records the dimension rows aligned with
    them so group-by attributes can be extracted."""

    dimension: str
    rows: np.ndarray


__all__ = ["dimension_rows_for_keys", "gather_attribute", "LmJoinResult"]
