"""Vectorized column operators.

Each operator reads :class:`~repro.storage.blocks.ArrayBlock` /
``RleBlock`` streams from column files and charges the ledger for the
work the modeled executor performs:

* with **block iteration** on, values are processed as arrays (one block
  call per block, one vector op per value, scaled by value width);
* with block iteration off, every value also pays a per-value iterator
  call — the paper's tuple-at-a-time "getNext" interface (Section 6.3.2
  notes the difference shows up in selection operations);
* with **compression** on, RLE blocks are processed run-at-a-time
  (one op per run, not per value) — direct operation on compressed data;
* decompression (expanding non-plain blocks to arrays) is charged by the
  storage layer when it actually happens.
"""

from .scan import predicate_positions, probe_positions, stored_bounds
from .fetch import fetch_values, read_column
from .join import dimension_rows_for_keys, gather_attribute, LmJoinResult
from .aggregate import grouped_aggregate, scalar_aggregate, eval_fact_expr
from .materialize import construct_tuples, row_pipeline

__all__ = [
    "predicate_positions",
    "probe_positions",
    "stored_bounds",
    "fetch_values",
    "read_column",
    "dimension_rows_for_keys",
    "gather_attribute",
    "LmJoinResult",
    "grouped_aggregate",
    "scalar_aggregate",
    "eval_fact_expr",
    "construct_tuples",
    "row_pipeline",
]
