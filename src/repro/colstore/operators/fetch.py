"""Late-materialization value fetch: column values at given positions.

Range position lists become sequential block reads; sparse lists use
block skipping (only blocks containing a requested position are read).
The CPU charge is one (vector or scalar) op per value extracted, scaled
by value width; the storage layer independently charges I/O and any
decompression it had to perform.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ...simio.buffer_pool import BufferPool
from ...storage.blocks import RleBlock
from ...storage.colfile import ColumnFile
from ..positions import Positions, RangePositions

from ...core.config import ExecutionConfig


def _charge_extract(pool: BufferPool, config: ExecutionConfig, n: int,
                    width_words: int) -> None:
    stats = pool.stats
    if config.block_iteration:
        stats.block_calls += 1
        stats.values_scanned_vector += n * width_words
    else:
        stats.values_scanned_scalar += n * width_words


def fetch_values(
    colfile: ColumnFile,
    pool: BufferPool,
    positions: Positions,
    config: ExecutionConfig,
) -> np.ndarray:
    """The column's values at ``positions`` (ascending order)."""
    width_words = max(1, colfile.dtype.itemsize // 4)
    if positions.count == 0:
        return np.zeros(0, dtype=colfile.dtype)
    if isinstance(positions, RangePositions):
        first = colfile.block_for_position(positions.start)
        last = colfile.block_for_position(positions.stop - 1)
        parts: List[np.ndarray] = []
        for block in colfile.iter_blocks(pool, direct=config.compression,
                                         first_block=first, last_block=last):
            lo = max(block.start, positions.start)
            hi = min(block.end, positions.stop)
            if hi <= lo:
                continue
            if isinstance(block, RleBlock):
                data = block.to_array()
                pool.stats.values_decompressed += block.count
            else:
                data = block.data
            parts.append(data[lo - block.start:hi - block.start])
        out = np.concatenate(parts)
        _charge_extract(pool, config, len(out), width_words)
        return out
    pos_array = positions.to_array()
    out = colfile.fetch(pool, pos_array)
    _charge_extract(pool, config, len(out), width_words)
    return out


def read_column(colfile: ColumnFile, pool: BufferPool,
                config: ExecutionConfig) -> np.ndarray:
    """Read a column in full (dimension attributes, early materialization).

    Charges one extraction per value like any other fetch.
    """
    out = colfile.read_all(pool)
    width_words = max(1, colfile.dtype.itemsize // 4)
    _charge_extract(pool, config, len(out), width_words)
    return out


__all__ = ["fetch_values", "read_column"]
