"""Predicate scans over column files, producing position lists.

``predicate_positions`` evaluates a single-column predicate and returns a
:class:`~repro.colstore.positions.Positions`; ``probe_positions`` is the
hash-probe variant used when a join predicate cannot be rewritten as a
between predicate.

Both support a ``restrict`` bound: when an earlier, more selective
predicate has already narrowed the candidate positions, only blocks
overlapping the bound are read — the pipelined predicate application of
Section 5.4 and the block skipping that makes selective plans cheap.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from ...errors import TypeMismatchError
from ...plan.logical import (
    CompareOp,
    Comparison,
    InSet,
    Predicate,
    RangePredicate,
)
from ...reference.predicates import (
    code_bounds_for_range,
    comparison_as_code_bounds,
)
from ...simio.buffer_pool import BufferPool
from ...simio.stats import QueryStats
from ...storage.blocks import RleBlock
from ...storage.colfile import ColumnFile, CompressionLevel
from ...storage.column import Column
from ..positions import (
    EMPTY,
    Positions,
    RangePositions,
    from_bitmap_maybe_range,
)
from ...core.config import ExecutionConfig
from ...synopsis import load_column_synopsis, mask_runs, prune_blocks

Bound = Union[int, bytes]


def stored_bounds(pred: Predicate, catalog_column: Column,
                  level: CompressionLevel
                  ) -> Union[Tuple[Bound, Bound], List[Bound]]:
    """Translate a predicate into the column file's stored domain.

    Returns an inclusive (low, high) pair, or a list of exact stored
    values for IN predicates.  With compression (or INT level) strings
    are dictionary codes; uncompressed string columns store raw bytes.
    """
    is_raw_string = (catalog_column.dictionary is not None
                     and level is CompressionLevel.NONE)
    if isinstance(pred, InSet):
        if is_raw_string:
            return [str(v).encode("ascii") for v in pred.values]
        out: List[Bound] = []
        for v in pred.values:
            code = catalog_column.encode_literal(v)
            if code is not None:
                out.append(code)
        return out
    if not is_raw_string:
        if isinstance(pred, Comparison):
            return comparison_as_code_bounds(catalog_column, pred)
        return code_bounds_for_range(catalog_column, pred.low, pred.high)
    # raw byte-string domain
    width = catalog_column.ctype.width
    low_sentinel, high_sentinel = b"", b"\xff" * width
    if isinstance(pred, RangePredicate):
        return (str(pred.low).encode("ascii"), str(pred.high).encode("ascii"))
    value = str(pred.value).encode("ascii")
    if pred.op is CompareOp.EQ:
        return (value, value)
    if pred.op is CompareOp.LT:
        return (low_sentinel, _pred_bytes(value))
    if pred.op is CompareOp.LE:
        return (low_sentinel, value)
    if pred.op is CompareOp.GT:
        return (_succ_bytes(value, width), high_sentinel)
    return (value, high_sentinel)


def _pred_bytes(value: bytes) -> bytes:
    """The largest byte string strictly below ``value`` (for < bounds)."""
    if not value:
        raise TypeMismatchError("cannot form exclusive bound below ''")
    if value[-1] == 0:
        return value[:-1]
    return value[:-1] + bytes([value[-1] - 1]) + b"\xff"


def _succ_bytes(value: bytes, width: int) -> bytes:
    """The smallest byte string strictly above ``value``."""
    return value + b"\x00" if len(value) < width else value + b"\x00"


def block_window(colfile: ColumnFile, restrict: Optional[Tuple[int, int]]
                 ) -> Tuple[int, int, int, int]:
    """(first_block, last_block, lo_position, hi_position) to scan.

    Public because the morsel layer uses the same window computation to
    carve a scan into block-aligned horizontal partitions."""
    if colfile.num_values == 0:
        return 0, -1, 0, 0
    if restrict is None:
        return 0, colfile.num_blocks - 1, 0, colfile.num_values
    lo, hi = restrict
    lo = max(lo, 0)
    hi = min(hi, colfile.num_values)
    if hi <= lo:
        return 0, -1, lo, hi
    first = colfile.block_for_position(lo)
    last = colfile.block_for_position(hi - 1)
    return first, last, lo, hi


def _charge_array(stats: QueryStats, config: ExecutionConfig, n: int,
                  width_words: int, comparisons: int) -> None:
    if config.block_iteration:
        stats.block_calls += 1
        stats.values_scanned_vector += n * width_words * comparisons
    else:
        # per-value getNext: every value goes through the scalar path
        stats.values_scanned_scalar += n * width_words * comparisons


def _charge_runs(stats: QueryStats, config: ExecutionConfig, nruns: int,
                 comparisons: int) -> None:
    if config.block_iteration:
        stats.block_calls += 1
        stats.runs_processed += nruns * comparisons
    else:
        stats.values_scanned_scalar += nruns
        stats.runs_processed += nruns * comparisons


def _mask_for(data: np.ndarray, bounds, needles) -> np.ndarray:
    if needles is not None:
        return np.isin(data, needles)
    lo, hi = bounds
    return (data >= lo) & (data <= hi)


def _surviving_runs(colfile: ColumnFile, stats: QueryStats,
                    config: ExecutionConfig, first: int, last: int,
                    bounds, needles) -> List[Tuple[int, int]]:
    """Inclusive block runs the scan must read, after zone-map pruning.

    With zone maps off (or the synopsis missing/corrupt/inapplicable)
    this is the single unpruned run ``[(first, last)]`` and no counter
    moves, so off-mode ledgers are exactly what they were before this
    layer existed.  With pruning active, each block examined charges one
    ``synopsis_probes`` tick; skipped blocks are counted in
    ``blocks_skipped`` and never reach the buffer pool.
    """
    if not config.zone_maps:
        return [(first, last)]
    synopsis = load_column_synopsis(colfile)
    if synopsis is None:
        return [(first, last)]
    mask = prune_blocks(synopsis, first, last, bounds=bounds,
                        needles=needles)
    if mask is None:
        return [(first, last)]
    stats.synopsis_probes += last - first + 1
    skipped = int(mask.size - mask.sum())
    if skipped == 0:
        return [(first, last)]
    stats.blocks_skipped += skipped
    return mask_runs(mask, first)


def predicate_positions(
    colfile: ColumnFile,
    pool: BufferPool,
    pred_domain: Union[Tuple[Bound, Bound], List[Bound]],
    config: ExecutionConfig,
    restrict: Optional[Tuple[int, int]] = None,
) -> Positions:
    """Positions whose stored value satisfies the translated predicate."""
    stats = pool.stats
    if isinstance(pred_domain, list):
        if not pred_domain:
            return EMPTY
        bounds = None
        needles = np.asarray(sorted(pred_domain))
        comparisons = max(1, len(pred_domain))
    else:
        bounds = pred_domain
        needles = None
        comparisons = 2
        if bounds[0] > bounds[1]:
            return EMPTY
    first, last, lo_pos, hi_pos = block_window(colfile, restrict)
    if last < first:
        return EMPTY
    span = hi_pos - lo_pos
    bits = np.zeros(span, dtype=bool)
    # zone maps: skipped blocks never reach the pool; their positions
    # stay False in the bitmap, which is exactly what scanning them
    # would have produced
    runs = _surviving_runs(colfile, stats, config, first, last,
                           bounds, needles)
    for run_first, run_last in runs:
        for block in colfile.iter_blocks(pool, direct=config.compression,
                                         first_block=run_first,
                                         last_block=run_last):
            if isinstance(block, RleBlock):
                run_mask = _mask_for(block.run_values, bounds, needles)
                _charge_runs(stats, config, block.num_runs, comparisons)
                if not run_mask.any():
                    continue
                value_mask = np.repeat(run_mask, block.run_lengths)
            else:
                width_words = max(1, block.data.dtype.itemsize // 4)
                value_mask = _mask_for(block.data, bounds, needles)
                _charge_array(stats, config, block.count, width_words,
                              comparisons)
            b_lo = max(block.start, lo_pos)
            b_hi = min(block.end, hi_pos)
            if b_hi <= b_lo:
                continue
            bits[b_lo - lo_pos:b_hi - lo_pos] = \
                value_mask[b_lo - block.start:b_hi - block.start]
    return from_bitmap_maybe_range(lo_pos, bits)


def probe_positions(
    colfile: ColumnFile,
    pool: BufferPool,
    key_set: np.ndarray,
    config: ExecutionConfig,
    restrict: Optional[Tuple[int, int]] = None,
) -> Positions:
    """Positions whose stored value is in ``key_set`` via hash probing.

    This simulates the invisible join's hash-lookup fallback (and the
    late materialized join's probe phase): every value (or every run,
    when operating directly on RLE) pays a hash probe.
    """
    stats = pool.stats
    keys = np.sort(np.asarray(key_set))
    first, last, lo_pos, hi_pos = block_window(colfile, restrict)
    if last < first or len(keys) == 0:
        return EMPTY
    span = hi_pos - lo_pos
    bits = np.zeros(span, dtype=bool)
    runs = _surviving_runs(colfile, stats, config, first, last,
                           None, keys)
    for run_first, run_last in runs:
        for block in colfile.iter_blocks(pool, direct=config.compression,
                                         first_block=run_first,
                                         last_block=run_last):
            if isinstance(block, RleBlock):
                stats.hash_probes += block.num_runs
                if not config.block_iteration:
                    stats.values_scanned_scalar += block.num_runs
                run_mask = _probe(keys, block.run_values)
                value_mask = np.repeat(run_mask, block.run_lengths)
            else:
                stats.hash_probes += block.count
                if not config.block_iteration:
                    stats.values_scanned_scalar += block.count
                else:
                    stats.block_calls += 1
                value_mask = _probe(keys, block.data)
            b_lo = max(block.start, lo_pos)
            b_hi = min(block.end, hi_pos)
            if b_hi <= b_lo:
                continue
            bits[b_lo - lo_pos:b_hi - lo_pos] = \
                value_mask[b_lo - block.start:b_hi - block.start]
    return from_bitmap_maybe_range(lo_pos, bits)


def _probe(sorted_keys: np.ndarray, values: np.ndarray) -> np.ndarray:
    idx = np.searchsorted(sorted_keys, values)
    idx = np.minimum(idx, len(sorted_keys) - 1)
    return sorted_keys[idx] == values


__all__ = ["predicate_positions", "probe_positions", "stored_bounds",
           "sorted_predicate_positions", "block_window"]


def sorted_predicate_positions(
    colfile: ColumnFile,
    pool: BufferPool,
    bounds: Tuple[Bound, Bound],
    config: ExecutionConfig,
) -> Positions:
    """Binary-search a monotonically sorted column for [lo, hi].

    Instead of scanning every block, reads O(log #blocks) pages to find
    the boundary blocks and resolves exact positions inside them.  Only
    valid when the column is the projection's primary sort key (the
    caller guarantees monotonicity).  This is the
    ``sorted_binary_search`` extension — the paper's C-Store scans.
    """
    lo, hi = bounds
    if lo > hi or colfile.num_values == 0:
        return EMPTY
    start = _sorted_boundary(colfile, pool, lo, config, side="left")
    stop = _sorted_boundary(colfile, pool, hi, config, side="right")
    if stop <= start:
        return EMPTY
    return RangePositions(start, stop)


def _block_min_max(colfile: ColumnFile, pool: BufferPool, block_no: int,
                   config: ExecutionConfig):
    block = colfile.read_block(pool, block_no, direct=config.compression)
    if isinstance(block, RleBlock):
        return block, block.run_values[0], block.run_values[-1]
    return block, block.data[0], block.data[-1]


def _sorted_boundary(colfile: ColumnFile, pool: BufferPool, needle,
                     config: ExecutionConfig, side: str) -> int:
    """Global position of the first value > needle (side='right') or
    >= needle (side='left'), via binary search over blocks."""
    stats = pool.stats
    lo_block, hi_block = 0, colfile.num_blocks - 1
    target = None
    while lo_block <= hi_block:
        mid = (lo_block + hi_block) // 2
        block, first, last = _block_min_max(colfile, pool, mid, config)
        stats.values_scanned_vector += 2
        before = (last < needle) if side == "left" else (last <= needle)
        after = (first >= needle) if side == "left" else (first > needle)
        if before:
            lo_block = mid + 1
        elif after and mid > 0:
            hi_block = mid - 1
            target = None
        else:
            target = (mid, block)
            break
    if target is None:
        if lo_block >= colfile.num_blocks:
            return colfile.num_values
        mid = lo_block
        block, _first, _last = _block_min_max(colfile, pool, mid, config)
        target = (mid, block)
    block_no, block = target
    if isinstance(block, RleBlock):
        run_idx = int(np.searchsorted(block.run_values, needle, side=side))
        stats.runs_processed += max(
            1, int(np.ceil(np.log2(max(block.num_runs, 2)))))
        starts = np.concatenate(
            ([0], np.cumsum(block.run_lengths))).astype(np.int64)
        return block.start + int(starts[run_idx])
    offset = int(np.searchsorted(block.data, needle, side=side))
    stats.values_scanned_vector += max(
        1, int(np.ceil(np.log2(max(block.count, 2)))))
    return block.start + offset
