"""Morsel-driven parallel execution for the column store.

The paper's C-Store numbers are single-threaded, and the simulated cost
model must stay exactly reproducible, so parallelism here is built
around one invariant: **a parallel run performs the same logical work,
charges the same simulated I/O, and produces the same rows as the
serial run** — only wall-clock changes.

Design
------
Each parallelizable operator (predicate scan, hash-probe scan, value
fetch, aggregation) splits its position space into horizontal *morsels*
whose boundaries snap to the scanned column's block starts, so every
storage block belongs to exactly one morsel.  Workers never touch the
shared buffer pool: each runs against a :class:`TracePool` — a
charge-free facade that reads page bytes straight from the simulated
disk, records the access trace, and accumulates CPU charges on a
private :class:`~repro.simio.stats.QueryStats` ledger.

At the per-operator barrier the coordinator replays the recorded traces
*in morsel order* through the real buffer pool.  Because morsels are
block-aligned and ascending, the concatenated trace is page-for-page
the sequence a serial scan would have issued, so LRU behaviour, seek
accounting, per-stripe-disk attribution and hit/miss counts all come
out identical to ``workers=1``.  The private CPU ledgers are merged at
the same point.  No locks are needed anywhere: workers share only
immutable inputs.

Merging is exact: position lists reassemble with
:func:`~repro.colstore.positions.concat_windows` (bit-identical to the
serial representation), and aggregates merge through the exact-int64
accumulator semantics of :mod:`repro.plan.aggregates`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, \
    Tuple, TypeVar

import numpy as np

from ..core.config import ExecutionConfig
from ..errors import ReproError

if TYPE_CHECKING:  # import cycle: obs is engine-agnostic
    from ..obs import Tracer
from ..simio.buffer_pool import BufferPool, fill_page
from ..simio.stats import QueryStats
from ..storage.colfile import ColumnFile
from .operators.aggregate import (
    GroupReduction,
    grouped_aggregate,
    merge_group_reductions,
    merge_scalar_reductions,
    partial_scalar_aggregate,
    scalar_aggregate,
)
from .operators.fetch import fetch_values
from .operators.scan import (
    block_window,
    predicate_positions,
    probe_positions,
)
from .positions import EMPTY, Positions, concat_windows, slice_window

T = TypeVar("T")


class TracePool:
    """A worker's private view of the buffer pool.

    Reads page bytes directly from the simulated disk **without
    charging any I/O** — instead every access is appended to ``trace``
    so the coordinator can replay it through the real pool at the
    barrier.  CPU-side charges made by operators land on the private
    ``stats`` ledger and are merged at the same point.

    Reads go through the same fault-aware
    :func:`~repro.simio.buffer_pool.fill_page` loop as the buffer
    pool's miss path: transient faults are retried (on the private
    ledger), checksums are verified, and each trace entry carries the
    number of physical attempts so the replay can bill the retries.
    The fault injector's per-page transient budgets are consumed by the
    worker's reads (the injector is thread-safe), so the replay reads
    succeed.
    """

    def __init__(self, pool: BufferPool) -> None:
        self._disk = pool.disk
        self.stats = QueryStats()
        self.trace: List[Tuple[str, int, int]] = []

    def read_page(self, name: str, page_no: int) -> bytes:
        payload, attempts = fill_page(self._disk, name, page_no,
                                      self.stats, charge=False)
        self.trace.append((name, page_no, attempts))
        return payload

    def scan_pages(self, name: str, start: int = 0,
                   stop: Optional[int] = None):
        f = self._disk.file(name)
        end = f.num_pages if stop is None else min(stop, f.num_pages)
        for page_no in range(start, end):
            yield self.read_page(name, page_no)


class MorselEngine:
    """Runs operators morsel-at-a-time on a thread pool.

    One engine serves one query execution; the planner creates it when
    ``config.workers > 1`` and closes it when the plan finishes.  Every
    public method is a drop-in replacement for its serial counterpart:
    same arguments (minus the pool, which the engine owns), same return
    value, same simulated I/O.
    """

    def __init__(self, pool: BufferPool, config: ExecutionConfig,
                 tracer: Optional["Tracer"] = None) -> None:
        self.pool = pool
        self.config = config
        self.workers = config.workers
        self.morsel_rows = config.morsel_rows
        #: optional span tracer; when set, each barrier records one leaf
        #: span per morsel (private CPU ledger + replayed I/O), in morsel
        #: order, under whatever span the coordinator has open
        self.tracer = tracer
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="morsel",
        )

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "MorselEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # morsel geometry
    # ------------------------------------------------------------------ #
    def _windows(self, colfile: ColumnFile, lo: int, hi: int
                 ) -> List[Tuple[int, int]]:
        """Split [lo, hi) into block-aligned windows of ``colfile``.

        Boundaries snap *up* to the next block start so each block is
        scanned by exactly one worker — the invariant that makes the
        concatenated page trace equal the serial one.
        """
        span = hi - lo
        if span <= 0:
            return []
        if self.morsel_rows is not None:
            k = -(-span // self.morsel_rows)
        else:
            k = self.workers
        if k <= 1:
            return [(lo, hi)]
        starts = colfile.block_starts
        ideal = [lo + (span * i) // k for i in range(1, k)]
        idx = np.searchsorted(starts, ideal, side="left")
        cuts = sorted({int(starts[i]) for i in idx if i < len(starts)})
        cuts = [c for c in cuts if lo < c < hi]
        edges = [lo] + cuts + [hi]
        return list(zip(edges[:-1], edges[1:]))

    # ------------------------------------------------------------------ #
    # barrier: run morsels, replay traces in order, merge ledgers
    # ------------------------------------------------------------------ #
    def _map(self, task: Callable[..., Tuple[T, TracePool]],
             items: Sequence) -> List[T]:
        # morsel-boundary cancellation check: a cancelled query stops
        # before fanning out another wave of workers (workers also stop
        # at page boundaries via the disk's own check)
        cancellation = self.pool.disk.cancellation
        if cancellation is not None:
            cancellation.check(self.pool.stats)
        futures = [self._executor.submit(task, item) for item in items]
        outs: List[Tuple[T, TracePool]] = []
        first_error: Optional[ReproError] = None
        for f in futures:  # submission (morsel) order
            try:
                outs.append(f.result())
            except ReproError as error:
                # Keep draining: the barrier must wait for every worker
                # anyway, and the surviving morsels' traces still replay
                # so the ledger reflects the I/O actually performed.
                # Morsel order makes "first" deterministic for a given
                # fault schedule.
                if first_error is None:
                    first_error = error
        for morsel_no, (_result, tp) in enumerate(outs):
            before = self.pool.stats.snapshot()
            for name, page_no, attempts in tp.trace:
                self.pool.replay_read(name, page_no, attempts)
            self.pool.stats.merge(tp.stats)
            if self.tracer is not None:
                # one leaf per morsel: its private CPU ledger plus the
                # I/O its trace just billed, recorded in morsel order
                self.tracer.leaf(f"morsel:{morsel_no}",
                                 self.pool.stats.diff(before))
        if first_error is not None:
            raise first_error
        return [result for result, _tp in outs]

    def _map_compute(self, task: Callable[[QueryStats, T], object],
                     items: Sequence[T]) -> List:
        """Barrier for CPU-only morsels (no page access to replay)."""
        cancellation = self.pool.disk.cancellation
        if cancellation is not None:
            cancellation.check(self.pool.stats)

        def run(item: T):
            local = QueryStats()
            return task(local, item), local

        futures = [self._executor.submit(run, item) for item in items]
        outs = [f.result() for f in futures]
        for morsel_no, (_result, local) in enumerate(outs):
            self.pool.stats.merge(local)
            if self.tracer is not None:
                self.tracer.leaf(f"morsel:{morsel_no}", local)
        return [result for result, _local in outs]

    # ------------------------------------------------------------------ #
    # parallel operators
    # ------------------------------------------------------------------ #
    def predicate_scan(self, colfile: ColumnFile, pred_domain,
                       restrict: Optional[Tuple[int, int]] = None
                       ) -> Positions:
        """Morsel-parallel :func:`~.operators.scan.predicate_positions`."""
        first, last, lo, hi = block_window(colfile, restrict)
        windows = self._windows(colfile, lo, hi) if last >= first else []
        if len(windows) <= 1:
            return predicate_positions(colfile, self.pool, pred_domain,
                                       self.config, restrict=restrict)

        def task(window: Tuple[int, int]):
            tp = TracePool(self.pool)
            return predicate_positions(colfile, tp, pred_domain,
                                       self.config, restrict=window), tp

        parts = self._map(task, windows)
        return concat_windows(parts, lo, hi)

    def probe_scan(self, colfile: ColumnFile, key_set: np.ndarray,
                   restrict: Optional[Tuple[int, int]] = None) -> Positions:
        """Morsel-parallel :func:`~.operators.scan.probe_positions`."""
        first, last, lo, hi = block_window(colfile, restrict)
        windows = self._windows(colfile, lo, hi) if last >= first else []
        if len(windows) <= 1:
            return probe_positions(colfile, self.pool, key_set,
                                   self.config, restrict=restrict)

        def task(window: Tuple[int, int]):
            tp = TracePool(self.pool)
            return probe_positions(colfile, tp, key_set, self.config,
                                   restrict=window), tp

        parts = self._map(task, windows)
        return concat_windows(parts, lo, hi)

    def fetch(self, colfile: ColumnFile, positions: Positions) -> np.ndarray:
        """Morsel-parallel :func:`~.operators.fetch.fetch_values`.

        Windows snap to *this* column's block starts (columns differ in
        block geometry), so no block is ever read by two workers.
        """
        bounds = positions.bounds()
        if bounds is None:
            return fetch_values(colfile, self.pool, positions, self.config)
        windows = self._windows(colfile, bounds[0], bounds[1])
        if len(windows) <= 1:
            return fetch_values(colfile, self.pool, positions, self.config)

        def task(window: Tuple[int, int]):
            tp = TracePool(self.pool)
            sub = slice_window(positions, window[0], window[1])
            if sub.count == 0:
                return np.zeros(0, dtype=colfile.dtype), tp
            return fetch_values(colfile, tp, sub, self.config), tp

        parts = self._map(task, windows)
        return np.concatenate(parts)

    def grouped(self, group_arrays: Sequence[np.ndarray],
                agg_arrays: Sequence[np.ndarray],
                funcs: Optional[Sequence[str]] = None
                ) -> Tuple[np.ndarray, List[GroupReduction]]:
        """Morsel-parallel grouped aggregation over materialized arrays.

        Each morsel groups its chunk independently; partials merge
        through the exact-int64 accumulator semantics, so the result is
        bit-identical to a single grouped pass.
        """
        if funcs is None:
            funcs = ["sum"] * len(agg_arrays)
        n = len(group_arrays[0]) if group_arrays else 0
        chunks = self._even_chunks(n)
        if len(chunks) <= 1:
            return grouped_aggregate(group_arrays, agg_arrays,
                                     self.pool.stats, self.config, funcs)

        def task(local: QueryStats, chunk: Tuple[int, int]):
            lo, hi = chunk
            return grouped_aggregate(
                [a[lo:hi] for a in group_arrays],
                [a[lo:hi] for a in agg_arrays],
                local, self.config, funcs,
            )

        parts = self._map_compute(task, chunks)
        return merge_group_reductions(funcs, parts)

    def scalar(self, values_list: Sequence[np.ndarray],
               funcs: Optional[Sequence[str]] = None) -> List:
        """Morsel-parallel scalar (no GROUP BY) aggregation."""
        if funcs is None:
            funcs = ["sum"] * len(values_list)
        n = len(values_list[0]) if values_list else 0
        chunks = self._even_chunks(n)
        if len(chunks) <= 1:
            return scalar_aggregate(values_list, self.pool.stats,
                                    self.config, funcs)

        def task(local: QueryStats, chunk: Tuple[int, int]):
            lo, hi = chunk
            return partial_scalar_aggregate(
                [v[lo:hi] for v in values_list], local, self.config, funcs)

        parts = self._map_compute(task, chunks)
        return merge_scalar_reductions(funcs, parts)

    def _even_chunks(self, n: int) -> List[Tuple[int, int]]:
        """Row-index chunks for CPU-only morsels over fetched arrays."""
        if n <= 0:
            return []
        if self.morsel_rows is not None:
            k = -(-n // self.morsel_rows)
        else:
            k = self.workers
        k = min(k, n)
        if k <= 1:
            return [(0, n)]
        edges = [(n * i) // k for i in range(k + 1)]
        return [(edges[i], edges[i + 1]) for i in range(k)]


def make_engine(pool: BufferPool, config: ExecutionConfig,
                tracer: Optional["Tracer"] = None
                ) -> Optional[MorselEngine]:
    """An engine when the config asks for parallelism, else None (the
    serial code paths stay exactly as they were)."""
    if config.workers <= 1:
        return None
    return MorselEngine(pool, config, tracer=tracer)


__all__ = ["TracePool", "MorselEngine", "make_engine"]
