"""EXPLAIN (analyze-style) for the column store.

Because the invisible join decides its strategies at run time (phase 1
detects whether surviving dimension keys are contiguous), EXPLAIN
executes the query and reports the decisions actually taken — which
dimensions were rewritten to between predicates, the hash fallbacks,
the surviving-position count, and the materialization mode.
"""

from __future__ import annotations

from typing import List, Optional

from ..plan.logical import StarQuery
from ..storage.colfile import CompressionLevel
from ..core.config import ExecutionConfig
from ..core.invisible_join import JoinStrategy
from ..obs import Tracer, render_trace
from .planner import ColumnPlanner, StoreContext


def explain(
    ctx: StoreContext,
    query: StarQuery,
    config: ExecutionConfig,
    level: Optional[CompressionLevel] = None,
) -> str:
    """Execute ``query`` and render the plan with observed decisions."""
    tracer = Tracer(ctx.pool.stats)
    planner = ColumnPlanner(ctx, config, level, tracer=tracer)
    result = planner.run(query)
    trace = tracer.finish(planner.stats)
    lines: List[str] = [
        f"EXPLAIN {query.name} [column store, config {config.label}, "
        f"level {planner.level.value}]",
    ]
    if not config.late_materialization:
        lines += _explain_early(planner, query)
    else:
        lines += _explain_late(planner, query, config)
    lines.append(_aggregate_line(query))
    if query.order_by:
        keys = ", ".join(
            f"{k.key} {'asc' if k.ascending else 'desc'}"
            for k in query.order_by)
        lines.append(f"  sort result by {keys}")
    stats = planner.stats
    total = stats.pages_read + stats.buffer_hits
    rate = stats.buffer_hits / total if total else 0.0
    # ``total`` counts every page *request*; only the misses went to disk.
    lines.append(
        f"  buffer pool: {total} page request(s), "
        f"{stats.pages_read} miss(es) read from disk, "
        f"{stats.buffer_hits} hit(s) ({rate:.1%} hit rate)")
    if (stats.io_retries or stats.checksum_failures
            or stats.pages_quarantined or stats.recoveries):
        lines.append(
            f"  fault recovery: {stats.io_retries} retried read(s) "
            f"({stats.retry_backoff_us} us backoff), "
            f"{stats.checksum_failures} checksum failure(s), "
            f"{stats.pages_quarantined} page(s) quarantined, "
            f"{stats.recoveries} projection failover(s)")
    if config.workers > 1:
        lines.append(
            f"  morsel parallelism: {config.workers} worker(s)"
            + (f", {config.morsel_rows} row(s) per morsel"
               if config.morsel_rows else ""))
    lines.append(f"  => {len(result)} result row(s)")
    lines.append("  span tree (simulated seconds):")
    lines.extend(
        "  " + line for line in render_trace(trace).splitlines()[1:])
    return "\n".join(lines)


def _explain_late(planner: ColumnPlanner, query: StarQuery,
                  config: ExecutionConfig) -> List[str]:
    join = planner.last_join
    join_name = ("invisible join" if config.invisible_join
                 else "late materialized hash join")
    lines = [f"  {join_name}, block iteration "
             f"{'on' if config.block_iteration else 'off'}"]
    lines.append("  phase 1 — dimension filtering:")
    for dim_name, f in sorted(join.filters.items()):
        preds = query.dimension_predicates(dim_name)
        pred_text = " AND ".join(str(p) for p in preds) or "(none)"
        if f.strategy is JoinStrategy.NONE:
            verdict = "no predicates; extraction only"
        elif f.strategy is JoinStrategy.BETWEEN:
            lo, hi = f.key_bounds
            verdict = (f"contiguous keys -> BETWEEN rewrite: "
                       f"{query.fk_of(dim_name)} in [{lo}, {hi}]")
        else:
            size = 0 if f.key_set is None else len(f.key_set)
            verdict = f"hash set of {size} key(s)"
        lines.append(f"    {dim_name}: {pred_text}")
        lines.append(f"      -> {f.positions.count} row(s) "
                     f"({f.selectivity:.2%}); {verdict}")
    fact_preds = query.fact_predicates()
    lines.append("  phase 2 — fact predicate application (pipelined, "
                 "position lists intersected):")
    for p in fact_preds:
        lines.append(f"    fact predicate {p}")
    for dim_name, f in sorted(join.filters.items()):
        if f.strategy is JoinStrategy.BETWEEN:
            lines.append(f"    rewritten join predicate on "
                         f"{query.fk_of(dim_name)}")
        elif f.strategy is JoinStrategy.HASH:
            lines.append(f"    hash probe on {query.fk_of(dim_name)}")
    lines.append(f"    => {planner.last_survivors} surviving position(s)")
    group_dims = sorted({g.table for g in query.group_by
                         if g.table != query.fact_table})
    if group_dims:
        lines.append("  phase 3 — extraction at surviving positions:")
        for dim in group_dims:
            attrs = ", ".join(query.group_by_of(dim))
            side = join.dims[dim]
            how = ("direct array lookup (contiguous keys)"
                   if side.contiguous_from is not None and
                   config.invisible_join
                   else "key lookup join")
            lines.append(f"    {dim}.{attrs} via {how}")
    return lines


def _explain_early(planner: ColumnPlanner, query: StarQuery) -> List[str]:
    cols = ", ".join(query.fact_columns_needed())
    lines = [
        "  early materialization: read full columns, construct tuples "
        "first",
        f"  read fact columns [{cols}]; construct "
        f"{planner.ctx.projection(query.fact_table, planner.level).num_rows}"
        " tuple(s)",
    ]
    for p in query.fact_predicates():
        lines.append(f"  row-wise filter: {p}")
    for dim in query.dimensions_used():
        preds = query.dimension_predicates(dim)
        pred_text = " AND ".join(str(p) for p in preds) or "no predicates"
        lines.append(f"  row-wise hash join with {dim} ({pred_text})")
    return lines


def _aggregate_line(query: StarQuery) -> str:
    aggs = ", ".join(f"{a.func}(...) as {a.alias}" for a in query.aggregates)
    if query.group_by:
        groups = ", ".join(f"{g.table}.{g.column}" for g in query.group_by)
        return f"  vectorized aggregate: {aggs} group by ({groups})"
    return f"  vectorized aggregate: {aggs} (no grouping)"


__all__ = ["explain"]
