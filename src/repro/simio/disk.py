"""A simulated disk that stores real page images and accounts every read.

The disk is a dictionary of named files, each an append-only list of page
byte strings (pages are 32 KB, matching the paper's System X configuration).
Reads return the actual stored bytes — storage formats above this layer
round-trip real data — while the disk charges the active
:class:`~repro.simio.stats.QueryStats` ledger for bytes transferred and for
seeks whenever an access is not sequential with the previous access to the
same device.

The accounting model mirrors a striped 4-disk volume treated as one logical
device: sequential runs are charged pure transfer time; every discontinuity
costs one seek.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..errors import StorageError, TransientIOError
from .stats import NUM_STRIPE_DISKS, QueryStats

#: Page size used throughout (the paper's System X uses 32 KB pages).
PAGE_SIZE = 32 * 1024


def page_checksum(payload: bytes) -> int:
    """Checksum of one page image (CRC32, stored out of band).

    Kept in a per-file map beside the pages rather than inside them, so
    on-disk page formats — and every size/cost number derived from them —
    are unchanged by the integrity layer.
    """
    return zlib.crc32(payload) & 0xFFFFFFFF


def stripe_of(page_no: int) -> int:
    """Which member drive of the 4-disk stripe holds this page."""
    return page_no % NUM_STRIPE_DISKS


class DiskFile:
    """One named file on the simulated disk: an append-only page list."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.pages: List[bytes] = []
        #: per-page CRC32 recorded at write time, parallel to ``pages``
        self.checksums: List[int] = []

    @property
    def num_pages(self) -> int:
        return len(self.pages)

    @property
    def size_bytes(self) -> int:
        """Occupied size: whole pages are charged even if partly filled."""
        return len(self.pages) * PAGE_SIZE


class SimulatedDisk:
    """Named page files plus an I/O ledger.

    The ``stats`` attribute is the active ledger; the benchmark harness
    swaps in a fresh :class:`QueryStats` before each measured query so
    per-query I/O is isolated.
    """

    def __init__(self, stats: Optional[QueryStats] = None) -> None:
        self.stats = stats if stats is not None else QueryStats()
        self._files: Dict[str, DiskFile] = {}
        #: optional :class:`~repro.simio.faults.FaultInjector` (duck-typed
        #: to avoid an import cycle); ``None`` means a perfect disk
        self.fault_injector = None
        #: optional :class:`~repro.serve.resilience.CancellationToken`
        #: (duck-typed) installed by the query service for the duration
        #: of one engine execution; checked before every page access so
        #: cancellation lands at page boundaries with the partial ledger
        #: intact
        self.cancellation = None
        #: pages fenced off after persistent checksum failure
        self._quarantined: Set[Tuple[str, int]] = set()
        # (file name, page number) of the most recent physical access, used
        # to decide whether the next access is sequential.
        self._head: Optional[Tuple[str, int]] = None
        # Page i of a file lives on stripe disk i mod 4; each drive has
        # its own arm, tracked as (file name, local page number).  A
        # sequential logical run is sequential on every member drive,
        # so the whole stripe pays one positioning per drive per stream.
        self._stripe_heads: List[Optional[Tuple[str, int]]] = \
            [None] * NUM_STRIPE_DISKS

    # ------------------------------------------------------------------ #
    # file management
    # ------------------------------------------------------------------ #
    def create(self, name: str) -> DiskFile:
        """Create an empty file; error if it already exists."""
        if name in self._files:
            raise StorageError(f"file {name!r} already exists")
        f = DiskFile(name)
        self._files[name] = f
        return f

    def drop(self, name: str) -> None:
        """Remove a file (used when rebuilding physical designs)."""
        self._files.pop(name, None)
        self._quarantined = {key for key in self._quarantined
                             if key[0] != name}

    def file(self, name: str) -> DiskFile:
        """Look up a file; raise :class:`StorageError` if absent."""
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"no file named {name!r}") from None

    def exists(self, name: str) -> bool:
        return name in self._files

    def files(self) -> List[str]:
        """Names of all files, sorted for reproducibility."""
        return sorted(self._files)

    @property
    def total_bytes(self) -> int:
        """Total occupied bytes across all files."""
        return sum(f.size_bytes for f in self._files.values())

    # ------------------------------------------------------------------ #
    # page I/O
    # ------------------------------------------------------------------ #
    def append_page(self, name: str, payload: bytes) -> int:
        """Append a page to ``name`` and return its page number.

        The payload must fit in one page; short payloads occupy (and are
        charged as) a full page, like any block device.
        """
        if len(payload) > PAGE_SIZE:
            raise StorageError(
                f"payload of {len(payload)} bytes exceeds page size {PAGE_SIZE}"
            )
        f = self.file(name)
        inj = self.fault_injector
        if inj is not None and getattr(inj, "take_write_fault", None) \
                is not None and inj.take_write_fault(name, f.num_pages):
            # the failed attempt wrote nothing durable; the caller owns
            # the retry loop (and its backoff charges)
            raise TransientIOError(name, f.num_pages)
        f.pages.append(payload)
        f.checksums.append(page_checksum(payload))
        self.stats.bytes_written += PAGE_SIZE
        return f.num_pages - 1

    def rewrite_page(self, name: str, page_no: int, payload: bytes,
                     charge: bool = False) -> None:
        """Replace a page in place, refreshing its stored checksum.

        The two legitimate in-place writers — the B-tree leaf patcher and
        the scrubber's repair path — go through here so the checksum map
        stays consistent.  ``charge=True`` bills the write to the ledger
        (repairs are real I/O; structural patches during load are not
        part of any measured query).
        """
        if len(payload) > PAGE_SIZE:
            raise StorageError(
                f"payload of {len(payload)} bytes exceeds page size {PAGE_SIZE}"
            )
        f = self.file(name)
        if not 0 <= page_no < f.num_pages:
            raise StorageError(
                f"page {page_no} out of range for {name!r} ({f.num_pages} pages)"
            )
        f.pages[page_no] = payload
        f.checksums[page_no] = page_checksum(payload)
        if charge:
            self.stats.bytes_written += PAGE_SIZE

    def read_page(self, name: str, page_no: int) -> bytes:
        """Read one page, charging transfer bytes and a seek if random."""
        if self.cancellation is not None:
            self.cancellation.check(self.stats)
        f = self.file(name)
        if not 0 <= page_no < f.num_pages:
            raise StorageError(
                f"page {page_no} out of range for {name!r} ({f.num_pages} pages)"
            )
        self._charge(name, page_no)
        inj = self.fault_injector
        if inj is not None and inj.take_transient(name, page_no):
            raise TransientIOError(name, page_no)
        return f.pages[page_no]

    def peek_page(self, name: str, page_no: int) -> bytes:
        """Read one page without touching the ledger, but still subject
        to fault injection.

        The morsel workers of the parallel read path use this: their
        reads are charge-free (the coordinator replays the trace through
        the buffer pool for the canonical ledger) yet must see the same
        faults a charged read would.
        """
        if self.cancellation is not None:
            self.cancellation.check(self.stats)
        f = self.file(name)
        if not 0 <= page_no < f.num_pages:
            raise StorageError(
                f"page {page_no} out of range for {name!r} ({f.num_pages} pages)"
            )
        inj = self.fault_injector
        if inj is not None and inj.take_transient(name, page_no):
            raise TransientIOError(name, page_no)
        return f.pages[page_no]

    def charge_failed_read(self, name: str, page_no: int) -> None:
        """Bill one failed read attempt (transfer + possible seek).

        A read that errors still moved the arm and the bytes; the
        trace-replay path uses this to account retries a worker already
        performed.
        """
        self._charge(name, page_no)

    def scan_pages(
        self, name: str, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[bytes]:
        """Yield pages ``start..stop`` sequentially (one seek total)."""
        f = self.file(name)
        end = f.num_pages if stop is None else min(stop, f.num_pages)
        for page_no in range(start, end):
            self._charge(name, page_no)
            yield f.pages[page_no]

    def _charge(self, name: str, page_no: int) -> None:
        if self._head != (name, page_no):
            self.stats.seeks += 1
        self.stats.bytes_read += PAGE_SIZE
        self.stats.pages_read += 1
        self._head = (name, page_no + 1)
        disk_no = page_no % NUM_STRIPE_DISKS
        local = page_no // NUM_STRIPE_DISKS
        seek = self._stripe_heads[disk_no] != (name, local)
        self.stats.charge_stripe_read(disk_no, PAGE_SIZE, seek)
        self._stripe_heads[disk_no] = (name, local + 1)

    def reset_head(self) -> None:
        """Forget head position (e.g. between queries)."""
        self._head = None
        self._stripe_heads = [None] * NUM_STRIPE_DISKS

    # ------------------------------------------------------------------ #
    # integrity
    # ------------------------------------------------------------------ #
    def expected_checksum(self, name: str, page_no: int) -> int:
        """The CRC recorded when the page was written."""
        f = self.file(name)
        if not 0 <= page_no < f.num_pages:
            raise StorageError(
                f"page {page_no} out of range for {name!r} ({f.num_pages} pages)"
            )
        return f.checksums[page_no]

    def verify_page(self, name: str, page_no: int,
                    payload: Optional[bytes] = None) -> bool:
        """Does the (given or stored) page image match its write-time CRC?"""
        if payload is None:
            payload = self.file(name).pages[page_no]
        return page_checksum(payload) == self.expected_checksum(name, page_no)

    def quarantine(self, name: str, page_no: int) -> None:
        """Fence off a persistently corrupt page: all further reads fail
        fast with :class:`~repro.errors.ChecksumError` instead of
        re-reading garbage."""
        self._quarantined.add((name, page_no))

    def unquarantine(self, name: str, page_no: int) -> None:
        """Lift the fence (after the scrubber repaired the page)."""
        self._quarantined.discard((name, page_no))

    def is_quarantined(self, name: str, page_no: int) -> bool:
        return (name, page_no) in self._quarantined

    def quarantined_pages(self) -> List[Tuple[str, int]]:
        """All fenced pages, sorted for reproducibility."""
        return sorted(self._quarantined)


__all__ = ["SimulatedDisk", "DiskFile", "PAGE_SIZE", "page_checksum",
           "stripe_of"]
