"""An LRU buffer pool layered over the simulated disk.

The paper runs every experiment with a warm 500 MB buffer pool and notes
that buffer pool size barely matters because the scans exceed it
(Section 6.2).  This class reproduces that behaviour: page reads that hit
the pool are free (counted as ``buffer_hits``), misses go to the disk and
are charged there.

Capacity is expressed in bytes and enforced in whole pages with
least-recently-used eviction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional, Tuple

from ..errors import StorageError
from .disk import PAGE_SIZE, SimulatedDisk
from .stats import QueryStats

#: Default capacity, matching the paper's System X configuration.
DEFAULT_CAPACITY_BYTES = 500 * 1024 * 1024


class BufferPool:
    """LRU page cache in front of a :class:`SimulatedDisk`.

    Parameters
    ----------
    disk:
        Backing simulated disk.
    capacity_bytes:
        Pool capacity; at least one page.
    """

    def __init__(
        self, disk: SimulatedDisk, capacity_bytes: int = DEFAULT_CAPACITY_BYTES
    ) -> None:
        if capacity_bytes < PAGE_SIZE:
            raise StorageError(
                f"buffer pool must hold at least one page ({PAGE_SIZE} bytes)"
            )
        self.disk = disk
        self.capacity_pages = capacity_bytes // PAGE_SIZE
        self._pages: "OrderedDict[Tuple[str, int], bytes]" = OrderedDict()
        #: lifetime effectiveness counters (never reset by :meth:`clear`,
        #: unlike the per-query ledger's ``buffer_hits``/``pages_read``)
        self.hits = 0
        self.misses = 0

    @property
    def stats(self) -> QueryStats:
        """The active ledger (shared with the disk)."""
        return self.disk.stats

    @property
    def hit_rate(self) -> float:
        """Lifetime fraction of page requests served from the pool."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._pages)

    def read_page(self, name: str, page_no: int) -> bytes:
        """Read a page through the pool."""
        key = (name, page_no)
        cached = self._pages.get(key)
        if cached is not None:
            self._pages.move_to_end(key)
            self.stats.buffer_hits += 1
            self.hits += 1
            return cached
        payload = self.disk.read_page(name, page_no)
        self._insert(key, payload)
        self.misses += 1
        return payload

    def scan_pages(
        self, name: str, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[bytes]:
        """Yield a page range through the pool, preserving sequential
        charging for the misses."""
        f = self.disk.file(name)
        end = f.num_pages if stop is None else min(stop, f.num_pages)
        for page_no in range(start, end):
            yield self.read_page(name, page_no)

    def warm(self, name: str) -> None:
        """Pre-load a file into the pool without charging the ledger.

        Used to set up the paper's "warm buffer pool" starting condition;
        the pool may of course still evict if the file exceeds capacity.
        """
        before = self.stats.snapshot()
        for page_no in range(self.disk.file(name).num_pages):
            payload = self.disk.file(name).pages[page_no]
            self._insert((name, page_no), payload)
        # warming is not part of any measured query; restore counters
        for counter, value in before.items():
            setattr(self.stats, counter, value)

    def clear(self) -> None:
        """Drop every cached page (a cold start)."""
        self._pages.clear()
        self.disk.reset_head()

    def invalidate(self, name: str) -> None:
        """Drop cached pages belonging to one file (after a rebuild)."""
        stale = [key for key in self._pages if key[0] == name]
        for key in stale:
            del self._pages[key]

    def _insert(self, key: Tuple[str, int], payload: bytes) -> None:
        self._pages[key] = payload
        self._pages.move_to_end(key)
        while len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)


__all__ = ["BufferPool", "DEFAULT_CAPACITY_BYTES"]
