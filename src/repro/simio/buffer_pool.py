"""An LRU buffer pool layered over the simulated disk.

The paper runs every experiment with a warm 500 MB buffer pool and notes
that buffer pool size barely matters because the scans exceed it
(Section 6.2).  This class reproduces that behaviour: page reads that hit
the pool are free (counted as ``buffer_hits``), misses go to the disk and
are charged there.

Capacity is expressed in bytes and enforced in whole pages with
least-recently-used eviction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional, Tuple

from ..errors import ChecksumError, StorageError, TransientIOError
from .disk import PAGE_SIZE, SimulatedDisk, stripe_of
from .stats import QueryStats

#: Default capacity, matching the paper's System X configuration.
DEFAULT_CAPACITY_BYTES = 500 * 1024 * 1024

#: How many times a single page read is retried after a fault before the
#: error becomes final (transient errors propagate as
#: :class:`TransientIOError`; checksum mismatches quarantine the page and
#: propagate as :class:`ChecksumError`).
MAX_READ_RETRIES = 4

#: Capped exponential backoff schedule: 100 µs, 200, 400, 800, then flat
#: at 1600 µs.  Charged to the ledger's ``retry_backoff_us`` counter and
#: folded into simulated I/O seconds by the cost model.
_BACKOFF_BASE_US = 100
_BACKOFF_CAP_US = 1600


def _backoff_us(attempt: int) -> int:
    """Backoff charged after the ``attempt``-th failed read (1-based)."""
    return min(_BACKOFF_BASE_US * (2 ** (attempt - 1)), _BACKOFF_CAP_US)


def fill_page(disk: SimulatedDisk, name: str, page_no: int,
              stats: QueryStats, charge: bool = True) -> Tuple[bytes, int]:
    """Read one page from ``disk`` with retry, backoff, and verification.

    This is the single fault-aware read loop shared by the buffer pool's
    miss path and the parallel trace pool.  Returns ``(payload,
    attempts)`` where ``attempts`` counts every physical read performed
    (1 on a clean first read).  Raises:

    * :class:`TransientIOError` once transient retries are exhausted;
    * :class:`ChecksumError` when the page image persistently fails CRC
      verification — the page is quarantined first, so later reads fail
      fast without re-reading garbage.

    ``charge=False`` performs charge-free reads (the morsel workers'
    mode); retry bookkeeping still lands on ``stats``, which in that mode
    is the worker's private ledger, merged at the barrier.
    """
    if disk.is_quarantined(name, page_no):
        raise ChecksumError(name, page_no, stripe_of(page_no),
                            detail="page is quarantined")
    attempts = 0
    while True:
        attempts += 1
        try:
            if charge:
                payload = disk.read_page(name, page_no)
            else:
                payload = disk.peek_page(name, page_no)
        except TransientIOError:
            if attempts > MAX_READ_RETRIES:
                raise
            stats.io_retries += 1
            stats.retry_backoff_us += _backoff_us(attempts)
            continue
        if disk.verify_page(name, page_no, payload):
            return payload, attempts
        stats.checksum_failures += 1
        if attempts > MAX_READ_RETRIES:
            disk.quarantine(name, page_no)
            stats.pages_quarantined += 1
            raise ChecksumError(name, page_no, stripe_of(page_no))
        stats.io_retries += 1
        stats.retry_backoff_us += _backoff_us(attempts)


class BufferPool:
    """LRU page cache in front of a :class:`SimulatedDisk`.

    Parameters
    ----------
    disk:
        Backing simulated disk.
    capacity_bytes:
        Pool capacity; at least one page.
    """

    def __init__(
        self, disk: SimulatedDisk, capacity_bytes: int = DEFAULT_CAPACITY_BYTES
    ) -> None:
        if capacity_bytes < PAGE_SIZE:
            raise StorageError(
                f"buffer pool must hold at least one page ({PAGE_SIZE} bytes)"
            )
        self.disk = disk
        self.capacity_pages = capacity_bytes // PAGE_SIZE
        self._pages: "OrderedDict[Tuple[str, int], bytes]" = OrderedDict()
        #: lifetime effectiveness counters (never reset by :meth:`clear`,
        #: unlike the per-query ledger's ``buffer_hits``/``pages_read``)
        self.hits = 0
        self.misses = 0

    @property
    def stats(self) -> QueryStats:
        """The active ledger (shared with the disk)."""
        return self.disk.stats

    @property
    def hit_rate(self) -> float:
        """Lifetime fraction of page requests served from the pool."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._pages)

    def read_page(self, name: str, page_no: int) -> bytes:
        """Read a page through the pool."""
        # cooperative cancellation lands here too: buffer hits never
        # reach the disk, but a cancelled query must still stop at the
        # next page boundary
        if self.disk.cancellation is not None:
            self.disk.cancellation.check(self.stats)
        key = (name, page_no)
        cached = self._pages.get(key)
        if cached is not None:
            self._pages.move_to_end(key)
            self.stats.buffer_hits += 1
            self.hits += 1
            return cached
        payload, _ = fill_page(self.disk, name, page_no, self.stats)
        self._insert(key, payload)
        self.misses += 1
        return payload

    def replay_read(self, name: str, page_no: int, attempts: int = 1) -> bytes:
        """Re-account a read a morsel worker already performed charge-free.

        The first ``attempts - 1`` physical reads failed (transiently or
        on CRC) and are billed as plain failed reads; the final one goes
        through :meth:`read_page` so the pool's hit/miss behaviour is
        identical to a serial run.  The worker's retry bookkeeping
        (``io_retries``/``retry_backoff_us``) was recorded on its private
        ledger and merged separately.
        """
        for _ in range(max(attempts, 1) - 1):
            self.disk.charge_failed_read(name, page_no)
        return self.read_page(name, page_no)

    def scan_pages(
        self, name: str, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[bytes]:
        """Yield a page range through the pool, preserving sequential
        charging for the misses."""
        f = self.disk.file(name)
        end = f.num_pages if stop is None else min(stop, f.num_pages)
        for page_no in range(start, end):
            yield self.read_page(name, page_no)

    def warm(self, name: str) -> None:
        """Pre-load a file into the pool without charging the ledger.

        Used to set up the paper's "warm buffer pool" starting condition;
        the pool may of course still evict if the file exceeds capacity.
        """
        before = self.stats.snapshot()
        for page_no in range(self.disk.file(name).num_pages):
            payload = self.disk.file(name).pages[page_no]
            # Never cache a page that would not verify: a later miss-fill
            # must get the chance to detect (and report) the corruption.
            if self.disk.is_quarantined(name, page_no):
                continue
            if not self.disk.verify_page(name, page_no, payload):
                continue
            self._insert((name, page_no), payload)
        # warming is not part of any measured query; restore counters
        for counter, value in before.items():
            setattr(self.stats, counter, value)

    def clear(self) -> None:
        """Drop every cached page (a cold start)."""
        self._pages.clear()
        self.disk.reset_head()

    def invalidate(self, name: str) -> None:
        """Drop cached pages belonging to one file (after a rebuild)."""
        stale = [key for key in self._pages if key[0] == name]
        for key in stale:
            del self._pages[key]

    def _insert(self, key: Tuple[str, int], payload: bytes) -> None:
        self._pages[key] = payload
        self._pages.move_to_end(key)
        while len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)


__all__ = ["BufferPool", "DEFAULT_CAPACITY_BYTES", "MAX_READ_RETRIES",
           "fill_page"]
