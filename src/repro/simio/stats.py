"""Work counters and the hardware cost model.

Every physical operator increments counters on a :class:`QueryStats` ledger
*as a side effect of work it actually performs*: a scan that reads 12 pages
adds 12 page reads; a hash join that probes 60,000 keys adds 60,000 probes.
Nothing is charged speculatively, so the counts are measurements of the
simulation, not assumptions about it.

:class:`CostModel` converts a ledger into simulated seconds using per-unit
costs calibrated to the paper's 2008 testbed (2.8 GHz Pentium D, 4-disk
array at ~200 MB/s aggregate).  The *shape* of every experimental result —
who wins and by what factor — is determined by the counts; the constants
only set the absolute scale.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Dict, Iterator, List, Optional

#: Disks in the paper's striped array (Section 6: a 4-disk RAID).
NUM_STRIPE_DISKS = 4


@dataclass
class QueryStats:
    """Ledger of work observed while executing one query (or one phase).

    Attributes are grouped by subsystem.  All counters are plain integers
    and additive: two ledgers can be merged with :meth:`merge`.
    """

    # --- I/O (maintained by SimulatedDisk / BufferPool) ---
    bytes_read: int = 0          #: bytes transferred from disk
    pages_read: int = 0          #: page reads that missed the buffer pool
    seeks: int = 0               #: non-sequential head movements
    buffer_hits: int = 0         #: page reads served by the buffer pool
    bytes_written: int = 0       #: bytes written to disk (loads only)

    # --- per-disk I/O over the 4-disk stripe (page i lives on disk
    # i mod 4; each disk tracks its own head, so a logical stream that
    # spans the stripe charges one positioning per drive, overlapped) ---
    stripe0_bytes: int = 0       #: bytes transferred from stripe disk 0
    stripe1_bytes: int = 0       #: bytes transferred from stripe disk 1
    stripe2_bytes: int = 0       #: bytes transferred from stripe disk 2
    stripe3_bytes: int = 0       #: bytes transferred from stripe disk 3
    stripe0_seeks: int = 0       #: head repositionings on stripe disk 0
    stripe1_seeks: int = 0       #: head repositionings on stripe disk 1
    stripe2_seeks: int = 0       #: head repositionings on stripe disk 2
    stripe3_seeks: int = 0       #: head repositionings on stripe disk 3

    # --- fault tolerance (maintained by the buffer-pool read path and
    # the engines' recovery layer; all zero on a fault-free run, so
    # fault-free ledgers are unchanged by the existence of this layer) ---
    io_retries: int = 0          #: page read attempts repeated after a fault
    retry_backoff_us: int = 0    #: capped-exponential backoff charged (µs)
    checksum_failures: int = 0   #: page images that failed CRC verification
    pages_quarantined: int = 0   #: pages fenced off as persistently corrupt
    recoveries: int = 0          #: reads re-served from a redundant projection

    # --- iteration model ---
    iterator_calls: int = 0      #: per-tuple next() calls (Volcano overhead)
    block_calls: int = 0         #: per-block operator invocations
    values_scanned_vector: int = 0   #: values processed inside vectorized loops
    values_scanned_scalar: int = 0   #: values processed one at a time
    attr_extractions: int = 0    #: attribute extractions from row tuples
    tuple_bytes_scanned: int = 0 #: bytes parsed out of row-format tuples

    # --- joins / predicates ---
    hash_probes: int = 0         #: hash table lookups
    hash_inserts: int = 0        #: hash table build insertions
    range_checks: int = 0        #: between-predicate comparisons (vectorized)
    position_ops: int = 0        #: position-list values intersected/merged

    # --- materialization ---
    tuples_constructed: int = 0  #: tuples stitched together from columns
    tuple_attrs_copied: int = 0  #: attribute copies performed while stitching
    values_decompressed: int = 0 #: values expanded out of a compressed block
    runs_processed: int = 0      #: RLE runs operated on directly

    # --- aggregation / sort ---
    agg_updates: int = 0         #: group-by accumulator updates
    sort_compares: int = 0       #: comparisons charged to sorting (n log n)
    dict_lookups: int = 0        #: dictionary decode lookups for output

    # --- zone maps (maintained by the scan operators; all zero when
    # zone maps are off, so off-mode ledgers are unchanged by the
    # existence of the synopsis layer) ---
    synopsis_probes: int = 0     #: zone-map entries examined before a scan
    blocks_skipped: int = 0      #: blocks/pages never read thanks to a
    #: synopsis (bookkeeping, like ``recoveries``: the *saving* shows up
    #: as the I/O and CPU counters above simply not moving)

    # --- writes / delta store (maintained by repro.write; all zero on
    # read-only runs, so every existing byte-identical ledger guarantee
    # survives the existence of the write path) ---
    delta_rows_merged: int = 0   #: WOS rows merged into a snapshot read
    journal_pages: int = 0       #: redo-journal pages appended
    moves: int = 0               #: tuple-mover drains (WOS -> base pages)

    # --- crash recovery (maintained by repro.write.recovery; all zero
    # on clean starts, so every existing ledger stays byte-identical
    # with the recovery path present) ---
    journal_replay_pages: int = 0  #: journal pages scanned by cold-start replay
    recovered_batches: int = 0   #: journaled DML batches re-applied by replay
    torn_tail_records: int = 0   #: tail records truncated (torn or unacked)

    # --- serving / semantic cache (maintained by repro.serve; all zero
    # on a direct engine call, so engine ledgers are unchanged by the
    # existence of the service layer) ---
    cache_lookups: int = 0       #: semantic-cache probes performed
    cache_exact_hits: int = 0    #: results served verbatim from the cache
    cache_subsumption_hits: int = 0  #: results rebuilt from a subsuming entry
    cache_misses: int = 0        #: probes that fell through to the engine
    cache_refiltered_positions: int = 0  #: cached positions re-examined on a
    #: subsumption hit (bookkeeping, like ``recoveries``: the re-filter
    #: work itself is charged to the ordinary counters above)

    def stripe_bytes(self) -> List[int]:
        """Per-disk bytes transferred, in stripe order."""
        return [self.stripe0_bytes, self.stripe1_bytes,
                self.stripe2_bytes, self.stripe3_bytes]

    def stripe_seeks(self) -> List[int]:
        """Per-disk head repositionings, in stripe order."""
        return [self.stripe0_seeks, self.stripe1_seeks,
                self.stripe2_seeks, self.stripe3_seeks]

    def charge_stripe_read(self, disk_no: int, nbytes: int,
                           seek: bool) -> None:
        """Attribute one page transfer (and optionally a repositioning)
        to one drive of the stripe."""
        setattr(self, f"stripe{disk_no}_bytes",
                getattr(self, f"stripe{disk_no}_bytes") + nbytes)
        if seek:
            setattr(self, f"stripe{disk_no}_seeks",
                    getattr(self, f"stripe{disk_no}_seeks") + 1)

    def merge(self, other: "QueryStats") -> "QueryStats":
        """Add ``other``'s counters into this ledger and return self."""
        for f in dataclass_fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def snapshot(self) -> Dict[str, int]:
        """Return a dict copy of all counters."""
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}

    def nonzero(self) -> Dict[str, int]:
        """Nonzero counters only, sorted by name (for compact artifacts
        with a stable key order)."""
        return {name: value for name, value in sorted(self.snapshot().items())
                if value}

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in dataclass_fields(self):
            setattr(self, f.name, 0)

    def diff(self, earlier: Dict[str, int]) -> "QueryStats":
        """Return a new ledger holding this ledger minus a prior snapshot."""
        out = QueryStats()
        for f in dataclass_fields(self):
            setattr(out, f.name, getattr(self, f.name) - earlier.get(f.name, 0))
        return out

    def __iter__(self) -> Iterator[str]:  # pragma: no cover - convenience
        return iter(self.snapshot())


@dataclass(frozen=True)
class CostBreakdown:
    """Simulated seconds attributed to I/O and CPU for one ledger.

    ``io_seconds`` is the paper-comparable aggregate-bandwidth charge
    (the number every figure and EXPERIMENTS.md ratio is built on).
    ``io_elapsed_seconds`` prices the same ledger against the 4-disk
    stripe as the per-disk critical path — the elapsed time the striped
    array actually needs, with head positioning overlapped across
    drives.  It is ``None`` for ledgers without per-disk attribution
    (hand-built stats, pre-stripe traces).
    """

    io_seconds: float
    cpu_seconds: float
    io_elapsed_seconds: Optional[float] = None

    @property
    def total_seconds(self) -> float:
        return self.io_seconds + self.cpu_seconds

    @property
    def elapsed_seconds(self) -> float:
        """CPU plus the stripe critical path (falls back to the serial
        I/O charge when no per-disk data is present)."""
        io = self.io_elapsed_seconds
        return (self.io_seconds if io is None else io) + self.cpu_seconds


@dataclass(frozen=True)
class CostModel:
    """Per-unit costs of the paper's 2008 testbed.

    Defaults (chosen once, used for every experiment):

    * ``seq_mbps`` — 200 MB/s aggregate sequential bandwidth (Section 6:
      "160-200 MB/sec in aggregate for striped files").
    * ``seek_seconds`` — 0.5 ms effective stream-switch cost: individual
      7200 rpm drives seek in ~8 ms, but the 4-disk stripe overlaps
      positioning across drives and the workload is a handful of long
      sequential streams, so the marginal cost per discontinuity is far
      below a cold single-disk seek.
    * ``iterator_call_seconds`` — ~100 ns for a virtual next() call in a
      tuple-at-a-time executor (Section 5.3).
    * ``tuple_byte_seconds`` — ~4 ns per byte to parse/copy a row-format
      tuple through an operator; this is why narrow materialized views
      process faster than the 17-column fact table even at equal row
      counts.
    * ``scalar_value_seconds`` — ~25 ns to apply an operation to one value
      through a generic, interpreted code path.
    * ``vector_value_seconds`` — ~2.5 ns per value inside a tight
      loop-pipelined array loop (Section 5.3's block iteration).
    * ``hash_probe_seconds`` — ~50 ns per probe (cache-missing hash lookup).
    * ``range_check_seconds`` — ~2.5 ns: a between predicate is two
      vectorized comparisons (Section 5.4.2: "faster to execute for obvious
      reasons").
    * ``tuple_construct_seconds``/``tuple_attr_copy_seconds`` — glue and
      per-attribute copy cost of materializing a row (Section 5.2).
    * ``decompress_value_seconds`` — per-value expansion cost when an
      operator cannot work on compressed data.
    * ``run_op_seconds`` — cost of applying an operation to an entire RLE
      run at once (direct operation on compressed data, Section 5.1).
    """

    seq_mbps: float = 200.0
    seek_seconds: float = 0.0005
    iterator_call_seconds: float = 100e-9
    attr_extraction_seconds: float = 25e-9
    tuple_byte_seconds: float = 4e-9
    scalar_value_seconds: float = 25e-9
    vector_value_seconds: float = 2.5e-9
    block_call_seconds: float = 1e-6
    hash_probe_seconds: float = 25e-9
    hash_insert_seconds: float = 40e-9
    range_check_seconds: float = 2.5e-9
    position_op_seconds: float = 2.0e-9
    tuple_construct_seconds: float = 100e-9
    tuple_attr_copy_seconds: float = 50e-9
    decompress_value_seconds: float = 4e-9
    run_op_seconds: float = 10e-9
    agg_update_seconds: float = 25e-9
    sort_compare_seconds: float = 50e-9
    dict_lookup_seconds: float = 10e-9
    #: one semantic-cache probe: a key hash plus a handful of candidate
    #: signature comparisons against an in-memory map
    cache_lookup_seconds: float = 2e-6
    #: one zone-map entry check: two comparisons against cached min/max
    #: arrays (the sidecar itself is decoded once and cached, so no I/O)
    synopsis_probe_seconds: float = 5e-9

    def io_seconds(self, stats: QueryStats) -> float:
        """Simulated I/O time: transfer at sequential bandwidth plus seeks
        (plus any retry backoff the fault-recovery path waited out)."""
        transfer = stats.bytes_read / (self.seq_mbps * 1024 * 1024)
        return (transfer + stats.seeks * self.seek_seconds
                + stats.retry_backoff_us * 1e-6)

    def striped_io_seconds(self, stats: QueryStats) -> Optional[float]:
        """Elapsed I/O against the 4-disk stripe: the per-disk critical
        path, not the serial sum.

        Each drive delivers 1/4 of the aggregate bandwidth and pays for
        its own head repositionings; the array is done when its slowest
        member is.  For balanced sequential scans this coincides with
        :meth:`io_seconds`; scattered access gets cheaper because
        positioning overlaps across the four arms.  Returns ``None``
        when the ledger carries no per-disk attribution.
        """
        per_disk_bytes = stats.stripe_bytes()
        per_disk_seeks = stats.stripe_seeks()
        if not any(per_disk_bytes) and not any(per_disk_seeks):
            return None
        per_disk_mbps = self.seq_mbps / NUM_STRIPE_DISKS
        return max(
            b / (per_disk_mbps * 1024 * 1024) + s * self.seek_seconds
            for b, s in zip(per_disk_bytes, per_disk_seeks)
        ) + stats.retry_backoff_us * 1e-6

    def cpu_seconds(self, stats: QueryStats) -> float:
        """Simulated CPU time from the instruction-level counters."""
        s = stats
        return (
            s.iterator_calls * self.iterator_call_seconds
            + s.attr_extractions * self.attr_extraction_seconds
            + s.tuple_bytes_scanned * self.tuple_byte_seconds
            + s.values_scanned_scalar * self.scalar_value_seconds
            + s.values_scanned_vector * self.vector_value_seconds
            + s.block_calls * self.block_call_seconds
            + s.hash_probes * self.hash_probe_seconds
            + s.hash_inserts * self.hash_insert_seconds
            + s.range_checks * self.range_check_seconds
            + s.position_ops * self.position_op_seconds
            + s.tuples_constructed * self.tuple_construct_seconds
            + s.tuple_attrs_copied * self.tuple_attr_copy_seconds
            + s.values_decompressed * self.decompress_value_seconds
            + s.runs_processed * self.run_op_seconds
            + s.agg_updates * self.agg_update_seconds
            + s.sort_compares * self.sort_compare_seconds
            + s.dict_lookups * self.dict_lookup_seconds
            + s.cache_lookups * self.cache_lookup_seconds
            + s.synopsis_probes * self.synopsis_probe_seconds
        )

    def cost(self, stats: QueryStats) -> CostBreakdown:
        """Convert a ledger into a :class:`CostBreakdown`."""
        return CostBreakdown(
            io_seconds=self.io_seconds(stats),
            cpu_seconds=self.cpu_seconds(stats),
            io_elapsed_seconds=self.striped_io_seconds(stats),
        )

    def seconds(self, stats: QueryStats) -> float:
        """Total simulated seconds for a ledger."""
        return self.cost(stats).total_seconds

    def write_seconds(self, stats: QueryStats) -> float:
        """Simulated seconds for a *write* ledger.

        Read-side pricing (:meth:`io_seconds`) deliberately excludes
        ``bytes_written`` — that exclusion is what keeps every read-only
        ledger byte-identical whether or not the write path exists.
        Write benchmarks price their journal appends and tuple-mover page
        rewrites here instead: written bytes transfer at the same
        sequential bandwidth as reads, on top of the ordinary read + CPU
        charges the operation accrued.
        """
        written = stats.bytes_written / (self.seq_mbps * 1024 * 1024)
        return self.seconds(stats) + written


#: The cost model used throughout the benchmarks, mirroring the paper's rig.
PAPER_2008 = CostModel()

__all__ = ["QueryStats", "CostModel", "CostBreakdown", "PAPER_2008",
           "NUM_STRIPE_DISKS"]
