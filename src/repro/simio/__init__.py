"""Simulated storage substrate: disk, buffer pool, and cost accounting.

The paper measures wall-clock seconds on 2008 hardware (a 4-disk striped
array at 160-200 MB/s aggregate, 32 KB pages, a 500 MB buffer pool).  This
package provides the equivalent substrate for the reproduction:

* :class:`~repro.simio.disk.SimulatedDisk` stores page images and accounts
  every read (bytes, seeks, sequential vs. random).
* :class:`~repro.simio.buffer_pool.BufferPool` is an LRU page cache layered
  on the disk, so "warm buffer pool" experiments behave as in Section 6.
* :class:`~repro.simio.stats.QueryStats` is the single ledger of observed
  work (bytes read, iterator calls, hash probes, tuple constructions, ...),
  and :class:`~repro.simio.stats.CostModel` converts those measured counts
  into simulated seconds on the paper's hardware.
"""

from .stats import QueryStats, CostModel, CostBreakdown
from .disk import SimulatedDisk, PAGE_SIZE, page_checksum, stripe_of
from .buffer_pool import BufferPool, MAX_READ_RETRIES, fill_page
from .faults import FaultInjector, FaultPolicy, PROFILES, injector_from_profile

__all__ = [
    "QueryStats",
    "CostModel",
    "CostBreakdown",
    "SimulatedDisk",
    "BufferPool",
    "PAGE_SIZE",
    "page_checksum",
    "stripe_of",
    "MAX_READ_RETRIES",
    "fill_page",
    "FaultInjector",
    "FaultPolicy",
    "PROFILES",
    "injector_from_profile",
]
