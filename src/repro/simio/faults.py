"""Deterministic fault injection for the simulated disk.

A :class:`FaultInjector` models three hardware failure modes:

* **transient read errors** — a read attempt raises
  :class:`~repro.errors.TransientIOError`; the same page succeeds after a
  bounded number of retries (the buffer pool's retry/backoff loop pays
  for the re-reads on the ledger);
* **single-bit corruption** — one bit of a stored page image is flipped
  in place.  The per-page CRC kept by :class:`SimulatedDisk` detects it
  (CRC32 catches every single-bit error), the page is quarantined, and
  the engines recover from a redundant projection or fail typed;
* **torn pages** — the tail half of a stored page is replaced with
  zeroes, modelling a write that only half completed.

Every decision is a pure function of ``(seed, kind, file, page)`` via a
keyed hash, so a fault schedule is exactly reproducible from its seed —
regardless of the order pages are touched, the number of worker threads,
or which queries run first.  Persistent corruption is applied to the
stored page images at :meth:`FaultInjector.install` time; the checksum
map is deliberately left alone (a real CRC would have been written when
the page was, before the fault happened).
"""

from __future__ import annotations

import fnmatch
import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SimulatedCrashError, StorageError

#: What :meth:`FaultInjector.install` returns: (file, page, fault kind).
CorruptionLog = List[Tuple[str, int, str]]

#: The five kill points the write path exposes (see ``docs/writes.md``,
#: "Crash recovery").  Each sits on one side of a durability boundary:
#: the journal-append pair brackets the only I/O that makes a batch
#: durable, and the move trio brackets the shadow rebuild and the
#: epoch-stamped move record that commits a swap.
CRASH_BEFORE_JOURNAL_APPEND = "crash:before-journal-append"
CRASH_AFTER_JOURNAL_APPEND = "crash:after-journal-append"
CRASH_MID_MOVE_SHADOW = "crash:mid-move-shadow"
CRASH_BEFORE_MOVE_SWAP = "crash:before-move-swap"
CRASH_AFTER_MOVE_SWAP = "crash:after-move-swap"
CRASH_POINTS: Tuple[str, ...] = (
    CRASH_BEFORE_JOURNAL_APPEND,
    CRASH_AFTER_JOURNAL_APPEND,
    CRASH_MID_MOVE_SHADOW,
    CRASH_BEFORE_MOVE_SWAP,
    CRASH_AFTER_MOVE_SWAP,
)


def _unit(seed: int, kind: str, name: str, page_no: int) -> float:
    """A deterministic uniform [0, 1) draw keyed on all four inputs."""
    digest = hashlib.blake2b(
        f"{seed}:{kind}:{name}:{page_no}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") / 2.0 ** 64


@dataclass(frozen=True)
class FaultPolicy:
    """One rule of a fault schedule, scoped by file glob and page range.

    Rates are per-page probabilities.  ``max_transient_failures`` bounds
    how many consecutive attempts on an afflicted page fail before it
    reads cleanly (each afflicted page draws its own count in
    ``[1, max_transient_failures]``).
    """

    file_glob: str = "*"
    page_lo: int = 0
    page_hi: Optional[int] = None  # exclusive; None = unbounded
    transient_rate: float = 0.0
    max_transient_failures: int = 2
    bitflip_rate: float = 0.0
    torn_rate: float = 0.0
    #: per-page probability that an ``append_page`` *write* fails
    #: transiently (journal appends, tuple-mover page rewrites); the
    #: write path retries with bounded backoff like the read path
    write_fail_rate: float = 0.0
    #: bound on consecutive failed write attempts per afflicted page
    max_write_failures: int = 2

    def applies_to(self, name: str, page_no: int) -> bool:
        if not fnmatch.fnmatchcase(name, self.file_glob):
            return False
        if page_no < self.page_lo:
            return False
        return self.page_hi is None or page_no < self.page_hi


@dataclass(frozen=True)
class CrashPolicy:
    """Arm one kill point: the process "dies" the ``at``-th time the
    write path passes it.

    ``at=None`` draws the arrival deterministically from the injector's
    seed in ``[1, max_at]`` — the seeded schedule the chaos soak uses so
    different seeds kill different batches, reproducibly.  A policy
    fires exactly once; recovery re-running the same code path does not
    re-trip it.
    """

    point: str
    at: Optional[int] = 1
    max_at: int = 3

    def __post_init__(self) -> None:
        if self.point not in CRASH_POINTS:
            raise StorageError(
                f"unknown crash point {self.point!r}; choices are "
                f"{list(CRASH_POINTS)}"
            )
        if self.at is not None and self.at < 1:
            raise StorageError(f"CrashPolicy.at must be >= 1, got {self.at}")
        if self.max_at < 1:
            raise StorageError(
                f"CrashPolicy.max_at must be >= 1, got {self.max_at}"
            )

    def resolved_at(self, seed: int) -> int:
        """The arrival count this policy fires on (seed-drawn when
        ``at`` is None)."""
        if self.at is not None:
            return self.at
        return 1 + int(_unit(seed, "crash-at", self.point, 0) * self.max_at)


def crash_point(injector, point: str) -> None:
    """The write path's kill switch: raise
    :class:`~repro.errors.SimulatedCrashError` if ``injector`` has an
    armed :class:`CrashPolicy` due at this arrival.

    ``injector`` may be ``None`` (a perfect disk) or any object without
    crash support — both are free no-ops, so read paths and crash-free
    write runs are untouched by the existence of this hook.
    """
    if injector is None:
        return
    take = getattr(injector, "take_crash", None)
    if take is not None and take(point):
        raise SimulatedCrashError(point)


class FaultInjector:
    """A seeded, policy-driven fault schedule over one simulated disk.

    Install with :meth:`install`; uninstall by setting the disk's
    ``fault_injector`` back to ``None``.  Thread-safe: the morsel workers
    of the parallel read path consume transient-failure budgets through
    the same injector.
    """

    def __init__(self, seed: int = 0,
                 policies: Sequence[FaultPolicy] = (),
                 crashes: Sequence[CrashPolicy] = ()) -> None:
        self.seed = seed
        self.policies: Tuple[FaultPolicy, ...] = tuple(policies)
        self.crashes: Tuple[CrashPolicy, ...] = tuple(crashes)
        self.corrupted: CorruptionLog = []
        self._lock = threading.Lock()
        self._transient_taken: Dict[Tuple[str, int], int] = {}
        self._write_taken: Dict[Tuple[str, int], int] = {}
        #: arrivals seen per crash point / points already fired
        self._crash_hits: Dict[str, int] = {}
        self._crash_fired: set = set()

    # ------------------------------------------------------------------ #
    # transient errors (consumed by the read path)
    # ------------------------------------------------------------------ #
    def transient_budget(self, name: str, page_no: int) -> int:
        """How many reads of this page fail before one succeeds."""
        budget = 0
        for policy in self.policies:
            if not policy.transient_rate or not policy.applies_to(name,
                                                                  page_no):
                continue
            draw = _unit(self.seed, f"transient/{policy.file_glob}",
                         name, page_no)
            if draw >= policy.transient_rate:
                continue
            count = 1 + int(
                _unit(self.seed, "transient-count", name, page_no)
                * policy.max_transient_failures
            )
            budget = max(budget, min(count, policy.max_transient_failures))
        return budget

    def take_transient(self, name: str, page_no: int) -> bool:
        """Consume one transient failure for this page if any remain."""
        budget = self.transient_budget(name, page_no)
        if budget == 0:
            return False
        key = (name, page_no)
        with self._lock:
            used = self._transient_taken.get(key, 0)
            if used >= budget:
                return False
            self._transient_taken[key] = used + 1
            return True

    def reset_transients(self) -> None:
        """Re-arm every transient failure (e.g. between experiments)."""
        with self._lock:
            self._transient_taken.clear()
            self._write_taken.clear()

    # ------------------------------------------------------------------ #
    # crash points (consumed by the write path via :func:`crash_point`)
    # ------------------------------------------------------------------ #
    def take_crash(self, point: str) -> bool:
        """Count one arrival at ``point``; True exactly when an armed
        policy's resolved arrival is reached (each policy fires once)."""
        if not self.crashes:
            return False
        with self._lock:
            hits = self._crash_hits.get(point, 0) + 1
            self._crash_hits[point] = hits
            for policy in self.crashes:
                if policy.point != point or policy in self._crash_fired:
                    continue
                if hits == policy.resolved_at(self.seed):
                    self._crash_fired.add(policy)
                    return True
        return False

    def crash_pending(self) -> bool:
        """Any armed crash policy that has not fired yet?"""
        with self._lock:
            return any(p not in self._crash_fired for p in self.crashes)

    # ------------------------------------------------------------------ #
    # write faults (consumed by the append path: journal, tuple mover)
    # ------------------------------------------------------------------ #
    def write_budget(self, name: str, page_no: int) -> int:
        """How many appends of this page fail before one succeeds."""
        budget = 0
        for policy in self.policies:
            if not policy.write_fail_rate or not policy.applies_to(name,
                                                                   page_no):
                continue
            draw = _unit(self.seed, f"write/{policy.file_glob}",
                         name, page_no)
            if draw >= policy.write_fail_rate:
                continue
            count = 1 + int(
                _unit(self.seed, "write-count", name, page_no)
                * policy.max_write_failures
            )
            budget = max(budget, min(count, policy.max_write_failures))
        return budget

    def take_write_fault(self, name: str, page_no: int) -> bool:
        """Consume one write failure for this page if any remain."""
        budget = self.write_budget(name, page_no)
        if budget == 0:
            return False
        key = (name, page_no)
        with self._lock:
            used = self._write_taken.get(key, 0)
            if used >= budget:
                return False
            self._write_taken[key] = used + 1
            return True

    # ------------------------------------------------------------------ #
    # persistent corruption (applied once to the stored images)
    # ------------------------------------------------------------------ #
    def _persistent_kind(self, name: str, page_no: int) -> Optional[str]:
        for policy in self.policies:
            if not policy.applies_to(name, page_no):
                continue
            if policy.bitflip_rate and _unit(
                    self.seed, f"bitflip/{policy.file_glob}", name,
                    page_no) < policy.bitflip_rate:
                return "bitflip"
            if policy.torn_rate and _unit(
                    self.seed, f"torn/{policy.file_glob}", name,
                    page_no) < policy.torn_rate:
                return "torn"
        return None

    def _mutate(self, payload: bytes, kind: str, name: str,
                page_no: int) -> bytes:
        if kind == "bitflip":
            bit = int(_unit(self.seed, "bit-position", name, page_no)
                      * len(payload) * 8)
            mutated = bytearray(payload)
            mutated[bit // 8] ^= 1 << (bit % 8)
            return bytes(mutated)
        half = len(payload) // 2
        return payload[:half] + b"\x00" * (len(payload) - half)

    def corrupt_disk(self, disk) -> CorruptionLog:
        """Apply the persistent-corruption schedule to ``disk``'s stored
        page images (checksum map untouched) and return what was hit."""
        log: CorruptionLog = []
        for name in disk.files():
            f = disk.file(name)
            for page_no, payload in enumerate(f.pages):
                if not payload:
                    continue
                kind = self._persistent_kind(name, page_no)
                if kind is None:
                    continue
                f.pages[page_no] = self._mutate(payload, kind, name, page_no)
                log.append((name, page_no, kind))
        self.corrupted.extend(log)
        return log

    def install(self, disk) -> CorruptionLog:
        """Corrupt ``disk`` per the schedule and hook transient faults
        into its read path.  Returns the corruption log."""
        log = self.corrupt_disk(disk)
        disk.fault_injector = self
        return log


#: Named fault schedules for the bench/scrub ``--fault-profile`` flag.
PROFILES: Dict[str, Tuple[FaultPolicy, ...]] = {
    "transient": (FaultPolicy(transient_rate=0.10,
                              max_transient_failures=2),),
    "bitflip": (FaultPolicy(bitflip_rate=0.02),),
    "torn": (FaultPolicy(torn_rate=0.02),),
    "mixed": (FaultPolicy(transient_rate=0.05, bitflip_rate=0.01,
                          torn_rate=0.01),),
    # a localized dead region that never heals: every page but the first
    # of each discount column is corrupt — the sustained-fault scenario
    # the service's circuit breakers are built for
    "persistent": (FaultPolicy(file_glob="*.discount", page_lo=1,
                               bitflip_rate=1.0),),
}

#: One-line description per profile (``--fault-profile list``).
PROFILE_NOTES: Dict[str, str] = {
    "transient": "10% of pages fail 1-2 reads, then heal (retry path)",
    "bitflip": "2% of pages get one flipped bit (CRC catches, quarantine)",
    "torn": "2% of pages lose their tail half (torn-write model)",
    "mixed": "5% transient + 1% bitflip + 1% torn, all at once",
    "persistent": "every *.discount page past the first is corrupt, "
                  "forever (breaker/degraded-serving scenario)",
}


def injector_from_profile(profile: str, seed: int = 0) -> FaultInjector:
    """Build an injector from a named profile (see :data:`PROFILES`)."""
    try:
        policies = PROFILES[profile]
    except KeyError:
        raise StorageError(
            f"unknown fault profile {profile!r}; choices are "
            f"{sorted(PROFILES)}"
        ) from None
    return FaultInjector(seed=seed, policies=policies)


#: Named crash schedules for the ``--crash-profile`` flag (verifier and
#: recovery bench).  Each maps to the kill points it arms; the arrival is
#: seed-drawn (``at=None``) so different seeds kill different batches.
CRASH_PROFILES: Dict[str, Tuple[str, ...]] = {
    "journal": (CRASH_BEFORE_JOURNAL_APPEND, CRASH_AFTER_JOURNAL_APPEND),
    "move": (CRASH_MID_MOVE_SHADOW, CRASH_BEFORE_MOVE_SWAP,
             CRASH_AFTER_MOVE_SWAP),
    "all": CRASH_POINTS,
}

#: One-line description per crash profile (``--crash-profile list``).
CRASH_PROFILE_NOTES: Dict[str, str] = {
    "journal": "kill on either side of a journal append (torn-tail model)",
    "move": "kill mid-shadow-build or around the move-commit record",
    "all": "every kill point the write path exposes, one run each",
}


def crash_policies_from_profile(profile: str, seed: int = 0,
                                max_at: int = 3) -> Tuple[CrashPolicy, ...]:
    """The seed-drawn :class:`CrashPolicy` set for a named crash profile
    (see :data:`CRASH_PROFILES`)."""
    try:
        points = CRASH_PROFILES[profile]
    except KeyError:
        raise StorageError(
            f"unknown crash profile {profile!r}; choices are "
            f"{sorted(CRASH_PROFILES)}"
        ) from None
    del seed  # the draw happens at resolve time, from the injector's seed
    return tuple(CrashPolicy(point, at=None, max_at=max_at)
                 for point in points)


__all__ = ["FaultPolicy", "FaultInjector", "PROFILES", "PROFILE_NOTES",
           "injector_from_profile",
           "CrashPolicy", "crash_point", "crash_policies_from_profile",
           "CRASH_POINTS", "CRASH_PROFILES", "CRASH_PROFILE_NOTES",
           "CRASH_BEFORE_JOURNAL_APPEND", "CRASH_AFTER_JOURNAL_APPEND",
           "CRASH_MID_MOVE_SHADOW", "CRASH_BEFORE_MOVE_SWAP",
           "CRASH_AFTER_MOVE_SWAP"]
