"""Disk scrubber: audit page checksums, repair from redundant projections.

``python -m repro.scrub`` walks every file on the column store's
simulated disk, verifies each page against the CRC recorded at write
time, and — unless ``--no-repair`` is given — rebuilds corrupt pages
from a redundant projection of the same table.

Repair works because every projection of a table is loaded with the
same sort keys (see ``CStore.load_table``): projections at different
compression levels share one position space, so the value range a
corrupt block covers can be re-fetched from any sibling projection that
has the column, converted back to the victim's stored domain
(dictionary codes ↔ expanded strings), and re-encoded.  The encoder is
deterministic, so a correct repair reproduces the original page bytes —
verified against the stored CRC before the page is rewritten.  Pages
with no intact donor are reported as unrepairable.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .errors import ReproError, ScrubError
from .simio.disk import PAGE_SIZE, SimulatedDisk, page_checksum
from .storage.colfile import (
    _PAGE_HEADER_BYTES,
    ColumnFile,
    CompressionLevel,
)
from .storage.encodings import decode_payload
from .storage.encodings.plain import PLAIN
from .storage.projection import Projection
from .synopsis import (
    MIN_SIDECAR_BLOCKS,
    SIDECAR_SUFFIX,
    ColumnSynopsisBuilder,
    is_sidecar,
    sidecar_name,
    split_stamp,
    stamp_blob,
)


@dataclass
class FileHealth:
    """Checksum audit outcome for one disk file."""

    name: str
    num_pages: int
    corrupt: List[int] = field(default_factory=list)
    repaired: List[int] = field(default_factory=list)
    unrepairable: List[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.corrupt


@dataclass
class ScrubReport:
    """Full-disk audit (and repair) outcome."""

    files: List[FileHealth]
    #: zone-map sidecars rewritten because they no longer matched their
    #: (healthy) data file — a repaired page must never ride with a
    #: stale synopsis
    stale_synopses: int = 0
    #: sidecars whose write-epoch stamp trails the store's pending write
    #: epoch — legitimately behind a delta the tuple mover has not yet
    #: merged, NOT drift: their payload still matches the base pages
    behind_delta: int = 0

    @property
    def corrupt_pages(self) -> int:
        return sum(len(f.corrupt) for f in self.files)

    @property
    def repaired_pages(self) -> int:
        return sum(len(f.repaired) for f in self.files)

    @property
    def unrepairable_pages(self) -> int:
        return sum(len(f.unrepairable) for f in self.files)

    @property
    def clean(self) -> bool:
        return self.corrupt_pages == 0

    def render(self) -> str:
        lines = [f"scrubbed {len(self.files)} file(s): "
                 f"{self.corrupt_pages} corrupt page(s), "
                 f"{self.repaired_pages} repaired, "
                 f"{self.unrepairable_pages} unrepairable"]
        for f in self.files:
            if f.clean:
                continue
            status = []
            if f.repaired:
                status.append(f"repaired {f.repaired}")
            if f.unrepairable:
                status.append(f"UNREPAIRABLE {f.unrepairable}")
            lines.append(f"  {f.name} ({f.num_pages} page(s)): "
                         f"corrupt {f.corrupt} -> " + ", ".join(status))
        if self.stale_synopses:
            lines.append(f"  rebuilt {self.stale_synopses} stale "
                         f"synopsis sidecar(s)")
        if self.behind_delta:
            lines.append(f"  {self.behind_delta} sidecar(s) legitimately "
                         f"behind a pending delta (run the tuple mover)")
        if self.clean:
            lines.append("  all page checksums verify")
        return "\n".join(lines)


def audit_disk(disk: SimulatedDisk) -> List[FileHealth]:
    """CRC-check every page of every file (no repair, no ledger charge)."""
    report: List[FileHealth] = []
    for name in disk.files():
        f = disk.file(name)
        health = FileHealth(name=name, num_pages=f.num_pages)
        for page_no in range(f.num_pages):
            if not disk.verify_page(name, page_no):
                health.corrupt.append(page_no)
        report.append(health)
    return report


# --------------------------------------------------------------------- #
# repair
# --------------------------------------------------------------------- #
def _donors(store, victim: Projection, column: str) -> List[Projection]:
    """Sibling projections that can serve the victim's position space."""
    donors: List[Projection] = []
    for candidates in store._projections.values():
        for p in candidates:
            if (p.table_name == victim.table_name
                    and p.name != victim.name
                    and p.sort_order.keys == victim.sort_order.keys
                    and p.has_column(column)):
                donors.append(p)
    return donors


def _to_victim_domain(values: np.ndarray, donor_cf: ColumnFile,
                      victim_cf: ColumnFile) -> np.ndarray:
    """Convert fetched donor values into the victim's stored domain."""
    if victim_cf.dictionary is not None:
        if donor_cf.dictionary is not None:
            # both store codes over the same table-level dictionary
            return values.astype(np.int32)
        # donor stores expanded fixed-width bytes -> re-encode to codes
        strings = [v.decode("ascii").rstrip("\x00") for v in values]
        return victim_cf.dictionary.encode(strings)
    if donor_cf.dictionary is not None:
        # victim stores expanded bytes, donor stores codes -> expand
        expanded = np.asarray(donor_cf.dictionary.strings,
                              dtype=victim_cf.dtype)
        return expanded[values]
    return values.astype(victim_cf.dtype)


def _encode_page(chunk: np.ndarray, level: CompressionLevel) -> bytes:
    """Re-encode one block exactly as ``ColumnFile.load`` wrote it."""
    if len(chunk) == 0:
        framed = PLAIN.frame(chunk)
    else:
        framed = ColumnFile._codec_for(chunk, level).frame(chunk)
    return len(chunk).to_bytes(_PAGE_HEADER_BYTES, "little") + framed


def _sidecar_blob(disk: SimulatedDisk, data_name: str) -> Optional[bytes]:
    """Deterministically rebuild a column file's synopsis blob by decoding
    its (verified) data pages and re-running the write-time builder."""
    builder = ColumnSynopsisBuilder()
    for payload in disk.file(data_name).pages:
        data = decode_payload(payload[_PAGE_HEADER_BYTES:])
        if len(data):
            builder.add_block(data)
    # same gate as the write path: single-block files carry no sidecar
    if builder.num_blocks < MIN_SIDECAR_BLOCKS:
        return None
    return builder.blob()


def _repair_sidecar(store, file_name: str, page_no: int) -> bool:
    """Rebuild one corrupt zone-map sidecar page from its data file.

    Requires every data page to verify first (the fixpoint loop in
    :func:`scrub_store` repairs data before retrying sidecars), so a
    repaired data page can never ride with a stale zone map."""
    disk: SimulatedDisk = store.disk
    data_name = file_name[:-len(SIDECAR_SUFFIX)]
    if not disk.exists(data_name):
        return False
    data = disk.file(data_name)
    if any(not disk.verify_page(data_name, p)
           for p in range(data.num_pages)):
        return False
    try:
        blob = _sidecar_blob(disk, data_name)
    except ReproError:
        return False
    if blob is None:
        return False
    # moved stores stamp their sidecars with the merged write epoch; the
    # deterministic rebuild must carry the same trailer to reproduce the
    # original page bytes
    blob = stamp_blob(blob, getattr(store, "_zm_epoch", 0))
    payload = blob[page_no * PAGE_SIZE:(page_no + 1) * PAGE_SIZE]
    if page_checksum(payload) != disk.expected_checksum(file_name, page_no):
        return False
    disk.rewrite_page(file_name, page_no, payload, charge=True)
    disk.unquarantine(file_name, page_no)
    store.pool.invalidate(file_name)
    return True


def repair_page(store, file_name: str, page_no: int) -> bool:
    """Rebuild one corrupt column-file page from a sibling projection.

    Returns True when the page was rewritten byte-identically (checked
    against the stored CRC); False when no intact donor could serve it.
    Zone-map sidecars are rebuilt from their own data file instead.
    """
    disk: SimulatedDisk = store.disk
    if is_sidecar(file_name):
        return _repair_sidecar(store, file_name, page_no)
    owner = store.find_owner(file_name)
    if owner is None:
        return False
    victim, column = owner
    victim_cf = victim.column_file(column)
    starts = victim_cf.block_starts
    if page_no >= len(starts):
        return False
    start = int(starts[page_no])
    end = (int(starts[page_no + 1]) if page_no + 1 < len(starts)
           else victim_cf.num_values)
    for donor in _donors(store, victim, column):
        donor_cf = donor.column_file(column)
        try:
            if end > start:
                fetched = donor_cf.fetch(
                    store.pool, np.arange(start, end, dtype=np.int64))
            else:
                fetched = np.zeros(0, dtype=donor_cf.dtype)
            chunk = _to_victim_domain(fetched, donor_cf, victim_cf)
        except ReproError:
            continue  # donor is damaged too; try the next one
        payload = _encode_page(chunk, victim_cf.level)
        if page_checksum(payload) != disk.expected_checksum(file_name,
                                                            page_no):
            # donor data does not reproduce the original page bytes —
            # treat as unusable rather than install a guess
            continue
        disk.rewrite_page(file_name, page_no, payload, charge=True)
        disk.unquarantine(file_name, page_no)
        store.pool.invalidate(file_name)
        return True
    return False


def scrub_store(store, repair: bool = True) -> ScrubReport:
    """Audit (and optionally repair) every file on a column store's disk.

    ``store`` is a :class:`~repro.colstore.engine.CStore`; files that no
    projection owns (e.g. row-MV blobs) are audited but never repairable.
    """
    files = audit_disk(store.disk)
    if not repair:
        for health in files:
            health.unrepairable = list(health.corrupt)
        return ScrubReport(files=files)
    # iterate to a fixpoint: a page can become repairable only after a
    # donor page that covers the same positions was itself repaired
    pending = [(h, p) for h in files for p in h.corrupt]
    while pending:
        progress = False
        still: List[Tuple[FileHealth, int]] = []
        for health, page_no in pending:
            if repair_page(store, health.name, page_no):
                health.repaired.append(page_no)
                progress = True
            else:
                still.append((health, page_no))
        if not progress:
            for health, page_no in still:
                health.unrepairable.append(page_no)
            break
        pending = still
    rebuilt, behind = _rebuild_stale_synopses(store)
    return ScrubReport(files=files, stale_synopses=rebuilt,
                       behind_delta=behind)


def _rebuild_stale_synopses(store) -> Tuple[int, int]:
    """Verify every healthy data file's sidecar still matches a fresh
    rebuild; rewrite any that drifted.  Belt-and-braces: page repairs
    are byte-identical, so drift normally cannot happen — but a repaired
    page must never ride with a stale zone map.

    Sidecars carry a write-epoch stamp (see ``repro.synopsis``); the
    comparison strips it, so a sidecar that merely trails the store's
    pending writes is counted as *behind the delta* (second return
    value) rather than misdiagnosed as drifted — base pages do not
    change until the tuple mover runs, so its payload is still exact.
    """
    disk: SimulatedDisk = store.disk
    rebuilt = 0
    behind = 0
    pending_epoch = 0
    if getattr(store, "pending_writes", None) and store.pending_writes():
        pending_epoch = store.write_epoch
    for data_name in disk.files():
        if is_sidecar(data_name):
            continue
        zm_name = sidecar_name(data_name)
        if not disk.exists(zm_name):
            continue
        zm = disk.file(zm_name)
        data = disk.file(data_name)
        # only compare when both sides verify; corrupt pages were already
        # handled (or reported unrepairable) by the repair loop
        if any(not disk.verify_page(data_name, p)
               for p in range(data.num_pages)):
            continue
        if any(not disk.verify_page(zm_name, p)
               for p in range(zm.num_pages)):
            continue
        try:
            blob = _sidecar_blob(disk, data_name)
        except ReproError:
            continue
        expected = blob if blob is not None else b""
        stored, stamp = split_stamp(b"".join(zm.pages))
        if pending_epoch and stamp < pending_epoch:
            behind += 1
        if stored == expected:
            continue
        # genuine drift: rewrite the payload, preserving the stamp
        want_blob = stamp_blob(expected, stamp)
        for page_no in range(zm.num_pages):
            want = want_blob[page_no * PAGE_SIZE:(page_no + 1) * PAGE_SIZE]
            if zm.pages[page_no] != want:
                disk.rewrite_page(zm_name, page_no, want, charge=True)
        store.pool.invalidate(zm_name)
        rebuilt += 1
    return rebuilt, behind


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scrub",
        description="Audit page checksums on the column store's simulated "
                    "disk and repair corrupt pages from redundant "
                    "projections.",
    )
    parser.add_argument("--sf", type=float, default=None,
                        help="scale factor (default: REPRO_SF env or 0.05)")
    parser.add_argument("--fault-profile", default=None,
                        help="corrupt the disk first with this seeded "
                             "fault profile (transient|bitflip|torn|mixed)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for --fault-profile (default 0)")
    parser.add_argument("--no-repair", action="store_true",
                        help="audit only; report corrupt pages without "
                             "rewriting anything")
    args = parser.parse_args(argv)

    from .bench.harness import Harness

    harness = Harness(scale_factor=args.sf)
    store = harness.cstore()
    print(f"scale factor {harness.scale_factor}, "
          f"{len(store.disk.files())} file(s) on disk")
    if args.fault_profile:
        from .simio.faults import injector_from_profile

        injector = injector_from_profile(args.fault_profile,
                                         args.fault_seed)
        log = injector.install(store.disk)
        print(f"fault profile {args.fault_profile!r} seed "
              f"{args.fault_seed}: corrupted {len(log)} page(s)")

    report = scrub_store(store, repair=not args.no_repair)
    print(report.render())
    return 0 if report.unrepairable_pages == 0 else 1


if __name__ == "__main__":
    sys.exit(main())


#: Public alias: cold-start recovery (``repro.write.recovery``) reuses
#: the scrubber's stale-synopsis pass to re-derive zone-map sidecars
#: whose epoch stamp trails the recovered epoch.
rebuild_stale_synopses = _rebuild_stale_synopses


__all__ = ["FileHealth", "ScrubReport", "audit_disk", "repair_page",
           "scrub_store", "rebuild_stale_synopses", "main", "ScrubError"]
