"""Aggregate function semantics shared by every engine.

Each supported function reduces to at most two int64 accumulators — a
primary and an optional secondary (AVG carries sum and count) — so
engines can accumulate incrementally (batch at a time, merging across
batches) and finalize once at the end.  All arithmetic is exact int64
until :func:`finalize`, so every engine produces bit-identical results
regardless of evaluation order.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..errors import PlanError

#: Functions the IR accepts.
SUPPORTED_FUNCS = ("sum", "count", "min", "max", "avg")

Cell = Union[int, float]

_INT64_MIN = np.iinfo(np.int64).min
_INT64_MAX = np.iinfo(np.int64).max


def validate_func(func: str) -> None:
    if func not in SUPPORTED_FUNCS:
        raise PlanError(
            f"unsupported aggregate {func!r}; supported: "
            f"{', '.join(SUPPORTED_FUNCS)}"
        )


def needs_expr_values(func: str) -> bool:
    """COUNT ignores its argument values; everything else needs them."""
    return func != "count"


def reduce_groups(
    func: str,
    values: np.ndarray,
    inverse: np.ndarray,
    num_groups: int,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Per-group (primary, secondary) accumulators for one batch.

    ``values`` are the aggregate-input expression values (int64);
    ``inverse`` maps each row to its group index.
    """
    validate_func(func)
    if func == "count":
        primary = np.zeros(num_groups, dtype=np.int64)
        np.add.at(primary, inverse, 1)
        return primary, None
    if func in ("sum", "avg"):
        primary = np.zeros(num_groups, dtype=np.int64)
        np.add.at(primary, inverse, values)
        if func == "sum":
            return primary, None
        secondary = np.zeros(num_groups, dtype=np.int64)
        np.add.at(secondary, inverse, 1)
        return primary, secondary
    if func == "min":
        primary = np.full(num_groups, _INT64_MAX, dtype=np.int64)
        np.minimum.at(primary, inverse, values)
        return primary, None
    primary = np.full(num_groups, _INT64_MIN, dtype=np.int64)
    np.maximum.at(primary, inverse, values)
    return primary, None


def reduce_scalar(func: str, values: np.ndarray
                  ) -> Tuple[int, Optional[int]]:
    """The no-GROUP-BY reduction of one batch."""
    validate_func(func)
    n = len(values)
    if func == "count":
        return n, None
    if func == "sum":
        return int(values.sum()) if n else 0, None
    if func == "avg":
        return (int(values.sum()) if n else 0), n
    if n == 0:
        return (_INT64_MAX, None) if func == "min" else (_INT64_MIN, None)
    if func == "min":
        return int(values.min()), None
    return int(values.max()), None


def merge(func: str, old: Tuple[int, Optional[int]],
          new: Tuple[int, Optional[int]]) -> Tuple[int, Optional[int]]:
    """Combine two partial accumulators (across batches)."""
    validate_func(func)
    if func == "min":
        return min(old[0], new[0]), None
    if func == "max":
        return max(old[0], new[0]), None
    if func == "avg":
        return old[0] + new[0], (old[1] or 0) + (new[1] or 0)
    return old[0] + new[0], None


def empty_accumulator(func: str) -> Tuple[int, Optional[int]]:
    """The identity element for :func:`merge`."""
    validate_func(func)
    if func == "min":
        return _INT64_MAX, None
    if func == "max":
        return _INT64_MIN, None
    if func == "avg":
        return 0, 0
    return 0, None


def finalize(func: str, primary: int, secondary: Optional[int]) -> Cell:
    """Turn accumulators into the output cell (AVG divides exactly at
    the end, so every engine agrees bit-for-bit)."""
    validate_func(func)
    if func == "avg":
        count = secondary or 0
        return float(primary) / count if count else 0.0
    if func == "min" and primary == _INT64_MAX:
        return 0  # empty input; SQL would say NULL, we normalize to 0
    if func == "max" and primary == _INT64_MIN:
        return 0
    return int(primary)


__all__ = [
    "SUPPORTED_FUNCS",
    "validate_func",
    "needs_expr_values",
    "reduce_groups",
    "reduce_scalar",
    "merge",
    "empty_accumulator",
    "finalize",
]
