"""Logical query representation shared by every engine.

The paper's workload is star-schema queries: restrict the fact table via
predicates on dimension tables (and sometimes on fact columns), aggregate
over the survivors, group by dimension attributes.
:class:`~repro.plan.logical.StarQuery` captures exactly that shape; each
engine's planner lowers it to a physical plan, and the reference engine
evaluates it naively to produce the correctness oracle.
"""

from .logical import (
    AggExpr,
    BinOp,
    ColumnRef,
    Comparison,
    InSet,
    Literal,
    OrderKey,
    Predicate,
    RangePredicate,
    StarQuery,
)

__all__ = [
    "AggExpr",
    "BinOp",
    "ColumnRef",
    "Comparison",
    "InSet",
    "Literal",
    "OrderKey",
    "Predicate",
    "RangePredicate",
    "StarQuery",
]
