"""The StarQuery IR: a declarative description of one SSB-style query.

Design notes
------------
* Predicates are single-column and conjunctive — the whole SSBM (and the
  broader star-schema idiom the paper targets) needs nothing more.  Each
  predicate names the table it applies to, so planners can route dimension
  predicates into join phases and fact predicates into scans.
* Aggregate expressions are tiny arithmetic trees over fact columns
  (``sum(extendedprice * discount)``, ``sum(revenue - supplycost)``).
* Group-by keys may come from dimension tables (``d.year``, ``c.nation``)
  or, in denormalized schemas, directly from the fact table.
* The IR is engine-neutral: the row-store planner, the column-store
  planner, the reference evaluator, and the SQL frontend all meet here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..errors import PlanError

Value = Union[int, str]


class CompareOp(enum.Enum):
    """Comparison operators supported in predicates."""

    EQ = "="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def flip(self) -> "CompareOp":
        """The operator with operands swapped (5 < x  ==  x > 5)."""
        return {
            CompareOp.EQ: CompareOp.EQ,
            CompareOp.LT: CompareOp.GT,
            CompareOp.LE: CompareOp.GE,
            CompareOp.GT: CompareOp.LT,
            CompareOp.GE: CompareOp.LE,
        }[self]


@dataclass(frozen=True)
class ColumnRef:
    """A column of some table, e.g. ``lineorder.revenue``."""

    table: str
    column: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.table}.{self.column}"


@dataclass(frozen=True)
class Comparison:
    """``column <op> literal``."""

    ref: ColumnRef
    op: CompareOp
    value: Value

    @property
    def table(self) -> str:
        return self.ref.table

    @property
    def column(self) -> str:
        return self.ref.column

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.ref} {self.op.value} {self.value!r}"


@dataclass(frozen=True)
class RangePredicate:
    """``column BETWEEN low AND high`` (inclusive both ends)."""

    ref: ColumnRef
    low: Value
    high: Value

    @property
    def table(self) -> str:
        return self.ref.table

    @property
    def column(self) -> str:
        return self.ref.column

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.ref} BETWEEN {self.low!r} AND {self.high!r}"


@dataclass(frozen=True)
class InSet:
    """``column IN (v1, v2, ...)``."""

    ref: ColumnRef
    values: Tuple[Value, ...]

    @property
    def table(self) -> str:
        return self.ref.table

    @property
    def column(self) -> str:
        return self.ref.column

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(v) for v in self.values)
        return f"{self.ref} IN ({inner})"


Predicate = Union[Comparison, RangePredicate, InSet]


@dataclass(frozen=True)
class Literal:
    """A constant inside an aggregate expression."""

    value: int


@dataclass(frozen=True)
class BinOp:
    """Binary arithmetic inside an aggregate expression."""

    op: str  # '+', '-', '*'
    left: "Expr"
    right: "Expr"

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*"):
            raise PlanError(f"unsupported arithmetic operator {self.op!r}")


Expr = Union[ColumnRef, Literal, BinOp]


def expr_columns(expr: Expr) -> List[ColumnRef]:
    """All column references inside an expression tree."""
    if isinstance(expr, ColumnRef):
        return [expr]
    if isinstance(expr, Literal):
        return []
    return expr_columns(expr.left) + expr_columns(expr.right)


@dataclass(frozen=True)
class AggExpr:
    """An aggregate output: ``func(expr) AS alias``.

    SUM covers the whole SSBM; COUNT, MIN, MAX, and AVG are supported
    throughout every engine (semantics in :mod:`repro.plan.aggregates`).
    """

    func: str
    expr: Expr
    alias: str

    def __post_init__(self) -> None:
        from .aggregates import validate_func

        validate_func(self.func)


@dataclass(frozen=True)
class OrderKey:
    """One ORDER BY key: a group-by column or an aggregate alias."""

    key: str
    ascending: bool = True


@dataclass(frozen=True)
class StarQuery:
    """A star-schema aggregate query.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"Q3.1"``.
    fact_table:
        Name of the fact table (``lineorder``, or the denormalized
        variant in Figure 8 experiments).
    joins:
        Maps a fact foreign-key column to the dimension it references,
        e.g. ``{"custkey": "customer"}``.  Only dimensions actually used
        (filtered or grouped on) appear.
    dim_keys:
        Maps a dimension to its key column when that differs from the
        fact FK column's name (SSB: ``{"date": "datekey"}``); other
        dimensions default to the FK column name.
    predicates:
        Conjunctive single-column predicates; each names its table via
        its :class:`ColumnRef` (the fact table or a joined dimension).
    group_by:
        Group-by keys as column references (dimension or fact columns).
    aggregates:
        Aggregate outputs, at least one.
    order_by:
        Result ordering over group-by column names and aggregate aliases.
    """

    name: str
    fact_table: str
    joins: Dict[str, str]
    predicates: Tuple[Predicate, ...]
    group_by: Tuple[ColumnRef, ...]
    aggregates: Tuple[AggExpr, ...]
    order_by: Tuple[OrderKey, ...] = ()
    dim_keys: Dict[str, str] = field(default_factory=dict)
    #: optional LIMIT applied after ORDER BY
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise PlanError(f"query {self.name!r} has no aggregates")
        if self.limit is not None and self.limit < 0:
            raise PlanError(f"negative LIMIT {self.limit}")
        referenced = {p.table for p in self.predicates}
        referenced |= {g.table for g in self.group_by}
        known = set(self.joins.values()) | {self.fact_table}
        unknown = referenced - known
        if unknown:
            raise PlanError(
                f"query {self.name!r} references tables {sorted(unknown)} "
                f"that are neither the fact table nor joined dimensions"
            )

    # ------------------------------------------------------------------ #
    # convenience accessors used by the planners
    # ------------------------------------------------------------------ #
    def dimension_predicates(self, dim: str) -> List[Predicate]:
        """Predicates applying to dimension ``dim``."""
        return [p for p in self.predicates if p.table == dim]

    def fact_predicates(self) -> List[Predicate]:
        """Predicates applying directly to the fact table."""
        return [p for p in self.predicates if p.table == self.fact_table]

    def dimensions_used(self) -> List[str]:
        """Dimensions that are filtered or grouped on, in join order."""
        used = {p.table for p in self.predicates if p.table != self.fact_table}
        used |= {g.table for g in self.group_by if g.table != self.fact_table}
        return [d for _fk, d in sorted(self.joins.items()) if d in used]

    def fk_of(self, dim: str) -> str:
        """The fact foreign-key column referencing dimension ``dim``."""
        for fk, d in self.joins.items():
            if d == dim:
                return fk
        raise PlanError(f"query {self.name!r} does not join dimension {dim!r}")

    def key_of(self, dim: str) -> str:
        """The key column of dimension ``dim`` (defaults to the FK name)."""
        return self.dim_keys.get(dim, self.fk_of(dim))

    def group_by_of(self, table: str) -> List[str]:
        """Group-by column names drawn from ``table``."""
        return [g.column for g in self.group_by if g.table == table]

    def fact_columns_needed(self) -> List[str]:
        """Fact columns this query touches (predicates, FKs, aggregates,
        fact-side group-bys), in first-use order."""
        seen: List[str] = []

        def add(name: str) -> None:
            if name not in seen:
                seen.append(name)

        for p in self.fact_predicates():
            add(p.column)
        for dim in self.dimensions_used():
            add(self.fk_of(dim))
        for agg in self.aggregates:
            for ref in expr_columns(agg.expr):
                if ref.table == self.fact_table:
                    add(ref.column)
        for g in self.group_by:
            if g.table == self.fact_table:
                add(g.column)
        return seen

    def has_group_by(self) -> bool:
        return bool(self.group_by)


__all__ = [
    "CompareOp",
    "ColumnRef",
    "Comparison",
    "RangePredicate",
    "InSet",
    "Predicate",
    "Literal",
    "BinOp",
    "Expr",
    "expr_columns",
    "AggExpr",
    "OrderKey",
    "StarQuery",
    "Value",
]
