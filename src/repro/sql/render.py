"""Rendering StarQuery IR back to SQL text.

The inverse of the binder: any IR the engines can execute renders to SQL
in the supported dialect, and re-parsing the rendered text yields an
equivalent IR (asserted for the 13 SSB queries and for fuzzed queries in
``tests/sql/test_render.py``).  Useful for logging, EXPLAIN headers, and
the shell.
"""

from __future__ import annotations

from typing import Dict, List, Union

from ..errors import SqlError
from ..plan.logical import (
    AggExpr,
    BinOp,
    ColumnRef,
    Comparison,
    Expr,
    InSet,
    Literal,
    Predicate,
    RangePredicate,
    StarQuery,
)


def _literal(value: Union[int, str]) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


def _expr(expr: Expr) -> str:
    if isinstance(expr, ColumnRef):
        return f"{expr.table}.{expr.column}"
    if isinstance(expr, Literal):
        return str(expr.value)
    if isinstance(expr, BinOp):
        return f"({_expr(expr.left)} {expr.op} {_expr(expr.right)})"
    raise SqlError(f"cannot render expression {expr!r}")


def _predicate(pred: Predicate) -> str:
    ref = f"{pred.table}.{pred.column}"
    if isinstance(pred, Comparison):
        return f"{ref} {pred.op.value} {_literal(pred.value)}"
    if isinstance(pred, RangePredicate):
        return f"{ref} BETWEEN {_literal(pred.low)} AND {_literal(pred.high)}"
    if isinstance(pred, InSet):
        inner = ", ".join(_literal(v) for v in pred.values)
        return f"{ref} IN ({inner})"
    raise SqlError(f"cannot render predicate {pred!r}")


def render(query: StarQuery) -> str:
    """SQL text for ``query`` in the supported dialect."""
    select: List[str] = []
    for g in query.group_by:
        select.append(f"{g.table}.{g.column}")
    for agg in query.aggregates:
        select.append(f"{agg.func}({_expr(agg.expr)}) AS {agg.alias}")

    tables = [query.fact_table] + sorted(set(query.joins.values()))

    conditions: List[str] = []
    for fk, dim in sorted(query.joins.items()):
        conditions.append(
            f"{query.fact_table}.{fk} = {dim}.{query.key_of(dim)}")
    conditions.extend(_predicate(p) for p in query.predicates)

    parts = [
        "SELECT " + ", ".join(select),
        "FROM " + ", ".join(tables),
    ]
    if conditions:
        parts.append("WHERE " + "\n  AND ".join(conditions))
    if query.group_by:
        parts.append("GROUP BY " + ", ".join(
            f"{g.table}.{g.column}" for g in query.group_by))
    if query.order_by:
        parts.append("ORDER BY " + ", ".join(
            f"{k.key} {'ASC' if k.ascending else 'DESC'}"
            for k in query.order_by))
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    return "\n".join(parts)


__all__ = ["render"]
