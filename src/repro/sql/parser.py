"""Recursive-descent parser for the SSB SQL subset.

Grammar (conjunctive WHERE only — the whole benchmark needs nothing
more; OR/NOT are lexed so they produce a clear error rather than a
confusing one):

    statement  := select | insert | delete
    select     := SELECT item (',' item)*
                  FROM table_ref (',' table_ref)*
                  [WHERE condition (AND condition)*]
                  [GROUP BY ident (',' ident)*]
                  [ORDER BY order_key (',' order_key)*]
                  [LIMIT number] [';']
    insert     := INSERT INTO ident '(' ident (',' ident)* ')'
                  VALUES row (',' row)* [';']
    row        := '(' literal (',' literal)* ')'
    delete     := DELETE FROM ident
                  [WHERE condition (AND condition)*] [';']
    item       := (SUM|COUNT|MIN|MAX|AVG) '(' (expr|'*') ')' [AS ident]
                | expr [AS ident]
    expr       := term (('+'|'-') term)*
    term       := factor ('*' factor)*
    factor     := literal | qualified_ident | '(' expr ')'
    condition  := operand BETWEEN literal AND literal
                | operand IN '(' literal (',' literal)* ')'
                | operand ('='|'<'|'<='|'>'|'>=') operand
    order_key  := ident [ASC|DESC]
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import SqlParseError
from . import ast
from .lexer import Token, TokenKind, tokenize


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------ #
    # token plumbing
    # ------------------------------------------------------------------ #
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect_keyword(self, word: str) -> Token:
        token = self.advance()
        if not token.is_keyword(word):
            raise SqlParseError(
                f"expected {word}, got {token.text!r} at offset "
                f"{token.position}"
            )
        return token

    def expect_symbol(self, symbol: str) -> Token:
        token = self.advance()
        if not token.is_symbol(symbol):
            raise SqlParseError(
                f"expected {symbol!r}, got {token.text!r} at offset "
                f"{token.position}"
            )
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    def accept_symbol(self, symbol: str) -> bool:
        if self.peek().is_symbol(symbol):
            self.advance()
            return True
        return False

    # ------------------------------------------------------------------ #
    # grammar
    # ------------------------------------------------------------------ #
    def parse_statement(self) -> ast.Statement:
        token = self.peek()
        if token.is_keyword("INSERT"):
            return self.parse_insert()
        if token.is_keyword("DELETE"):
            return self.parse_delete()
        return self.parse_select()

    def _finish(self) -> None:
        self.accept_symbol(";")
        tail = self.peek()
        if tail.kind is not TokenKind.EOF:
            raise SqlParseError(
                f"unexpected trailing input {tail.text!r} at offset "
                f"{tail.position}"
            )

    def parse_insert(self) -> ast.InsertStatement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.advance()
        if table.kind is not TokenKind.IDENT:
            raise SqlParseError(f"expected table name, got {table.text!r}")
        self.expect_symbol("(")
        columns = [self._plain_ident()]
        while self.accept_symbol(","):
            columns.append(self._plain_ident())
        self.expect_symbol(")")
        self.expect_keyword("VALUES")
        rows = [self._parse_value_row(len(columns))]
        while self.accept_symbol(","):
            rows.append(self._parse_value_row(len(columns)))
        self._finish()
        return ast.InsertStatement(table.text, tuple(columns), tuple(rows))

    def _plain_ident(self) -> str:
        token = self.advance()
        if token.kind is not TokenKind.IDENT:
            raise SqlParseError(
                f"expected column name, got {token.text!r} at offset "
                f"{token.position}"
            )
        return token.text

    def _parse_value_row(self, width: int) -> tuple:
        self.expect_symbol("(")
        values = [self._parse_literal()]
        while self.accept_symbol(","):
            values.append(self._parse_literal())
        self.expect_symbol(")")
        if len(values) != width:
            raise SqlParseError(
                f"VALUES row has {len(values)} value(s) for {width} "
                f"column(s)"
            )
        return tuple(values)

    def _parse_literal(self) -> ast.SqlExpr:
        negative = self.accept_symbol("-")
        token = self.advance()
        if token.kind is TokenKind.NUMBER:
            value = int(token.text)
            return ast.NumberLit(-value if negative else value)
        if token.kind is TokenKind.STRING and not negative:
            return ast.StringLit(token.text)
        raise SqlParseError(
            f"expected a literal, got {token.text!r} at offset "
            f"{token.position}"
        )

    def parse_delete(self) -> ast.DeleteStatement:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.advance()
        if table.kind is not TokenKind.IDENT:
            raise SqlParseError(f"expected table name, got {table.text!r}")
        conditions: List[ast.Condition] = []
        if self.accept_keyword("WHERE"):
            conditions.append(self.parse_condition())
            while True:
                if self.accept_keyword("AND"):
                    conditions.append(self.parse_condition())
                    continue
                if self.peek().is_keyword("OR") or self.peek().is_keyword(
                        "NOT"):
                    raise SqlParseError(
                        "only conjunctive (AND) predicates are supported"
                    )
                break
        self._finish()
        return ast.DeleteStatement(table.text, tuple(conditions))

    def parse_select(self) -> ast.SelectStatement:
        self.expect_keyword("SELECT")
        items = [self.parse_item()]
        while self.accept_symbol(","):
            items.append(self.parse_item())
        self.expect_keyword("FROM")
        tables = [self.parse_table_ref()]
        while self.accept_symbol(","):
            tables.append(self.parse_table_ref())
        conditions: List[ast.Condition] = []
        if self.accept_keyword("WHERE"):
            conditions.append(self.parse_condition())
            while True:
                if self.accept_keyword("AND"):
                    conditions.append(self.parse_condition())
                    continue
                if self.peek().is_keyword("OR") or self.peek().is_keyword(
                        "NOT"):
                    raise SqlParseError(
                        "only conjunctive (AND) predicates are supported"
                    )
                break
        group_by: List[ast.Ident] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_qualified_ident())
            while self.accept_symbol(","):
                group_by.append(self.parse_qualified_ident())
        order_by: List[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.parse_order_key())
            while self.accept_symbol(","):
                order_by.append(self.parse_order_key())
        limit: Optional[int] = None
        if self.accept_keyword("LIMIT"):
            negative = self.accept_symbol("-")
            number = self.advance()
            if number.kind is not TokenKind.NUMBER:
                raise SqlParseError(
                    f"expected a number after LIMIT, got {number.text!r}"
                )
            limit = -int(number.text) if negative else int(number.text)
            if limit <= 0:
                raise SqlParseError(
                    f"LIMIT must be a positive integer, got {limit}"
                )
        self.accept_symbol(";")
        tail = self.peek()
        if tail.kind is not TokenKind.EOF:
            raise SqlParseError(
                f"unexpected trailing input {tail.text!r} at offset "
                f"{tail.position}"
            )
        return ast.SelectStatement(
            items=tuple(items),
            tables=tuple(tables),
            conditions=tuple(conditions),
            group_by=tuple(group_by),
            order_by=tuple(order_by),
            limit=limit,
        )

    def parse_item(self) -> ast.SelectItem:
        token = self.peek()
        aggregate: Optional[str] = None
        if token.kind is TokenKind.KEYWORD and token.text in (
                "SUM", "COUNT", "MIN", "MAX", "AVG"):
            aggregate = self.advance().text.lower()
            self.expect_symbol("(")
            if aggregate == "count" and self.accept_symbol("*"):
                expr = ast.NumberLit(1)  # COUNT(*) counts rows
            else:
                expr = self.parse_expr()
            self.expect_symbol(")")
        else:
            expr = self.parse_expr()
        alias: Optional[str] = None
        if self.accept_keyword("AS"):
            alias_token = self.advance()
            if alias_token.kind is not TokenKind.IDENT:
                raise SqlParseError(
                    f"expected alias after AS, got {alias_token.text!r}"
                )
            alias = alias_token.text
        return ast.SelectItem(expr, aggregate, alias)

    def parse_table_ref(self) -> ast.TableRef:
        name = self.advance()
        if name.kind is not TokenKind.IDENT:
            raise SqlParseError(f"expected table name, got {name.text!r}")
        alias: Optional[str] = None
        if self.accept_keyword("AS"):
            alias_token = self.advance()
            if alias_token.kind is not TokenKind.IDENT:
                raise SqlParseError(
                    f"expected alias after AS, got {alias_token.text!r}"
                )
            alias = alias_token.text
        elif self.peek().kind is TokenKind.IDENT:
            alias = self.advance().text
        return ast.TableRef(name.text, alias)

    def parse_expr(self) -> ast.SqlExpr:
        left = self.parse_term()
        while self.peek().is_symbol("+") or self.peek().is_symbol("-"):
            op = self.advance().text
            right = self.parse_term()
            left = ast.Arith(op, left, right)
        return left

    def parse_term(self) -> ast.SqlExpr:
        left = self.parse_factor()
        while self.peek().is_symbol("*"):
            self.advance()
            right = self.parse_factor()
            left = ast.Arith("*", left, right)
        return left

    def parse_factor(self) -> ast.SqlExpr:
        token = self.peek()
        if token.is_symbol("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_symbol(")")
            return inner
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return ast.NumberLit(int(token.text))
        if token.kind is TokenKind.STRING:
            self.advance()
            return ast.StringLit(token.text)
        if token.kind is TokenKind.IDENT:
            return self.parse_qualified_ident()
        raise SqlParseError(
            f"expected expression, got {token.text!r} at offset "
            f"{token.position}"
        )

    def parse_qualified_ident(self) -> ast.Ident:
        first = self.advance()
        if first.kind is not TokenKind.IDENT:
            raise SqlParseError(
                f"expected identifier, got {first.text!r} at offset "
                f"{first.position}"
            )
        if self.accept_symbol("."):
            second = self.advance()
            if second.kind is not TokenKind.IDENT:
                raise SqlParseError(
                    f"expected identifier after '.', got {second.text!r}"
                )
            return ast.Ident(first.text, second.text)
        return ast.Ident(None, first.text)

    def parse_condition(self) -> ast.Condition:
        left = self.parse_expr()
        token = self.peek()
        if token.is_keyword("BETWEEN"):
            if not isinstance(left, ast.Ident):
                raise SqlParseError("BETWEEN requires a column on the left")
            self.advance()
            low = self.parse_expr()
            self.expect_keyword("AND")
            high = self.parse_expr()
            return ast.BetweenCond(left, low, high)
        if token.is_keyword("IN"):
            if not isinstance(left, ast.Ident):
                raise SqlParseError("IN requires a column on the left")
            self.advance()
            self.expect_symbol("(")
            values = [self.parse_expr()]
            while self.accept_symbol(","):
                values.append(self.parse_expr())
            self.expect_symbol(")")
            return ast.InCond(left, tuple(values))
        if token.kind is TokenKind.SYMBOL and token.text in (
                "=", "<", "<=", ">", ">="):
            op = self.advance().text
            right = self.parse_expr()
            return ast.ComparisonCond(op, left, right)
        raise SqlParseError(
            f"expected predicate operator, got {token.text!r} at offset "
            f"{token.position}"
        )

    def parse_order_key(self) -> ast.OrderItem:
        key = self.parse_qualified_ident()
        ascending = True
        if self.accept_keyword("ASC"):
            ascending = True
        elif self.accept_keyword("DESC"):
            ascending = False
        return ast.OrderItem(key, ascending)


def parse(sql: str) -> ast.SelectStatement:
    """Parse one SELECT statement."""
    return _Parser(tokenize(sql)).parse_select()


def parse_statement(sql: str) -> ast.Statement:
    """Parse one statement: SELECT, INSERT, or DELETE."""
    return _Parser(tokenize(sql)).parse_statement()


__all__ = ["parse", "parse_statement"]
