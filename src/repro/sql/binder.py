"""Binding: parsed SQL -> StarQuery against the SSB catalog.

The binder resolves aliases, classifies WHERE conjuncts into join
equalities versus predicates, checks every column against the schemas,
and emits the same IR the hand-built queries use.  Star-shape rules are
enforced: exactly one fact table, joins only between a fact FK and a
dimension key, aggregates only over fact columns, plain select items
must appear in GROUP BY.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..errors import SqlBindError
from ..plan.logical import (
    AggExpr,
    BinOp,
    ColumnRef,
    CompareOp,
    Comparison,
    Expr,
    InSet,
    Literal,
    OrderKey,
    Predicate,
    StarQuery,
    RangePredicate,
)
from ..ssb.schema import SCHEMAS
from ..types import Schema
from . import ast
from .parser import parse

_OP_MAP = {
    "=": CompareOp.EQ,
    "<": CompareOp.LT,
    "<=": CompareOp.LE,
    ">": CompareOp.GT,
    ">=": CompareOp.GE,
}


class _Scope:
    """Alias resolution against a catalog of schemas."""

    def __init__(self, tables: Sequence[ast.TableRef],
                 schemas: Dict[str, Schema]) -> None:
        self.schemas = schemas
        self.alias_to_table: Dict[str, str] = {}
        self.tables: List[str] = []
        for ref in tables:
            if ref.name not in schemas:
                raise SqlBindError(f"unknown table {ref.name!r}")
            if ref.name in self.tables:
                raise SqlBindError(f"table {ref.name!r} listed twice")
            self.tables.append(ref.name)
            self.alias_to_table[ref.name] = ref.name
            if ref.alias:
                if ref.alias in self.alias_to_table:
                    raise SqlBindError(f"duplicate alias {ref.alias!r}")
                self.alias_to_table[ref.alias] = ref.name

    def resolve(self, ident: ast.Ident) -> ColumnRef:
        if ident.qualifier is not None:
            table = self.alias_to_table.get(ident.qualifier)
            if table is None:
                raise SqlBindError(
                    f"unknown table alias {ident.qualifier!r} in {ident}"
                )
            if ident.name not in self.schemas[table]:
                raise SqlBindError(
                    f"table {table!r} has no column {ident.name!r}"
                )
            return ColumnRef(table, ident.name)
        owners = [t for t in self.tables if ident.name in self.schemas[t]]
        if not owners:
            raise SqlBindError(f"unknown column {ident.name!r}")
        if len(owners) > 1:
            raise SqlBindError(
                f"ambiguous column {ident.name!r}: in tables {owners}"
            )
        return ColumnRef(owners[0], ident.name)


def _literal_value(expr: ast.SqlExpr) -> Union[int, str]:
    if isinstance(expr, ast.NumberLit):
        return expr.value
    if isinstance(expr, ast.StringLit):
        return expr.value
    raise SqlBindError(f"expected a literal, got {expr!r}")


def _bind_expr(expr: ast.SqlExpr, scope: _Scope, fact: str) -> Expr:
    if isinstance(expr, ast.Ident):
        ref = scope.resolve(expr)
        if ref.table != fact:
            raise SqlBindError(
                f"aggregate expressions may only use fact columns; "
                f"{ref} is from {ref.table!r}"
            )
        return ref
    if isinstance(expr, ast.NumberLit):
        return Literal(expr.value)
    if isinstance(expr, ast.StringLit):
        raise SqlBindError("string literals are not allowed in arithmetic")
    if isinstance(expr, ast.Arith):
        return BinOp(expr.op, _bind_expr(expr.left, scope, fact),
                     _bind_expr(expr.right, scope, fact))
    raise SqlBindError(f"unsupported expression {expr!r}")


def _pick_fact_table(scope: _Scope) -> str:
    if len(scope.tables) == 1:
        return scope.tables[0]
    candidates = [t for t in scope.tables if t == "lineorder"
                  or t.startswith("lineorder")]
    if len(candidates) != 1:
        raise SqlBindError(
            f"cannot identify the fact table among {scope.tables}"
        )
    return candidates[0]


def bind(statement: ast.SelectStatement,
         schemas: Optional[Dict[str, Schema]] = None,
         name: str = "query") -> StarQuery:
    """Bind a parsed statement into a :class:`StarQuery`."""
    catalog = dict(SCHEMAS) if schemas is None else schemas
    scope = _Scope(statement.tables, catalog)
    fact = _pick_fact_table(scope)

    joins: Dict[str, str] = {}
    dim_keys: Dict[str, str] = {}
    predicates: List[Predicate] = []
    for cond in statement.conditions:
        bound = _bind_condition(cond, scope, fact, joins, dim_keys)
        if bound is not None:
            predicates.append(bound)

    group_by = tuple(scope.resolve(g) for g in statement.group_by)
    group_names = {g.column for g in group_by}

    aggregates: List[AggExpr] = []
    for i, item in enumerate(statement.items):
        if item.aggregate is not None:
            expr = _bind_expr(item.expr, scope, fact)
            alias = item.alias or f"{item.aggregate}_{i}"
            aggregates.append(AggExpr(item.aggregate, expr, alias))
        else:
            if not isinstance(item.expr, ast.Ident):
                raise SqlBindError(
                    "non-aggregate select items must be plain columns"
                )
            ref = scope.resolve(item.expr)
            if ref.column not in group_names:
                raise SqlBindError(
                    f"select column {ref} must appear in GROUP BY"
                )
    if not aggregates:
        raise SqlBindError("at least one aggregate output is required")

    agg_aliases = {a.alias for a in aggregates}
    order_by: List[OrderKey] = []
    for item in statement.order_by:
        key = item.key.name
        if key not in group_names and key not in agg_aliases:
            raise SqlBindError(
                f"ORDER BY key {key!r} is neither a group column nor an "
                f"aggregate alias"
            )
        order_by.append(OrderKey(key, item.ascending))

    return StarQuery(
        name=name,
        fact_table=fact,
        joins=joins,
        predicates=tuple(predicates),
        group_by=group_by,
        aggregates=tuple(aggregates),
        order_by=tuple(order_by),
        dim_keys=dim_keys,
        limit=statement.limit,
    )


def _bind_condition(
    cond: ast.Condition,
    scope: _Scope,
    fact: str,
    joins: Dict[str, str],
    dim_keys: Dict[str, str],
) -> Optional[Predicate]:
    """Classify one conjunct: join equality (returns None, fills joins)
    or predicate (returned)."""
    if isinstance(cond, ast.BetweenCond):
        ref = scope.resolve(cond.column)
        return RangePredicate(ref, _literal_value(cond.low),
                              _literal_value(cond.high))
    if isinstance(cond, ast.InCond):
        ref = scope.resolve(cond.column)
        return InSet(ref, tuple(_literal_value(v) for v in cond.values))
    if not isinstance(cond, ast.ComparisonCond):  # pragma: no cover
        raise SqlBindError(f"unsupported condition {cond!r}")

    left_is_col = isinstance(cond.left, ast.Ident)
    right_is_col = isinstance(cond.right, ast.Ident)
    if left_is_col and right_is_col:
        if cond.op != "=":
            raise SqlBindError(
                f"column-to-column conditions must be equijoins, got "
                f"{cond.op!r}"
            )
        a = scope.resolve(cond.left)
        b = scope.resolve(cond.right)
        if a.table == fact and b.table != fact:
            fk, dim_ref = a, b
        elif b.table == fact and a.table != fact:
            fk, dim_ref = b, a
        else:
            raise SqlBindError(
                f"join {a} = {b} does not connect the fact table to a "
                f"dimension"
            )
        existing = joins.get(fk.column)
        if existing is not None and existing != dim_ref.table:
            raise SqlBindError(
                f"foreign key {fk.column!r} joined to two dimensions"
            )
        joins[fk.column] = dim_ref.table
        if dim_ref.column != fk.column:
            dim_keys[dim_ref.table] = dim_ref.column
        return None
    if left_is_col:
        ref = scope.resolve(cond.left)
        return Comparison(ref, _OP_MAP[cond.op], _literal_value(cond.right))
    if right_is_col:
        ref = scope.resolve(cond.right)
        return Comparison(ref, _OP_MAP[cond.op].flip(),
                          _literal_value(cond.left))
    raise SqlBindError("conditions between two literals are not supported")


def parse_query(sql: str, name: str = "query",
                schemas: Optional[Dict[str, Schema]] = None) -> StarQuery:
    """Parse + bind in one call."""
    return bind(parse(sql), schemas=schemas, name=name)


# --------------------------------------------------------------------- #
# DML
# --------------------------------------------------------------------- #
def bind_insert(statement: ast.InsertStatement,
                schemas: Optional[Dict[str, Schema]] = None):
    """Bind an INSERT into ``(table, rows)`` where each row is the
    column->value dict :meth:`repro.write.WriteStore.insert` accepts.

    Every named column is checked against the schema and every literal
    against its column's type (ints for integer columns, strings for
    string columns); missing/extra columns are left to the write store's
    own row validation, which has the authoritative error messages.
    """
    catalog = dict(SCHEMAS) if schemas is None else schemas
    schema = catalog.get(statement.table)
    if schema is None:
        raise SqlBindError(f"unknown table {statement.table!r}")
    types = {f.name: f.ctype for f in schema}
    seen = set()
    for column in statement.columns:
        if column not in types:
            raise SqlBindError(
                f"table {statement.table!r} has no column {column!r}"
            )
        if column in seen:
            raise SqlBindError(f"column {column!r} listed twice")
        seen.add(column)
    rows = []
    for row in statement.rows:
        bound = {}
        for column, expr in zip(statement.columns, row):
            value = _literal_value(expr)
            ctype = types[column]
            if ctype.is_string != isinstance(value, str):
                want = "a string" if ctype.is_string else "an integer"
                raise SqlBindError(
                    f"column {statement.table}.{column} needs {want}, "
                    f"got {value!r}"
                )
            bound[column] = value
        rows.append(bound)
    return statement.table, rows


def bind_delete(statement: ast.DeleteStatement,
                schemas: Optional[Dict[str, Schema]] = None):
    """Bind a DELETE into ``(table, predicates)`` for
    :meth:`repro.write.WriteStore.delete` (single-table conjunctive
    WHERE; column-to-column conditions are rejected)."""
    catalog = dict(SCHEMAS) if schemas is None else schemas
    if statement.table not in catalog:
        raise SqlBindError(f"unknown table {statement.table!r}")
    scope = _Scope((ast.TableRef(statement.table, None),), catalog)
    predicates: List[Predicate] = []
    for cond in statement.conditions:
        bound = _bind_condition(cond, scope, statement.table, {}, {})
        if bound is None:
            raise SqlBindError(
                "DELETE predicates must compare a column to a literal"
            )
        predicates.append(bound)
    return statement.table, predicates


__all__ = ["bind", "parse_query", "bind_insert", "bind_delete"]
