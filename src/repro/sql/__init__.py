"""A SQL frontend for the SSB dialect.

Parses the subset of SQL the Star Schema Benchmark uses — single
SELECT, inner joins expressed as WHERE equalities, conjunctive
predicates (comparison / BETWEEN / IN), SUM aggregates over arithmetic
expressions, GROUP BY and ORDER BY — and binds it against the SSB
catalog into the same :class:`~repro.plan.logical.StarQuery` IR the
hand-built queries use.  Tests assert that parsing the paper's SQL text
yields exactly the hand-built IR, so the two encodings validate each
other.

>>> from repro.sql import parse_query
>>> q = parse_query("SELECT sum(lo.revenue) AS revenue FROM lineorder AS lo")
"""

from .parser import parse, parse_statement
from .binder import bind, bind_delete, bind_insert, parse_query
from .render import render

__all__ = ["parse", "parse_statement", "bind", "bind_insert",
           "bind_delete", "parse_query", "render"]
