"""Tokenizer for the SSB SQL subset.

Hand-rolled single-pass scanner.  Keywords are case-insensitive and
reported upper-case; identifiers preserve case; string literals use
single quotes with ``''`` as the escape; numbers are integers (the SSB
dialect needs nothing else).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from ..errors import SqlLexError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "AS", "AND",
    "BETWEEN", "IN", "SUM", "COUNT", "MIN", "MAX", "AVG", "ASC", "DESC",
    "OR", "NOT", "LIMIT", "INSERT", "INTO", "VALUES", "DELETE",
}


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def is_symbol(self, symbol: str) -> bool:
        return self.kind is TokenKind.SYMBOL and self.text == symbol


_SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".",
            "*", "+", "-", ";")


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; raises :class:`SqlLexError` on bad input."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i:i + 2] == "--":
            newline = text.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch == "'":
            j = i + 1
            parts: List[str] = []
            while True:
                if j >= n:
                    raise SqlLexError("unterminated string literal", i)
                if text[j] == "'":
                    if text[j:j + 2] == "''":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token(TokenKind.STRING, "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(Token(TokenKind.NUMBER, text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenKind.IDENT, word, i))
            i = j
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, i):
                tokens.append(Token(TokenKind.SYMBOL, symbol, i))
                i += len(symbol)
                break
        else:
            raise SqlLexError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens


__all__ = ["tokenize", "Token", "TokenKind", "KEYWORDS"]
