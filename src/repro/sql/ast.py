"""Abstract syntax for the SSB SQL subset (parser output, binder input)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


@dataclass(frozen=True)
class Ident:
    """A possibly-qualified identifier: ``lo.revenue`` or ``revenue``."""

    qualifier: Optional[str]
    name: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class NumberLit:
    value: int


@dataclass(frozen=True)
class StringLit:
    value: str


@dataclass(frozen=True)
class Arith:
    """Binary arithmetic in a select expression."""

    op: str
    left: "SqlExpr"
    right: "SqlExpr"


SqlExpr = Union[Ident, NumberLit, StringLit, Arith]


@dataclass(frozen=True)
class SelectItem:
    """One output column: an aggregate call or a plain column."""

    expr: SqlExpr
    aggregate: Optional[str]  # "sum" / "count" / None
    alias: Optional[str]


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str]


@dataclass(frozen=True)
class ComparisonCond:
    """``left <op> right`` where either side is a column or literal."""

    op: str
    left: SqlExpr
    right: SqlExpr


@dataclass(frozen=True)
class BetweenCond:
    column: Ident
    low: SqlExpr
    high: SqlExpr


@dataclass(frozen=True)
class InCond:
    column: Ident
    values: Tuple[SqlExpr, ...]


Condition = Union[ComparisonCond, BetweenCond, InCond]


@dataclass(frozen=True)
class OrderItem:
    key: Ident
    ascending: bool


@dataclass(frozen=True)
class SelectStatement:
    """One parsed SELECT."""

    items: Tuple[SelectItem, ...]
    tables: Tuple[TableRef, ...]
    conditions: Tuple[Condition, ...]
    group_by: Tuple[Ident, ...]
    order_by: Tuple[OrderItem, ...]
    limit: Optional[int] = None


@dataclass(frozen=True)
class InsertStatement:
    """``INSERT INTO table (cols...) VALUES (...), (...)``."""

    table: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[SqlExpr, ...], ...]


@dataclass(frozen=True)
class DeleteStatement:
    """``DELETE FROM table WHERE ...`` (conjunctive, single table)."""

    table: str
    conditions: Tuple[Condition, ...]


Statement = Union[SelectStatement, InsertStatement, DeleteStatement]


__all__ = [
    "Ident",
    "NumberLit",
    "StringLit",
    "Arith",
    "SqlExpr",
    "SelectItem",
    "TableRef",
    "ComparisonCond",
    "BetweenCond",
    "InCond",
    "Condition",
    "OrderItem",
    "SelectStatement",
    "InsertStatement",
    "DeleteStatement",
    "Statement",
]
