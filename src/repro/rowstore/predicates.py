"""Predicate compilation for the row-store executor.

Row batches carry raw stored values (integers, or null-padded ``S<n>``
bytes for CHAR fields), so predicates compare against encoded literals.
The compiled closure also charges the ledger for the tuple-at-a-time work
a row store performs: one attribute extraction per tuple, plus a scalar
comparison whose cost scales with the value width in 4-byte words (a
12-byte CHAR costs three times an int32 — the effect Figure 8's
uncompressed pre-join case hinges on).
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

from ..errors import ExecutionError, TypeMismatchError
from ..plan.logical import (
    CompareOp,
    Comparison,
    InSet,
    Predicate,
    RangePredicate,
    Value,
)
from ..simio.stats import QueryStats

#: A compiled predicate: (values, stats) -> boolean mask.
CompiledPredicate = Callable[[np.ndarray, QueryStats], np.ndarray]


def encode_literal(value: Value, dtype: np.dtype) -> Union[int, bytes]:
    """Encode a query literal for comparison against stored values."""
    if dtype.kind == "S":
        if not isinstance(value, str):
            raise TypeMismatchError(
                f"integer literal {value!r} against CHAR column"
            )
        raw = value.encode("ascii")
        if len(raw) > dtype.itemsize:
            raise TypeMismatchError(
                f"literal {value!r} exceeds CHAR({dtype.itemsize})"
            )
        return raw
    if isinstance(value, str):
        raise TypeMismatchError(
            f"string literal {value!r} against integer column"
        )
    return int(value)


def _width_words(dtype: np.dtype) -> int:
    return max(1, dtype.itemsize // 4)


def compile_predicate(pred: Predicate, dtype: np.dtype) -> CompiledPredicate:
    """Compile one IR predicate for values of ``dtype``."""
    words = _width_words(dtype)

    if isinstance(pred, Comparison):
        literal = encode_literal(pred.value, dtype)
        op = pred.op

        def run_cmp(values: np.ndarray, stats: QueryStats) -> np.ndarray:
            n = len(values)
            stats.attr_extractions += n
            stats.values_scanned_scalar += n * words
            if op is CompareOp.EQ:
                return values == literal
            if op is CompareOp.LT:
                return values < literal
            if op is CompareOp.LE:
                return values <= literal
            if op is CompareOp.GT:
                return values > literal
            return values >= literal

        return run_cmp

    if isinstance(pred, RangePredicate):
        low = encode_literal(pred.low, dtype)
        high = encode_literal(pred.high, dtype)

        def run_range(values: np.ndarray, stats: QueryStats) -> np.ndarray:
            n = len(values)
            stats.attr_extractions += n
            # a BETWEEN is two comparisons per tuple
            stats.values_scanned_scalar += 2 * n * words
            return (values >= low) & (values <= high)

        return run_range

    if isinstance(pred, InSet):
        literals = [encode_literal(v, dtype) for v in pred.values]
        if dtype.kind == "S":
            needles = np.asarray(literals, dtype=dtype)
        else:
            needles = np.asarray(literals, dtype=dtype)

        def run_in(values: np.ndarray, stats: QueryStats) -> np.ndarray:
            n = len(values)
            stats.attr_extractions += n
            stats.values_scanned_scalar += n * words * max(1, len(needles))
            return np.isin(values, needles)

        return run_in

    raise ExecutionError(f"unknown predicate type {type(pred).__name__}")


__all__ = ["compile_predicate", "encode_literal", "CompiledPredicate"]
