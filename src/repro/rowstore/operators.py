"""Volcano-style row operators.

Every operator consumes and produces :class:`RowBatch` streams.  Batches
exist for wall-clock speed only; the ledger charges what a
tuple-at-a-time engine does — per-tuple iterator calls, per-tuple
attribute extractions, per-tuple hash probes (Section 5.3: "1-2 function
calls to extract needed data from a tuple for each operation").

Column naming: scans qualify output columns as ``table.column``; joins
merge the probe batch with the build side's payload columns, so
downstream operators address any column unambiguously.

Hash joins honour a memory budget.  When the build side exceeds it, the
join Grace-partitions: both inputs are physically written to scratch disk
files and read back, charging honest spill I/O — the mechanism behind
the paper's "giant hash joins" in index-only plans (Section 6.2.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError
from ..plan.logical import (
    BinOp,
    ColumnRef,
    Expr,
    Literal,
    Predicate,
)
from ..result import ResultSet, Row
from ..simio.buffer_pool import BufferPool
from ..simio.disk import PAGE_SIZE, SimulatedDisk
from ..simio.stats import QueryStats
from ..storage.heapfile import HeapFile
from ..synopsis import heap_page_mask, load_heap_synopsis, mask_runs
from .btree import BPlusTree
from .predicates import compile_predicate


@dataclass
class RowBatch:
    """A chunk of tuples, held column-wise for vectorized transport.

    ``num_rows`` is explicit because a plan may carry *no* columns at
    all — a bare ``count(*)`` extracts nothing — and the dict cannot
    speak for the tuple count then.
    """

    columns: Dict[str, np.ndarray]
    num_rows: Optional[int] = None

    def __post_init__(self) -> None:
        lengths = {len(v) for v in self.columns.values()}
        if len(lengths) > 1:
            raise ExecutionError(f"ragged row batch: lengths {lengths}")
        if lengths:
            (derived,) = lengths
            if self.num_rows is None:
                self.num_rows = derived
            elif self.num_rows != derived:
                raise ExecutionError(
                    f"row batch claims {self.num_rows} row(s) but its "
                    f"columns hold {derived}")
        elif self.num_rows is None:
            self.num_rows = 0

    def __len__(self) -> int:
        return self.num_rows

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise ExecutionError(
                f"batch has no column {name!r}; has {sorted(self.columns)}"
            ) from None

    def take(self, selector: np.ndarray) -> "RowBatch":
        taken = {k: v[selector] for k, v in self.columns.items()}
        if taken:
            return RowBatch(taken)
        kept = (int(np.count_nonzero(selector))
                if selector.dtype == np.bool_ else len(selector))
        return RowBatch(taken, kept)

    def with_columns(self, extra: Dict[str, np.ndarray]) -> "RowBatch":
        merged = dict(self.columns)
        merged.update(extra)
        return RowBatch(merged, self.num_rows)


BatchStream = Iterable[RowBatch]


def qualified(table: str, column: str) -> str:
    """The qualified column name used in batches."""
    return f"{table}.{column}"


# --------------------------------------------------------------------- #
# scans
# --------------------------------------------------------------------- #
def _scan_record_pages(
    heap: HeapFile,
    pool: BufferPool,
    predicates: Sequence[Predicate],
    zone_maps: bool,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(page_no, record batch)`` for every page a scan must read.

    With zone maps on, the heap's sidecar synopsis is consulted first and
    pages whose per-column min/max cannot satisfy the conjunction of
    ``predicates`` are never requested from the buffer pool.  Each page
    examined charges one ``synopsis_probes`` tick; when nothing can be
    skipped (or the synopsis is missing/corrupt) the scan degenerates to
    the plain full sweep, byte-for-byte.
    """
    stats = pool.stats
    if zone_maps and predicates:
        synopsis = load_heap_synopsis(heap)
        if synopsis is not None:
            mask = heap_page_mask(synopsis, predicates)
            stats.synopsis_probes += int(mask.size)
            skipped = int(mask.size - mask.sum())
            if skipped:
                stats.blocks_skipped += skipped
                for first, last in mask_runs(mask):
                    page_no = first
                    for payload in pool.scan_pages(heap.name, first,
                                                   last + 1):
                        yield page_no, heap.fmt.parse_page(payload)
                        page_no += 1
                return
    for page_no, payload in enumerate(pool.scan_pages(heap.name)):
        yield page_no, heap.fmt.parse_page(payload)


def seq_scan(
    heap: HeapFile,
    pool: BufferPool,
    table: str,
    out_columns: Sequence[str],
    predicates: Sequence[Predicate] = (),
    rid_column: Optional[str] = None,
    rid_base: int = 0,
    zone_maps: bool = False,
    live_mask: Optional[np.ndarray] = None,
) -> Iterator[RowBatch]:
    """Sequential heap scan with pushed-down predicates.

    Charges one iterator call per scanned tuple, one attribute extraction
    per predicate/output column access per surviving tuple.  ``rid_column``
    optionally emits record ids (used by designs that join on position).
    ``zone_maps`` prunes whole pages via the heap's synopsis sidecar;
    skipped pages charge no I/O and no per-tuple work.  ``live_mask``
    (indexed by local heap position, i.e. without ``rid_base``) hides
    snapshot-deleted tuples before any predicate runs.
    """
    stats = pool.stats
    compiled = [
        (p.column, compile_predicate(p, heap.fmt.dtype[p.column]))
        for p in predicates
    ]
    record_width = heap.fmt.record_width
    rows_per_page = heap.fmt.rows_per_page
    for page_no, records in _scan_record_pages(heap, pool, predicates,
                                               zone_maps):
        n = len(records)
        # only the final page is partial, so rids are page arithmetic
        base = rid_base + page_no * rows_per_page
        stats.iterator_calls += n
        # parsing/copying each tuple costs time proportional to its width
        stats.tuple_bytes_scanned += n * record_width
        mask: Optional[np.ndarray] = None
        if live_mask is not None:
            local = page_no * rows_per_page
            stats.position_ops += n
            mask = live_mask[local:local + n].copy()
        alive = n
        for column, pred in compiled:
            if mask is None:
                verdict = pred(records[column], stats)
                mask = verdict
            else:
                # a row-store evaluates the next predicate only on tuples
                # that survived the previous one
                survivors = records[column][mask]
                verdict = pred(survivors, stats)
                mask = mask.copy()
                mask[np.flatnonzero(mask)[~verdict]] = False
        if mask is None:
            selected = records
            sel_idx = None
        else:
            sel_idx = np.flatnonzero(mask)
            selected = records[sel_idx]
        out = {
            qualified(table, c): np.ascontiguousarray(selected[c])
            for c in out_columns
        }
        if rid_column is not None:
            rids = np.arange(base, base + n, dtype=np.int64)
            out[rid_column] = rids if sel_idx is None else rids[sel_idx]
        yield RowBatch(out, len(selected))


def super_tuple_scan(
    heap: HeapFile,
    pool: BufferPool,
    table: str,
    column: str,
    predicates: Sequence[Predicate] = (),
    pos_name: str = "_pos",
    zone_maps: bool = False,
    live_mask: Optional[np.ndarray] = None,
) -> Iterator[RowBatch]:
    """Scan a header-free single-column heap a *block* at a time.

    The "super tuple" executor model (Halverson et al., and this paper's
    conclusion list: reduced tuple overhead + block processing inside a
    row store): one operator call per page and vectorized per-value
    work instead of per-tuple iterator calls and header parsing.
    Positions are implicit in storage order; ``live_mask`` (indexed by
    position) hides snapshot-deleted tuples before any predicate runs.
    """
    stats = pool.stats
    compiled = [
        (p.column, compile_predicate(p, heap.fmt.dtype[p.column]))
        for p in predicates
    ]
    rows_per_page = heap.fmt.rows_per_page
    for page_no, records in _scan_record_pages(heap, pool, predicates,
                                               zone_maps):
        n = len(records)
        stats.block_calls += 1
        base = page_no * rows_per_page
        values = np.ascontiguousarray(records[column])
        positions = np.arange(base, base + n, dtype=np.int64)
        mask: Optional[np.ndarray] = None
        if live_mask is not None:
            stats.position_ops += n
            mask = live_mask[base:base + n].copy()
        for _col, pred in compiled:
            # predicates are vectorized over the block, not interpreted
            # per tuple: swap the scalar charge for the vector rate
            before = stats.values_scanned_scalar
            verdict = pred(values if mask is None else values[mask], stats)
            moved = stats.values_scanned_scalar - before
            stats.values_scanned_scalar -= moved
            stats.values_scanned_vector += moved
            stats.attr_extractions -= len(verdict)
            if mask is None:
                mask = verdict
            else:
                mask = mask.copy()
                mask[np.flatnonzero(mask)[~verdict]] = False
        if mask is not None:
            values = values[mask]
            positions = positions[mask]
        stats.values_scanned_vector += len(values)
        yield RowBatch({qualified(table, column): values,
                        pos_name: positions})


def index_full_scan(
    tree: BPlusTree,
    pool: BufferPool,
    value_name: str,
    rid_name: str,
    secondary_name: Optional[str] = None,
) -> Iterator[RowBatch]:
    """Scan every index leaf, yielding (value, rid[, secondary]) batches."""
    stats = pool.stats
    entry_width = 12 if tree.has_secondary else 8
    for leaf in tree.scan_leaves(pool):
        stats.iterator_calls += len(leaf.keys)
        stats.tuple_bytes_scanned += len(leaf.keys) * entry_width
        out = {value_name: leaf.keys, rid_name: leaf.rids.astype(np.int64)}
        if secondary_name is not None:
            if leaf.secondary is None:
                raise ExecutionError(
                    "index has no secondary key but one was requested"
                )
            out[secondary_name] = leaf.secondary
        yield RowBatch(out)


def index_range_scan(
    tree: BPlusTree,
    pool: BufferPool,
    low: int,
    high: int,
    value_name: str,
    rid_name: str,
    secondary_name: Optional[str] = None,
) -> Iterator[RowBatch]:
    """Range scan [low, high] over the index."""
    stats = pool.stats
    entry_width = 12 if tree.has_secondary else 8
    for leaf in tree.range_scan(pool, low, high):
        stats.iterator_calls += len(leaf.keys)
        stats.tuple_bytes_scanned += len(leaf.keys) * entry_width
        out = {value_name: leaf.keys, rid_name: leaf.rids.astype(np.int64)}
        if secondary_name is not None and leaf.secondary is not None:
            out[secondary_name] = leaf.secondary
        yield RowBatch(out)


def heap_fetch(
    heap: HeapFile,
    pool: BufferPool,
    rids: np.ndarray,
    table: str,
    out_columns: Sequence[str],
    batch_rows: int = 65536,
) -> Iterator[RowBatch]:
    """Fetch tuples by rid (ascending), reading each needed page once.

    Random I/O is charged naturally: non-adjacent pages cost seeks.
    """
    stats = pool.stats
    rids = np.sort(np.asarray(rids, dtype=np.int64))
    pages = rids // heap.fmt.rows_per_page
    for start in range(0, len(rids), batch_rows):
        chunk = rids[start:start + batch_rows]
        chunk_pages = pages[start:start + batch_rows]
        collected: Dict[str, List[np.ndarray]] = {c: [] for c in out_columns}
        rid_parts: List[np.ndarray] = []
        for page_no in np.unique(chunk_pages):
            records = heap.fmt.parse_page(pool.read_page(heap.name,
                                                         int(page_no)))
            local = chunk[chunk_pages == page_no] - int(page_no) * \
                heap.fmt.rows_per_page
            stats.iterator_calls += len(local)
            stats.tuple_bytes_scanned += len(local) * heap.fmt.record_width
            picked = records[local]
            for c in out_columns:
                collected[c].append(np.ascontiguousarray(picked[c]))
            rid_parts.append(chunk[chunk_pages == page_no])
        if rid_parts:
            out = {
                qualified(table, c): np.concatenate(collected[c])
                for c in out_columns
            }
            out["_rid"] = np.concatenate(rid_parts)
            yield RowBatch(out)


# --------------------------------------------------------------------- #
# hash join
# --------------------------------------------------------------------- #
class HashTable:
    """Build side of a hash join: key -> payload row.

    ``charge_inserts=False`` is used when the structure is merely a
    sorted materialization (e.g. the output of a merge join), not a hash
    build."""

    def __init__(self, keys: np.ndarray, payload: Dict[str, np.ndarray],
                 stats: QueryStats, charge_inserts: bool = True) -> None:
        order = np.argsort(keys, kind="stable")
        self._keys = keys[order]
        self._payload = {k: v[order] for k, v in payload.items()}
        if charge_inserts:
            stats.hash_inserts += len(keys)
        self.entry_bytes = sum(v.dtype.itemsize for v in payload.values()) \
            + keys.dtype.itemsize + 16  # bucket/pointer overhead
        self.num_entries = len(keys)

    @classmethod
    def from_stream(cls, stream: BatchStream, key: str,
                    payload_columns: Sequence[str], stats: QueryStats
                    ) -> "HashTable":
        keys: List[np.ndarray] = []
        payload: Dict[str, List[np.ndarray]] = {c: [] for c in payload_columns}
        for batch in stream:
            keys.append(batch.column(key))
            for c in payload_columns:
                payload[c].append(batch.column(c))
        all_keys = np.concatenate(keys) if keys else np.zeros(0, np.int64)
        all_payload = {
            c: (np.concatenate(v) if v else np.zeros(0, np.int64))
            for c, v in payload.items()
        }
        return cls(all_keys, all_payload, stats)

    @property
    def size_bytes(self) -> int:
        return self.entry_bytes * self.num_entries

    def probe(self, keys: np.ndarray, stats: QueryStats
              ) -> Tuple[np.ndarray, np.ndarray]:
        """(found mask, build row index) for each probe key."""
        stats.hash_probes += len(keys)
        idx = np.searchsorted(self._keys, keys)
        idx_clipped = np.minimum(idx, max(len(self._keys) - 1, 0))
        if len(self._keys) == 0:
            return np.zeros(len(keys), dtype=bool), idx_clipped
        found = self._keys[idx_clipped] == keys
        return found, idx_clipped

    def payload_at(self, name: str, rows: np.ndarray) -> np.ndarray:
        return self._payload[name][rows]

    def payload_names(self) -> List[str]:
        return list(self._payload)

    def matching_keys(self) -> np.ndarray:
        """All build-side keys, ascending (e.g. the dimension keys that
        survived this table's predicates)."""
        return self._keys

    def as_batches(self, key_name: str, batch_rows: int = 65536
                   ) -> Iterator[RowBatch]:
        """Stream the table's contents back out as row batches."""
        for start in range(0, max(self.num_entries, 1), batch_rows):
            stop = start + batch_rows
            out = {key_name: self._keys[start:stop]}
            for name, values in self._payload.items():
                out[name] = values[start:stop]
            yield RowBatch(out)
            if self.num_entries == 0:
                break


class SpillAccountant:
    """Charges honest Grace-partitioning I/O when a hash join spills.

    The partitions are physically written to (and read back from) a
    scratch file on the simulated disk, so spill bytes and seeks appear
    in the ledger exactly like any other I/O.
    """

    _counter = 0

    def __init__(self, disk: SimulatedDisk, memory_budget_bytes: int) -> None:
        self.disk = disk
        self.memory_budget_bytes = memory_budget_bytes

    def spill_round_trip(self, batches_bytes: int) -> None:
        """Write ``batches_bytes`` of partition data and read it back."""
        SpillAccountant._counter += 1
        name = f"__spill_{SpillAccountant._counter}"
        self.disk.create(name)
        remaining = batches_bytes
        filler = b"\0" * PAGE_SIZE
        while remaining > 0:
            self.disk.append_page(name, filler[:min(PAGE_SIZE, remaining)])
            remaining -= PAGE_SIZE
        for _page in self.disk.scan_pages(name):
            pass
        self.disk.drop(name)


def hash_join(
    stream: BatchStream,
    probe_key: str,
    table: HashTable,
    output_prefixing: Dict[str, str],
    stats: QueryStats,
    spill: Optional[SpillAccountant] = None,
    probe_row_bytes: int = 0,
    probe_rows_estimate: int = 0,
) -> Iterator[RowBatch]:
    """Hash join: probe ``stream`` against ``table``.

    ``output_prefixing`` maps build payload columns to their output names.
    Charges one hash probe per probe tuple and one attribute copy per
    appended build column per match (the row store's join-time tuple
    glue).  If a spill accountant is given and the build side exceeds the
    memory budget, both sides pay a Grace-partitioning round trip.
    """
    if spill is not None and table.size_bytes > spill.memory_budget_bytes:
        spill.spill_round_trip(table.size_bytes)
        spill.spill_round_trip(max(probe_row_bytes * probe_rows_estimate, 0))
    for batch in stream:
        n = len(batch)
        stats.iterator_calls += n
        found, rows = table.probe(batch.column(probe_key), stats)
        matched = batch.take(found)
        matched_rows = rows[found]
        extra = {}
        for source, out_name in output_prefixing.items():
            extra[out_name] = table.payload_at(source, matched_rows)
        stats.tuple_attrs_copied += len(matched_rows) * len(output_prefixing)
        yield matched.with_columns(extra)


# --------------------------------------------------------------------- #
# expressions and aggregation
# --------------------------------------------------------------------- #
def eval_expr_rows(expr: Expr, batch: RowBatch, fact_table: str,
                   stats: QueryStats) -> np.ndarray:
    """Evaluate an aggregate-input expression per tuple (int64).

    Charges one scalar op per tuple per expression node, matching the
    per-tuple expression interpretation of a row executor.
    """
    n = len(batch)
    if isinstance(expr, ColumnRef):
        stats.attr_extractions += n
        return batch.column(qualified(expr.table, expr.column)).astype(np.int64)
    if isinstance(expr, Literal):
        return np.full(n, expr.value, dtype=np.int64)
    if isinstance(expr, BinOp):
        left = eval_expr_rows(expr.left, batch, fact_table, stats)
        right = eval_expr_rows(expr.right, batch, fact_table, stats)
        stats.values_scanned_scalar += n
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        return left * right
    raise ExecutionError(f"unknown expression node {type(expr).__name__}")


class HashAggregator:
    """Grouped aggregation with incremental int64 accumulators.

    Group keys arrive as raw values (ints or bytes); :meth:`result`
    decodes bytes to str for the final result set.  Aggregate semantics
    (sum/count/min/max/avg) come from :mod:`repro.plan.aggregates`, so
    partial per-batch reductions merge exactly.
    """

    def __init__(self, group_names: Sequence[str],
                 agg_names: Sequence[str],
                 agg_funcs: Optional[Sequence[str]] = None) -> None:
        from ..plan import aggregates as agg_semantics

        self.group_names = list(group_names)
        self.agg_names = list(agg_names)
        self.agg_funcs = list(agg_funcs) if agg_funcs is not None else             ["sum"] * len(agg_names)
        self._semantics = agg_semantics
        self._acc: Dict[Tuple, List[Tuple[int, Optional[int]]]] = {}

    def _fresh(self) -> List[Tuple[int, Optional[int]]]:
        return [self._semantics.empty_accumulator(f) for f in self.agg_funcs]

    def consume(self, group_arrays: Sequence[np.ndarray],
                agg_arrays: Sequence[np.ndarray], stats: QueryStats) -> None:
        n = len(agg_arrays[0]) if agg_arrays else 0
        if n == 0:
            return
        stats.agg_updates += n
        semantics = self._semantics
        if not group_arrays:
            acc = self._acc.setdefault((), self._fresh())
            for i, (func, arr) in enumerate(zip(self.agg_funcs, agg_arrays)):
                acc[i] = semantics.merge(
                    func, acc[i], semantics.reduce_scalar(func, arr))
            return
        # consolidate the batch first, then merge per distinct group
        matrix = np.stack([_group_code(a) for a in group_arrays])
        uniq, inverse = np.unique(matrix, axis=1, return_inverse=True)
        per_agg = [
            semantics.reduce_groups(func, arr, inverse, uniq.shape[1])
            for func, arr in zip(self.agg_funcs, agg_arrays)
        ]
        # representative raw values for decoding
        first_of_group = np.zeros(uniq.shape[1], dtype=np.int64)
        first_of_group[inverse[::-1]] = np.arange(n - 1, -1, -1)
        for g in range(uniq.shape[1]):
            rep = int(first_of_group[g])
            key = tuple(_decode_cell(arr[rep]) for arr in group_arrays)
            acc = self._acc.setdefault(key, self._fresh())
            for i, (func, (primary, secondary)) in enumerate(
                    zip(self.agg_funcs, per_agg)):
                pair = (int(primary[g]),
                        None if secondary is None else int(secondary[g]))
                acc[i] = semantics.merge(func, acc[i], pair)

    def result(self) -> ResultSet:
        columns = self.group_names + self.agg_names
        rows: List[Row] = []
        for key, acc in self._acc.items():
            cells = tuple(
                self._semantics.finalize(func, primary, secondary)
                for func, (primary, secondary) in zip(self.agg_funcs, acc)
            )
            rows.append(tuple(key) + cells)
        return ResultSet(columns, rows)


def _group_code(arr: np.ndarray) -> np.ndarray:
    """Map group values to comparable int64 codes for batch consolidation."""
    if arr.dtype.kind == "S":
        _uniq, inv = np.unique(arr, return_inverse=True)
        return inv.astype(np.int64)
    return arr.astype(np.int64)


def _decode_cell(value) -> object:
    if isinstance(value, bytes):
        # numpy S-dtype scalars already drop trailing NULs
        return value.decode("ascii")
    return int(value)


def charge_result_sort(result: ResultSet, stats: QueryStats) -> None:
    """Charge n log2 n comparisons for the final ORDER BY."""
    n = len(result)
    if n > 1:
        stats.sort_compares += int(n * math.log2(n))


__all__ = [
    "RowBatch",
    "BatchStream",
    "qualified",
    "seq_scan",
    "index_full_scan",
    "index_range_scan",
    "heap_fetch",
    "HashTable",
    "SpillAccountant",
    "hash_join",
    "eval_expr_rows",
    "HashAggregator",
    "charge_result_sort",
]
