"""Orderdate-year partitioning of fact tables.

System X partitions the lineorder table (and each materialized view) on
orderdate by year; queries with a date restriction scan only matching
partitions — worth about a factor of two on average (Section 6.1/6.2).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

import numpy as np

from ..plan.logical import StarQuery
from ..reference.predicates import eval_predicate
from ..storage.table import Table


def year_of_datekey(datekeys: np.ndarray) -> np.ndarray:
    """The year component of yyyymmdd keys."""
    return datekeys // 10000


def partition_by_year(table: Table, date_column: str = "orderdate"
                      ) -> Dict[int, Table]:
    """Split ``table`` into one sub-table per orderdate year.

    Row order inside each partition preserves the parent order, so a
    sorted parent yields sorted partitions.
    """
    years = year_of_datekey(table.column(date_column).data)
    out: Dict[int, Table] = {}
    for year in np.unique(years):
        positions = np.flatnonzero(years == year)
        part = table.take(positions, new_name=f"{table.name}_y{int(year)}")
        out[int(year)] = part
    return out


def qualifying_years(date_table: Table, query: StarQuery,
                     all_years: Sequence[int]) -> List[int]:
    """Years a partitioned fact scan must touch for ``query``.

    Derived by applying the query's date-dimension predicates to the
    (tiny, catalog-resident) date table — the pruning a DBA achieves by
    restricting on the partitioning column.  No date predicates means
    every partition qualifies.
    """
    preds = [p for p in query.predicates if p.table == "date"]
    if not preds:
        return list(all_years)
    mask = np.ones(date_table.num_rows, dtype=bool)
    for pred in preds:
        mask &= eval_predicate(date_table.column(pred.column), pred)
    keys = date_table.column("datekey").data[mask]
    if len(keys) == 0:
        return []
    hit = set(int(y) for y in np.unique(year_of_datekey(keys)))
    return [y for y in all_years if y in hit]


__all__ = ["partition_by_year", "qualifying_years", "year_of_datekey"]
