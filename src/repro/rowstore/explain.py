"""EXPLAIN for the row store: the plan shape each design would execute.

Descriptions follow Section 6.2.1's plan walkthroughs.  Dimension
selectivities are computed by actually filtering the (small) dimension
tables; partition pruning is resolved against the date table — both on
a throwaway ledger, so EXPLAIN never perturbs measurements.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..plan.logical import StarQuery
from ..reference.predicates import eval_predicate
from ..ssb.generator import SsbData
from .designs import Artifacts, BITMAPPED_FACT_COLUMNS, DesignKind
from .partitioning import qualifying_years


def explain(catalog: SsbData, artifacts: Artifacts, query: StarQuery,
            design: DesignKind, prune_partitions: bool = True) -> str:
    lines: List[str] = [
        f"EXPLAIN {query.name} [row store, design {design.value}]",
    ]
    dims = _dimension_lines(catalog, query)
    if design in (DesignKind.TRADITIONAL, DesignKind.MATERIALIZED_VIEWS):
        lines += _explain_scan_based(catalog, artifacts, query, design,
                                     prune_partitions, dims)
    elif design is DesignKind.TRADITIONAL_BITMAP:
        lines += _explain_bitmap(catalog, query, dims)
    elif design is DesignKind.VERTICAL_PARTITIONING:
        lines += _explain_vertical(query, dims)
    else:
        lines += _explain_index_only(query, dims)
    lines.append(_tail(query))
    return "\n".join(lines)


def _dimension_selectivity(catalog: SsbData, query: StarQuery,
                           dim: str) -> float:
    table = catalog.table(dim)
    mask = np.ones(table.num_rows, dtype=bool)
    for pred in query.dimension_predicates(dim):
        mask &= eval_predicate(table.column(pred.column), pred)
    return float(mask.sum()) / max(table.num_rows, 1)


def _dimension_lines(catalog: SsbData, query: StarQuery) -> List[str]:
    lines = ["  1. filter dimensions, build hash tables "
             "(most selective first):"]
    entries = []
    for dim in query.dimensions_used():
        sel = _dimension_selectivity(catalog, query, dim)
        preds = query.dimension_predicates(dim)
        pred_text = " AND ".join(str(p) for p in preds) or "no predicates"
        attrs = query.group_by_of(dim)
        carry = f"; carry [{', '.join(attrs)}]" if attrs else ""
        entries.append((sel, f"     {dim}: {pred_text} "
                             f"-> {sel:.2%} of keys{carry}"))
    for _sel, text in sorted(entries):
        lines.append(text)
    return lines


def _explain_scan_based(catalog, artifacts, query, design, prune, dims
                        ) -> List[str]:
    lines = list(dims)
    if design is DesignKind.MATERIALIZED_VIEWS:
        from ..ssb.queries import FLIGHT_OF

        flight = FLIGHT_OF.get(query.name)
        columns = artifacts.mv_columns.get(flight, [])
        source = (f"materialized view mv_f{flight} "
                  f"[{', '.join(columns)}]")
        partitions = sorted(artifacts.mv_partitions.get(flight, {}))
    else:
        source = "lineorder heap (all 17 columns)"
        partitions = sorted(artifacts.fact_partitions)
    years = qualifying_years(catalog.date, query, partitions) if prune \
        else partitions
    pruned = len(partitions) - len(years)
    lines.append(f"  2. sequential scan of {source}")
    lines.append(f"     partitions touched: {years} "
                 f"({pruned} pruned by orderdate year)" if pruned else
                 f"     partitions touched: all {len(partitions)}")
    for p in query.fact_predicates():
        lines.append(f"     pushed-down predicate: {p}")
    lines.append("  3. pipelined hash joins against the dimension hash "
                 "tables")
    return lines


def _explain_bitmap(catalog, query, dims) -> List[str]:
    lines = list(dims)
    lines.append("  2. bitmap access path over the unpartitioned heap:")
    for dim in query.dimensions_used():
        fk = query.fk_of(dim)
        if query.dimension_predicates(dim) and fk in BITMAPPED_FACT_COLUMNS:
            lines.append(f"     OR the {fk} rid sets of the surviving "
                         f"{dim} keys")
    for p in query.fact_predicates():
        if p.column in BITMAPPED_FACT_COLUMNS:
            lines.append(f"     bitmap range read for {p}")
        else:
            lines.append(f"     (post-filter after fetch: {p})")
    lines.append("     AND the rid sets; fetch qualifying tuples by rid")
    lines.append("  3. hash joins for group-by attribute extraction")
    return lines


def _explain_vertical(query, dims) -> List[str]:
    lines = list(dims)
    lines.append("  2. per-column position joins over two-column tables:")
    for dim in query.dimensions_used():
        fk = query.fk_of(dim)
        lines.append(f"     scan vp_{fk} (pos, {fk}); hash-probe the "
                     f"{dim} table")
    for p in query.fact_predicates():
        lines.append(f"     scan vp_{p.column} with predicate {p}")
    lines.append("  3. hash-join the per-column result sets on position")
    rest = [c for c in query.fact_columns_needed()
            if c not in {p.column for p in query.fact_predicates()}
            and c not in query.joins]
    if rest:
        lines.append(f"  4. pick up remaining columns by position join: "
                     f"[{', '.join(rest)}]")
    return lines


def _explain_index_only(query, dims) -> List[str]:
    cols = query.fact_columns_needed()
    lines = [
        "  1. full/range index scans over fact columns "
        f"[{', '.join(cols)}]",
        "     hash-join them on rid *before* any dimension filtering",
        "     (System X cannot defer these joins; builds may spill)",
    ]
    lines.append("  2. dimension attribute indexes (composite "
                 "(attr, key) keys):")
    for dim in query.dimensions_used():
        preds = query.dimension_predicates(dim)
        pred_text = " AND ".join(str(p) for p in preds) or "full scan"
        lines.append(f"     {dim}: {pred_text}; rid-join attribute "
                     f"indexes; build key -> attrs")
    lines.append("  3. hash-join the rid-joined fact columns with each "
                 "dimension")
    return lines


def render_span_section(trace) -> str:
    """The EXPLAIN ANALYZE tail: an observed span tree (see
    :mod:`repro.obs`), indented to match the plan lines."""
    from ..obs import render_trace

    lines = ["  span tree (simulated seconds):"]
    lines += ["  " + line for line in render_trace(trace).splitlines()[1:]]
    return "\n".join(lines)


def _tail(query: StarQuery) -> str:
    aggs = ", ".join(f"{a.func}(...) as {a.alias}"
                     for a in query.aggregates)
    if query.group_by:
        groups = ", ".join(f"{g.table}.{g.column}" for g in query.group_by)
        tail = f"  final: hash aggregate {aggs} group by ({groups})"
    else:
        tail = f"  final: aggregate {aggs}"
    if query.order_by:
        keys = ", ".join(k.key for k in query.order_by)
        tail += f"; sort by {keys}"
    return tail


__all__ = ["explain", "render_span_section"]
