"""The System X facade: build designs once, execute queries against them.

:class:`SystemX` owns a simulated disk, a buffer pool, and the artifacts
of whichever physical designs were requested.  Resource sizes scale with
the data's scale factor so that the paper's 500 MB buffer pool and 1.5 GB
sort/join memory (configured for SF 10) keep their *relative* size: a run
at SF 0.05 gets 0.5 % of each, preserving spill and caching behaviour.

``execute`` isolates each query on a fresh ledger and converts the
measured counts to simulated seconds with the shared
:class:`~repro.simio.stats.CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ChecksumError, CorruptPageError, PlanError, WriteError
from ..obs import Span, Trace, Tracer, span_context
from ..plan.logical import StarQuery
from ..result import ResultSet
from ..simio.buffer_pool import BufferPool
from ..simio.disk import SimulatedDisk
from ..simio.stats import CostBreakdown, CostModel, QueryStats
from ..simio.stats import PAPER_2008
from ..ssb.generator import SsbData
from .designs import Artifacts, DesignBuilder, DesignKind
from .operators import SpillAccountant
from .planner import RowPlanner
from .statistics import CatalogStatistics

#: Paper configuration at SF 10 (Section 6.2), scaled by sf/10 at runtime.
PAPER_BUFFER_POOL_BYTES = 500 * 1024 * 1024
PAPER_JOIN_MEMORY_BYTES = 3 * 512 * 1024 * 1024  # "1.5 GB maximum memory"
PAPER_SCALE_FACTOR = 10.0
MIN_POOL_BYTES = 8 * 32 * 1024


@dataclass
class RowStoreRun:
    """Outcome of one query execution."""

    result: ResultSet
    stats: QueryStats
    cost: CostBreakdown
    #: per-phase span tree; verified to sum exactly to ``stats``
    trace: Optional[Trace] = None
    #: which shards ran / were eliminated (sharded executions only)
    shard_report: Optional[object] = None

    @property
    def seconds(self) -> float:
        """Simulated seconds on the paper's hardware."""
        return self.cost.total_seconds


class SystemX:
    """A commercial-style row store over the simulated disk.

    Parameters
    ----------
    data:
        The generated SSB database.
    designs:
        Which physical designs to materialize (each costs load time and
        simulated disk space); defaults to all five.
    cost_model:
        Converts measured work into simulated seconds.
    buffer_pool_bytes / join_memory_bytes:
        Override the sf-scaled defaults (mostly for ablation benches).
    zone_maps:
        Consult per-page min/max synopses before heap scans, skipping
        pages that cannot satisfy the pushed-down predicates.  Off by
        default (the paper's System X reads every page).
    shards:
        Scatter-gather sharding: split the fact table into this many
        self-contained shards, each a complete child ``SystemX`` on its
        own disk array (see ``docs/sharding.md``).  1 (default) keeps
        the unchanged single-stack path.
    writes:
        Opt in to snapshot reads over pending writes.  System X has no
        per-query config object, so this engine-level flag plays the
        role :attr:`~repro.core.config.ExecutionConfig.writes` plays for
        the column store: with it off (default), a query against an
        engine holding pending writes raises
        :class:`~repro.errors.WriteError` rather than answering wrong.
    """

    def __init__(
        self,
        data: SsbData,
        designs: Optional[Sequence[DesignKind]] = None,
        cost_model: CostModel = PAPER_2008,
        buffer_pool_bytes: Optional[int] = None,
        join_memory_bytes: Optional[int] = None,
        zone_maps: bool = False,
        shards: int = 1,
        writes: bool = False,
        move_threshold_rows: Optional[int] = None,
        fault_injector=None,
    ) -> None:
        if shards < 1:
            raise PlanError(f"shards must be >= 1, got {shards}")
        if move_threshold_rows is not None and move_threshold_rows < 1:
            raise PlanError(
                f"move_threshold_rows must be >= 1, got {move_threshold_rows}"
            )
        self.data = data
        self.cost_model = cost_model
        self.zone_maps = zone_maps
        self.shards = shards
        self.writes = writes
        #: automatic tuple-mover policy: drain the WOS before a query
        #: when net pending rows exceed this (None = manual moves only).
        #: Engine-level, like ``writes`` — System X has no per-query
        #: config object.
        self.move_threshold_rows = move_threshold_rows
        #: [(FactShard, child SystemX)], built lazily on first sharded run
        self._shard_children: Optional[List[Tuple[object, "SystemX"]]] = None
        #: lazily created delta store (first accepted write); None means
        #: this engine has never seen a write
        self._writes = None
        #: write epoch the current artifacts (and their zone-map
        #: sidecars) reflect; bumped by the tuple mover
        self._zm_epoch = 0
        scale = data.scale_factor / PAPER_SCALE_FACTOR
        if buffer_pool_bytes is None:
            buffer_pool_bytes = max(MIN_POOL_BYTES,
                                    int(PAPER_BUFFER_POOL_BYTES * scale))
        if join_memory_bytes is None:
            join_memory_bytes = max(MIN_POOL_BYTES,
                                    int(PAPER_JOIN_MEMORY_BYTES * scale))
        self._pool_bytes = buffer_pool_bytes
        #: the tables this engine was opened with — cold-start replay
        #: always re-applies the journal against these, never against a
        #: possibly-moved current base, so recovery is idempotent
        self._genesis_tables = dict(data.tables)
        self.disk = SimulatedDisk()
        # installed before any build so shadow rebuilds are fault-injectable
        self.disk.fault_injector = fault_injector
        self.pool = BufferPool(self.disk, buffer_pool_bytes)
        self.join_memory_bytes = join_memory_bytes
        # ANALYZE at load time: the planner orders joins from these
        self.statistics = CatalogStatistics(data.tables)
        self.artifacts = Artifacts()
        self._built: set = set()
        builder = DesignBuilder(self.disk, data)
        builder.build_dimensions(self.artifacts)
        for design in (designs if designs is not None else list(DesignKind)):
            self.add_design(design)

    def add_design(self, design: DesignKind) -> None:
        """Materialize one design's artifacts (idempotent; propagated to
        shard children when sharding is active)."""
        if design in self._built:
            return
        builder = DesignBuilder(self.disk, self.data)
        if design in (DesignKind.TRADITIONAL, DesignKind.TRADITIONAL_BITMAP):
            builder.build_traditional(self.artifacts)
        if design is DesignKind.TRADITIONAL_BITMAP:
            builder.build_bitmaps(self.artifacts)
        if design is DesignKind.MATERIALIZED_VIEWS:
            builder.build_materialized_views(self.artifacts)
        if design is DesignKind.VERTICAL_PARTITIONING:
            builder.build_vertical_partitions(self.artifacts)
        if design is DesignKind.INDEX_ONLY:
            builder.build_indexes(self.artifacts)
        self._built.add(design)
        if self._shard_children is not None:
            for _shard, child in self._shard_children:
                child.add_design(design)

    @property
    def designs(self) -> List[DesignKind]:
        return sorted(self._built, key=lambda d: d.value)

    def execute(
        self,
        query: StarQuery,
        design: DesignKind,
        prune_partitions: bool = True,
        vp_join: str = "hash",
        vp_super_tuples: bool = False,
        cold_pool: bool = True,
        cancellation=None,
        _visibility=None,
    ) -> RowStoreRun:
        """Run ``query`` under ``design`` on a fresh ledger.

        ``vp_join`` applies to the vertical-partitioning design only:
        ``"hash"`` (System X's actual behaviour) or ``"merge"`` (the
        sort-free merge join the paper says System X could not be coaxed
        into, Section 6.2.2).  ``vp_super_tuples=True`` stores the
        vertical partitions as header-free, position-implicit "super
        tuples" scanned block-at-a-time — the storage/executor
        improvements the paper's conclusion lists (built lazily on first
        use).  ``cold_pool=False`` keeps whatever the buffer pool holds
        from previous runs — the paper's warm-pool measurement protocol
        (Section 6.1).  ``cancellation`` installs a cooperative
        :class:`~repro.serve.resilience.CancellationToken` checked at
        page boundaries (typed
        :class:`~repro.errors.QueryCancelledError`).

        When the engine holds pending writes the run becomes a snapshot
        read pinned at the current epoch (see ``docs/writes.md``):
        pending deletes hide fact tuples from scans in place, and
        visible WOS fact inserts add a ``wos-merge`` partial combined
        through the scatter-gather merger.  Requires the engine-level
        ``writes`` flag; a read-only engine with pending writes raises
        :class:`~repro.errors.WriteError` rather than answering wrong.
        """
        if design not in self._built:
            raise PlanError(
                f"design {design.value} was not built; available: "
                f"{[d.value for d in self.designs]}"
            )
        ws = self._writes
        if (_visibility is None and ws is not None and self.writes
                and self.move_threshold_rows is not None
                and ws.pending_rows() > self.move_threshold_rows):
            # automatic tuple-mover policy: drain on its own ledger so
            # the query's ledger only ever carries query work
            self.move()
        if _visibility is None and ws is not None and ws.has_pending():
            if not self.writes:
                raise WriteError(
                    "engine holds pending writes; enable SystemX(writes=) "
                    "or run the tuple mover first"
                )
            vis = ws.visibility()
            if vis.needs_merge:
                return self._execute_merge(
                    query, design, prune_partitions=prune_partitions,
                    vp_join=vp_join, vp_super_tuples=vp_super_tuples,
                    cold_pool=cold_pool, cancellation=cancellation, vis=vis)
            _visibility = vis
        if self.shards > 1:
            return self._execute_sharded(
                query, design, prune_partitions=prune_partitions,
                vp_join=vp_join, vp_super_tuples=vp_super_tuples,
                cold_pool=cold_pool, cancellation=cancellation,
                visibility=_visibility)
        if vp_super_tuples and not self.artifacts.vp_super_heaps:
            DesignBuilder(self.disk, self.data) \
                .build_super_vertical_partitions(self.artifacts)
        stats = QueryStats()
        self.disk.stats = stats
        # default: start from a cold pool so measurements are
        # order-independent (the pool is 0.5% of the data, mirroring the
        # paper's 500 MB at SF 10, so warmth barely shifts results)
        if cold_pool:
            self.pool.clear()
        else:
            self.disk.reset_head()
        spill = SpillAccountant(self.disk, self.join_memory_bytes)
        tracer = Tracer(stats, self.cost_model)
        planner = RowPlanner(self.pool, self.artifacts, self.data, spill,
                             statistics=self.statistics, tracer=tracer,
                             zone_maps=self.zone_maps,
                             visibility=_visibility)
        saved_cancellation = self.disk.cancellation
        if cancellation is not None:
            self.disk.cancellation = cancellation
        try:
            result = planner.run(query, design,
                                 prune_partitions=prune_partitions,
                                 vp_join=vp_join,
                                 vp_super_tuples=vp_super_tuples)
        except ChecksumError as error:
            # The row store keeps one copy of every artifact — there is
            # no redundant projection to re-plan against, so a persistent
            # corrupt page is final (but typed, never a wrong result).
            raise CorruptPageError(
                error.file, error.page_no, error.disk_no,
                detail="row-store artifacts have no redundant copy",
            ) from error
        finally:
            self.disk.cancellation = saved_cancellation
        trace = tracer.finish(stats)
        return RowStoreRun(result, stats, self.cost_model.cost(stats),
                           trace=trace)

    # ------------------------------------------------------------------ #
    # sharded execution
    # ------------------------------------------------------------------ #
    def shard_children(self) -> List[Tuple[object, "SystemX"]]:
        """The shard set behind ``shards > 1``: each entry pairs a
        :class:`~repro.shard.partition.FactShard` with a complete child
        ``SystemX`` on its own simulated disk array.  Built once and
        reused across queries."""
        if self._shard_children is not None:
            return self._shard_children
        from ..shard.partition import ShardScheme, partition_data

        scheme = (ShardScheme.RANGE
                  if self.data.lineorder.sort_order.sorted_prefix_of(
                      "orderdate")
                  else ShardScheme.HASH)
        child_pool = max(MIN_POOL_BYTES, self._pool_bytes // self.shards)
        child_join = max(MIN_POOL_BYTES,
                         self.join_memory_bytes // self.shards)
        self._shard_children = [
            (shard, SystemX(shard.data, designs=self.designs,
                            cost_model=self.cost_model,
                            buffer_pool_bytes=child_pool,
                            join_memory_bytes=child_join,
                            zone_maps=self.zone_maps))
            for shard in partition_data(self.data, self.shards, scheme)
        ]
        return self._shard_children

    def _execute_sharded(
        self,
        query: StarQuery,
        design: DesignKind,
        *,
        prune_partitions: bool,
        vp_join: str,
        vp_super_tuples: bool,
        cold_pool: bool,
        cancellation,
        visibility=None,
    ) -> RowStoreRun:
        from ..shard.executor import scatter_gather

        children = self.shard_children()

        def execute_one(k: int, shard_query: StarQuery) -> RowStoreRun:
            child_vis = None
            if visibility is not None and visibility.needs_patching:
                # slice the database-wide deleted mask down to this
                # shard's fact rows (shard positions index the unsharded
                # fact table)
                from ..write.store import Visibility

                shard = children[k][0]
                mask = visibility.fact_deleted[shard.positions]
                if bool(mask.any()):
                    child_vis = Visibility(
                        epoch=visibility.epoch, store=visibility.store,
                        fact_deleted=mask)
            return children[k][1].execute(
                shard_query, design, prune_partitions=prune_partitions,
                vp_join=vp_join, vp_super_tuples=vp_super_tuples,
                cold_pool=cold_pool, cancellation=cancellation,
                _visibility=child_vis)

        result, stats, trace, report = scatter_gather(
            query, [shard.synopsis for shard, _engine in children],
            self.data.date, execute_one, self.cost_model)
        return RowStoreRun(result, stats, self.cost_model.cost(stats),
                           trace=trace, shard_report=report)

    # ------------------------------------------------------------------ #
    # snapshot reads over pending inserts (WOS merge)
    # ------------------------------------------------------------------ #
    def _execute_merge(
        self,
        query: StarQuery,
        design: DesignKind,
        *,
        prune_partitions: bool,
        vp_join: str,
        vp_super_tuples: bool,
        cold_pool: bool,
        cancellation,
        vis,
    ) -> RowStoreRun:
        """Base run plus a WOS delta partial, combined like one more
        shard.  The scatter rewrite makes the partials mergeable (AVG as
        SUM+COUNT, hidden row counts for scalar MIN/MAX), and the merged
        trace carries the delta's compute under a ``wos-merge`` span."""
        from ..shard.executor import gather, shard_plan
        from ..write.delta import delta_partial

        spec = shard_plan(query)
        base_run = self.execute(
            spec.shard_query, design, prune_partitions=prune_partitions,
            vp_join=vp_join, vp_super_tuples=vp_super_tuples,
            cold_pool=cold_pool, cancellation=cancellation, _visibility=vis)
        delta_stats = QueryStats()
        partial = delta_partial(spec.shard_query, vis.delta_tables(),
                                delta_stats)
        result = gather(query, spec, [base_run.result, partial])
        merged = QueryStats(**base_run.stats.snapshot())
        merged.merge(delta_stats)
        spans = [
            Span("base-store", QueryStats(**base_run.stats.snapshot()),
                 base_run.cost, children=[base_run.trace.root]),
            Span("wos-merge", QueryStats(**delta_stats.snapshot()),
                 self.cost_model.cost(delta_stats)),
        ]
        root = Span("query", QueryStats(**merged.snapshot()),
                    self.cost_model.cost(merged), children=spans)
        trace = Trace(root).verify(merged)
        return RowStoreRun(result, merged, self.cost_model.cost(merged),
                           trace=trace, shard_report=base_run.shard_report)

    # ------------------------------------------------------------------ #
    # writes: WOS delegation and the tuple mover
    # ------------------------------------------------------------------ #
    def _write_store(self):
        if self._writes is None:
            from ..write.store import WriteStore

            self._writes = WriteStore(dict(self.data.tables))
            # journal faults come from the same injector as data faults
            self._writes.journal.disk.fault_injector = \
                self.disk.fault_injector
        return self._writes

    def insert(self, table: str, rows, stats: Optional[QueryStats] = None,
               tracer: Optional[Tracer] = None) -> int:
        """Validate, journal, and buffer ``rows`` into the WOS.
        All-or-nothing; returns rows accepted."""
        if stats is None:
            stats = QueryStats()
        return self._write_store().insert(table, rows, stats, tracer)

    def delete(self, table: str, predicates,
               stats: Optional[QueryStats] = None,
               tracer: Optional[Tracer] = None) -> int:
        """Mark matching rows deleted as of a fresh epoch (dimension
        deletes are RESTRICTed while referenced).  Returns rows marked."""
        if stats is None:
            stats = QueryStats()
        return self._write_store().delete(table, predicates, stats, tracer)

    def pending_writes(self) -> int:
        """Rows the tuple mover would merge right now (0 = clean)."""
        return 0 if self._writes is None else self._writes.pending_rows()

    @property
    def write_epoch(self) -> int:
        return 0 if self._writes is None else self._writes.epoch

    def move(self, stats: Optional[QueryStats] = None,
             tracer: Optional[Tracer] = None) -> int:
        """The tuple mover: drain the WOS into fresh design artifacts.

        Builds a complete shadow engine from the effective tables (the
        cold-rebuild order, so post-move reads are byte-identical to a
        rebuild), retrying transient write faults with the journal's
        backoff schedule, then swaps it in atomically and advances the
        merge horizon.  All shadow-build I/O is charged to ``stats``
        under a ``tuple-move`` span.  On failure the serving store is
        untouched.  Returns the number of rows merged.
        """
        ws = self._writes
        if ws is None or not ws.has_pending():
            return 0
        if stats is None:
            stats = QueryStats()
        from ..simio.faults import (CRASH_AFTER_MOVE_SWAP,
                                    CRASH_BEFORE_MOVE_SWAP, crash_point)

        moved = ws.pending_rows()
        effective = ws.effective_tables()
        with span_context(tracer, "tuple-move"):
            shadow = self._rebuild_from_effective(effective, ws.epoch, stats,
                                                  crash_points=True)
            stats.merge(shadow.disk.stats)
            # the move record is the swap's commit point: a crash before
            # it leaves orphan shadow pages recovery discards, a crash
            # after it is a completed move recovery rolls forward
            crash_point(self.disk.fault_injector, CRASH_BEFORE_MOVE_SWAP)
            ws.journal.append({"op": "move", "epoch": ws.epoch,
                               "rows": moved}, stats, tracer)
            crash_point(self.disk.fault_injector, CRASH_AFTER_MOVE_SWAP)
            self._adopt_shadow(shadow)
            ws.complete_move(effective)
            self._zm_epoch = ws.epoch
            stats.moves += 1
        return moved

    def _rebuild_from_effective(self, effective, epoch: int,
                                stats: QueryStats,
                                crash_points: bool = False) -> "SystemX":
        """Build (and epoch-stamp) a complete shadow engine from the
        effective tables, retrying transient write faults with the
        journal's backoff schedule.  Shared by the tuple mover and by
        cold-start recovery; only the mover arms the mid-shadow kill
        point (recovery re-running this path must not re-crash)."""
        from ..errors import TransientIOError, WriteFaultError
        from ..simio.buffer_pool import _backoff_us
        from ..simio.faults import CRASH_MID_MOVE_SHADOW, crash_point
        from ..synopsis import stamp_sidecars
        from ..write.journal import MAX_WRITE_RETRIES

        data = SsbData(
            scale_factor=self.data.scale_factor,
            seed=self.data.seed,
            lineorder=effective["lineorder"],
            customer=effective["customer"],
            supplier=effective["supplier"],
            part=effective["part"],
            date=effective["date"],
        )
        for attempt in range(1, MAX_WRITE_RETRIES + 1):
            try:
                shadow = SystemX(
                    data, designs=self.designs,
                    cost_model=self.cost_model,
                    buffer_pool_bytes=self._pool_bytes,
                    join_memory_bytes=self.join_memory_bytes,
                    zone_maps=self.zone_maps,
                    writes=self.writes,
                    fault_injector=self.disk.fault_injector)
                if crash_points:
                    # dies with shadow pages built but unstamped and no
                    # move record: pure orphans, discarded on recovery
                    crash_point(self.disk.fault_injector,
                                CRASH_MID_MOVE_SHADOW)
                # stamp the shadow's sidecars with the merged epoch
                # so the scrubber can tell drift from pending delta
                stamp_sidecars(shadow.disk, epoch)
                return shadow
            except TransientIOError as exc:
                stats.io_retries += 1
                stats.retry_backoff_us += _backoff_us(attempt)
                if attempt == MAX_WRITE_RETRIES:
                    raise WriteFaultError(
                        f"tuple move failed after {MAX_WRITE_RETRIES} "
                        f"shadow-build attempts: {exc}"
                    ) from exc

    def _adopt_shadow(self, shadow: "SystemX") -> None:
        """Atomically swap the shadow engine's storage in as our own."""
        self.data = shadow.data
        self.disk = shadow.disk
        self.pool = shadow.pool
        self.statistics = shadow.statistics
        self.artifacts = shadow.artifacts
        self._built = shadow._built
        self._shard_children = None
        self.disk.stats = QueryStats()

    def snapshot_tables(self):
        """The tables a reference oracle should replay: the current base
        merged with any pending delta (post-move, the adopted base)."""
        if self._writes is None:
            return self.data.tables
        return self._writes.effective_tables()

    def recover(self, journal=None, committed_lsn: Optional[int] = None,
                stats: Optional[QueryStats] = None,
                tracer: Optional[Tracer] = None):
        """Cold-start crash recovery: replay the redo journal against the
        genesis tables, roll a committed move forward, refresh stale
        zone-map sidecars, and adopt the recovered write store.  Returns
        a :class:`~repro.write.recovery.RecoveryReport`; see
        ``docs/writes.md`` ("Crash recovery")."""
        from ..write.recovery import recover_engine

        return recover_engine(self, journal, committed_lsn, stats, tracer)

    def storage_bytes(self) -> int:
        """Total simulated disk occupied by all built artifacts."""
        return self.disk.total_bytes

    def explain(self, query: StarQuery, design: DesignKind,
                prune_partitions: bool = True, analyze: bool = False) -> str:
        """Describe the plan ``design`` would execute for ``query``
        (Section 6.2.1's plan shapes), without perturbing any ledger.

        ``analyze=True`` additionally runs the query on a throwaway
        ledger and appends the observed per-phase span tree."""
        from .explain import explain as _explain, render_span_section

        if design not in self._built:
            raise PlanError(
                f"design {design.value} was not built; available: "
                f"{[d.value for d in self.designs]}"
            )
        text = _explain(self.data, self.artifacts, query, design,
                        prune_partitions=prune_partitions)
        if analyze:
            saved = self.disk.stats
            try:
                run = self.execute(query, design,
                                   prune_partitions=prune_partitions)
            finally:
                self.disk.stats = saved
            text += "\n" + render_span_section(run.trace)
        return text


__all__ = ["SystemX", "RowStoreRun", "PAPER_BUFFER_POOL_BYTES",
           "PAPER_JOIN_MEMORY_BYTES"]
