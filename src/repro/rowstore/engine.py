"""The System X facade: build designs once, execute queries against them.

:class:`SystemX` owns a simulated disk, a buffer pool, and the artifacts
of whichever physical designs were requested.  Resource sizes scale with
the data's scale factor so that the paper's 500 MB buffer pool and 1.5 GB
sort/join memory (configured for SF 10) keep their *relative* size: a run
at SF 0.05 gets 0.5 % of each, preserving spill and caching behaviour.

``execute`` isolates each query on a fresh ledger and converts the
measured counts to simulated seconds with the shared
:class:`~repro.simio.stats.CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ChecksumError, CorruptPageError, PlanError
from ..obs import Trace, Tracer
from ..plan.logical import StarQuery
from ..result import ResultSet
from ..simio.buffer_pool import BufferPool
from ..simio.disk import SimulatedDisk
from ..simio.stats import CostBreakdown, CostModel, QueryStats
from ..simio.stats import PAPER_2008
from ..ssb.generator import SsbData
from .designs import Artifacts, DesignBuilder, DesignKind
from .operators import SpillAccountant
from .planner import RowPlanner
from .statistics import CatalogStatistics

#: Paper configuration at SF 10 (Section 6.2), scaled by sf/10 at runtime.
PAPER_BUFFER_POOL_BYTES = 500 * 1024 * 1024
PAPER_JOIN_MEMORY_BYTES = 3 * 512 * 1024 * 1024  # "1.5 GB maximum memory"
PAPER_SCALE_FACTOR = 10.0
MIN_POOL_BYTES = 8 * 32 * 1024


@dataclass
class RowStoreRun:
    """Outcome of one query execution."""

    result: ResultSet
    stats: QueryStats
    cost: CostBreakdown
    #: per-phase span tree; verified to sum exactly to ``stats``
    trace: Optional[Trace] = None
    #: which shards ran / were eliminated (sharded executions only)
    shard_report: Optional[object] = None

    @property
    def seconds(self) -> float:
        """Simulated seconds on the paper's hardware."""
        return self.cost.total_seconds


class SystemX:
    """A commercial-style row store over the simulated disk.

    Parameters
    ----------
    data:
        The generated SSB database.
    designs:
        Which physical designs to materialize (each costs load time and
        simulated disk space); defaults to all five.
    cost_model:
        Converts measured work into simulated seconds.
    buffer_pool_bytes / join_memory_bytes:
        Override the sf-scaled defaults (mostly for ablation benches).
    zone_maps:
        Consult per-page min/max synopses before heap scans, skipping
        pages that cannot satisfy the pushed-down predicates.  Off by
        default (the paper's System X reads every page).
    shards:
        Scatter-gather sharding: split the fact table into this many
        self-contained shards, each a complete child ``SystemX`` on its
        own disk array (see ``docs/sharding.md``).  1 (default) keeps
        the unchanged single-stack path.
    """

    def __init__(
        self,
        data: SsbData,
        designs: Optional[Sequence[DesignKind]] = None,
        cost_model: CostModel = PAPER_2008,
        buffer_pool_bytes: Optional[int] = None,
        join_memory_bytes: Optional[int] = None,
        zone_maps: bool = False,
        shards: int = 1,
    ) -> None:
        if shards < 1:
            raise PlanError(f"shards must be >= 1, got {shards}")
        self.data = data
        self.cost_model = cost_model
        self.zone_maps = zone_maps
        self.shards = shards
        #: [(FactShard, child SystemX)], built lazily on first sharded run
        self._shard_children: Optional[List[Tuple[object, "SystemX"]]] = None
        scale = data.scale_factor / PAPER_SCALE_FACTOR
        if buffer_pool_bytes is None:
            buffer_pool_bytes = max(MIN_POOL_BYTES,
                                    int(PAPER_BUFFER_POOL_BYTES * scale))
        if join_memory_bytes is None:
            join_memory_bytes = max(MIN_POOL_BYTES,
                                    int(PAPER_JOIN_MEMORY_BYTES * scale))
        self._pool_bytes = buffer_pool_bytes
        self.disk = SimulatedDisk()
        self.pool = BufferPool(self.disk, buffer_pool_bytes)
        self.join_memory_bytes = join_memory_bytes
        # ANALYZE at load time: the planner orders joins from these
        self.statistics = CatalogStatistics(data.tables)
        self.artifacts = Artifacts()
        self._built: set = set()
        builder = DesignBuilder(self.disk, data)
        builder.build_dimensions(self.artifacts)
        for design in (designs if designs is not None else list(DesignKind)):
            self.add_design(design)

    def add_design(self, design: DesignKind) -> None:
        """Materialize one design's artifacts (idempotent; propagated to
        shard children when sharding is active)."""
        if design in self._built:
            return
        builder = DesignBuilder(self.disk, self.data)
        if design in (DesignKind.TRADITIONAL, DesignKind.TRADITIONAL_BITMAP):
            builder.build_traditional(self.artifacts)
        if design is DesignKind.TRADITIONAL_BITMAP:
            builder.build_bitmaps(self.artifacts)
        if design is DesignKind.MATERIALIZED_VIEWS:
            builder.build_materialized_views(self.artifacts)
        if design is DesignKind.VERTICAL_PARTITIONING:
            builder.build_vertical_partitions(self.artifacts)
        if design is DesignKind.INDEX_ONLY:
            builder.build_indexes(self.artifacts)
        self._built.add(design)
        if self._shard_children is not None:
            for _shard, child in self._shard_children:
                child.add_design(design)

    @property
    def designs(self) -> List[DesignKind]:
        return sorted(self._built, key=lambda d: d.value)

    def execute(
        self,
        query: StarQuery,
        design: DesignKind,
        prune_partitions: bool = True,
        vp_join: str = "hash",
        vp_super_tuples: bool = False,
        cold_pool: bool = True,
        cancellation=None,
    ) -> RowStoreRun:
        """Run ``query`` under ``design`` on a fresh ledger.

        ``vp_join`` applies to the vertical-partitioning design only:
        ``"hash"`` (System X's actual behaviour) or ``"merge"`` (the
        sort-free merge join the paper says System X could not be coaxed
        into, Section 6.2.2).  ``vp_super_tuples=True`` stores the
        vertical partitions as header-free, position-implicit "super
        tuples" scanned block-at-a-time — the storage/executor
        improvements the paper's conclusion lists (built lazily on first
        use).  ``cold_pool=False`` keeps whatever the buffer pool holds
        from previous runs — the paper's warm-pool measurement protocol
        (Section 6.1).  ``cancellation`` installs a cooperative
        :class:`~repro.serve.resilience.CancellationToken` checked at
        page boundaries (typed
        :class:`~repro.errors.QueryCancelledError`)."""
        if design not in self._built:
            raise PlanError(
                f"design {design.value} was not built; available: "
                f"{[d.value for d in self.designs]}"
            )
        if self.shards > 1:
            return self._execute_sharded(
                query, design, prune_partitions=prune_partitions,
                vp_join=vp_join, vp_super_tuples=vp_super_tuples,
                cold_pool=cold_pool, cancellation=cancellation)
        if vp_super_tuples and not self.artifacts.vp_super_heaps:
            DesignBuilder(self.disk, self.data) \
                .build_super_vertical_partitions(self.artifacts)
        stats = QueryStats()
        self.disk.stats = stats
        # default: start from a cold pool so measurements are
        # order-independent (the pool is 0.5% of the data, mirroring the
        # paper's 500 MB at SF 10, so warmth barely shifts results)
        if cold_pool:
            self.pool.clear()
        else:
            self.disk.reset_head()
        spill = SpillAccountant(self.disk, self.join_memory_bytes)
        tracer = Tracer(stats, self.cost_model)
        planner = RowPlanner(self.pool, self.artifacts, self.data, spill,
                             statistics=self.statistics, tracer=tracer,
                             zone_maps=self.zone_maps)
        saved_cancellation = self.disk.cancellation
        if cancellation is not None:
            self.disk.cancellation = cancellation
        try:
            result = planner.run(query, design,
                                 prune_partitions=prune_partitions,
                                 vp_join=vp_join,
                                 vp_super_tuples=vp_super_tuples)
        except ChecksumError as error:
            # The row store keeps one copy of every artifact — there is
            # no redundant projection to re-plan against, so a persistent
            # corrupt page is final (but typed, never a wrong result).
            raise CorruptPageError(
                error.file, error.page_no, error.disk_no,
                detail="row-store artifacts have no redundant copy",
            ) from error
        finally:
            self.disk.cancellation = saved_cancellation
        trace = tracer.finish(stats)
        return RowStoreRun(result, stats, self.cost_model.cost(stats),
                           trace=trace)

    # ------------------------------------------------------------------ #
    # sharded execution
    # ------------------------------------------------------------------ #
    def shard_children(self) -> List[Tuple[object, "SystemX"]]:
        """The shard set behind ``shards > 1``: each entry pairs a
        :class:`~repro.shard.partition.FactShard` with a complete child
        ``SystemX`` on its own simulated disk array.  Built once and
        reused across queries."""
        if self._shard_children is not None:
            return self._shard_children
        from ..shard.partition import ShardScheme, partition_data

        scheme = (ShardScheme.RANGE
                  if self.data.lineorder.sort_order.sorted_prefix_of(
                      "orderdate")
                  else ShardScheme.HASH)
        child_pool = max(MIN_POOL_BYTES, self._pool_bytes // self.shards)
        child_join = max(MIN_POOL_BYTES,
                         self.join_memory_bytes // self.shards)
        self._shard_children = [
            (shard, SystemX(shard.data, designs=self.designs,
                            cost_model=self.cost_model,
                            buffer_pool_bytes=child_pool,
                            join_memory_bytes=child_join,
                            zone_maps=self.zone_maps))
            for shard in partition_data(self.data, self.shards, scheme)
        ]
        return self._shard_children

    def _execute_sharded(
        self,
        query: StarQuery,
        design: DesignKind,
        *,
        prune_partitions: bool,
        vp_join: str,
        vp_super_tuples: bool,
        cold_pool: bool,
        cancellation,
    ) -> RowStoreRun:
        from ..shard.executor import scatter_gather

        children = self.shard_children()

        def execute_one(k: int, shard_query: StarQuery) -> RowStoreRun:
            return children[k][1].execute(
                shard_query, design, prune_partitions=prune_partitions,
                vp_join=vp_join, vp_super_tuples=vp_super_tuples,
                cold_pool=cold_pool, cancellation=cancellation)

        result, stats, trace, report = scatter_gather(
            query, [shard.synopsis for shard, _engine in children],
            self.data.date, execute_one, self.cost_model)
        return RowStoreRun(result, stats, self.cost_model.cost(stats),
                           trace=trace, shard_report=report)

    def storage_bytes(self) -> int:
        """Total simulated disk occupied by all built artifacts."""
        return self.disk.total_bytes

    def explain(self, query: StarQuery, design: DesignKind,
                prune_partitions: bool = True, analyze: bool = False) -> str:
        """Describe the plan ``design`` would execute for ``query``
        (Section 6.2.1's plan shapes), without perturbing any ledger.

        ``analyze=True`` additionally runs the query on a throwaway
        ledger and appends the observed per-phase span tree."""
        from .explain import explain as _explain, render_span_section

        if design not in self._built:
            raise PlanError(
                f"design {design.value} was not built; available: "
                f"{[d.value for d in self.designs]}"
            )
        text = _explain(self.data, self.artifacts, query, design,
                        prune_partitions=prune_partitions)
        if analyze:
            saved = self.disk.stats
            try:
                run = self.execute(query, design,
                                   prune_partitions=prune_partitions)
            finally:
                self.disk.stats = saved
            text += "\n" + render_span_section(run.trace)
        return text


__all__ = ["SystemX", "RowStoreRun", "PAPER_BUFFER_POOL_BYTES",
           "PAPER_JOIN_MEMORY_BYTES"]
