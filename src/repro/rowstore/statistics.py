"""Optimizer statistics: equi-depth histograms and selectivity estimation.

A commercial row store orders joins from catalog statistics, not by
peeking at filtered results.  This module provides the classic
ANALYZE-style machinery: one equi-depth histogram per column (built once
at load time over dictionary codes for strings, so range semantics carry
over), a distinct-value count, and conjunctive selectivity estimation
under the usual attribute-independence assumption.

:class:`TableStatistics` estimates any IR predicate;
:class:`CatalogStatistics` holds them per table.  The row-store planner
uses the estimates to pick its dimension join order (most selective
first), exactly the decision the paper's System X makes from its own
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..errors import SchemaError
from ..plan.logical import (
    CompareOp,
    Comparison,
    InSet,
    Predicate,
    RangePredicate,
)
from ..reference.predicates import (
    code_bounds_for_range,
    comparison_as_code_bounds,
)
from ..storage.column import Column
from ..storage.table import Table

DEFAULT_BUCKETS = 32


@dataclass(frozen=True)
class Histogram:
    """Most-common values + an equi-depth histogram over the rest.

    As in a production ANALYZE: values holding at least a bucket's worth
    of rows get exact counts in the MCV list; the remaining rows go into
    an equi-depth histogram (``boundaries`` holds ``num_buckets + 1``
    half-open edges).  Estimation error on the histogram part is bounded
    by a bucket; MCV hits are exact.
    """

    boundaries: np.ndarray
    counts: np.ndarray
    mcv_values: np.ndarray
    mcv_counts: np.ndarray
    num_rows: int
    num_distinct: int

    @classmethod
    def build(cls, values: np.ndarray,
              buckets: int = DEFAULT_BUCKETS) -> "Histogram":
        n = len(values)
        empty = np.zeros(0, dtype=np.int64)
        if n == 0:
            return cls(np.zeros(2, dtype=np.int64),
                       np.zeros(1, dtype=np.int64), empty, empty, 0, 0)
        ordered = np.sort(values.astype(np.int64))
        uniq, uniq_counts = np.unique(ordered, return_counts=True)
        distinct = int(len(uniq))
        # MCV list: any value holding >= one bucket's share of rows
        threshold = max(2, n // max(buckets, 1))
        heavy = uniq_counts >= threshold
        mcv_values = uniq[heavy]
        mcv_counts = uniq_counts[heavy].astype(np.int64)
        rest = ordered[~np.isin(ordered, mcv_values)] if heavy.any() \
            else ordered
        if len(rest) == 0:
            boundaries = np.zeros(2, dtype=np.int64)
            counts = np.zeros(1, dtype=np.int64)
        else:
            rest_distinct = max(int(len(np.unique(rest))), 1)
            k = max(1, min(buckets, rest_distinct))
            quantiles = np.linspace(0, len(rest) - 1, k + 1).astype(
                np.int64)
            boundaries = rest[quantiles].astype(np.int64)
            boundaries[-1] = rest[-1] + 1  # half-open top
            boundaries = np.unique(boundaries)
            counts = np.histogram(rest, bins=boundaries)[0].astype(
                np.int64)
        return cls(boundaries, counts, mcv_values, mcv_counts, n, distinct)

    # ------------------------------------------------------------------ #
    @property
    def num_buckets(self) -> int:
        return len(self.counts)

    @property
    def _rest_rows(self) -> int:
        return self.num_rows - int(self.mcv_counts.sum())

    def _rest_range(self, low: int, high: int) -> float:
        """Row count (not fraction) from the histogram part."""
        if self._rest_rows == 0:
            return 0.0
        edges = self.boundaries
        lo = max(low, int(edges[0]))
        hi = min(high, int(edges[-1]) - 1)
        if hi < lo:
            return 0.0
        first = max(int(np.searchsorted(edges, lo, side="right")) - 1, 0)
        last = min(int(np.searchsorted(edges, hi, side="right")) - 1,
                   self.num_buckets - 1)
        total = 0.0
        for b in range(first, last + 1):
            b_lo, b_hi = int(edges[b]), int(edges[b + 1]) - 1
            width = max(b_hi - b_lo + 1, 1)
            overlap = min(hi, b_hi) - max(lo, b_lo) + 1
            if overlap > 0:
                total += self.counts[b] * (overlap / width)
        return total

    def estimate_range(self, low: int, high: int) -> float:
        """Estimated fraction of rows with value in [low, high]."""
        if self.num_rows == 0 or high < low:
            return 0.0
        in_range = (self.mcv_values >= low) & (self.mcv_values <= high)
        exact = float(self.mcv_counts[in_range].sum())
        return min((exact + self._rest_range(low, high)) / self.num_rows,
                   1.0)

    def estimate_eq(self, value: int) -> float:
        """Estimated fraction equal to ``value`` (exact for MCVs,
        uniform-in-bucket otherwise)."""
        if self.num_rows == 0 or self.num_distinct == 0:
            return 0.0
        hit = np.searchsorted(self.mcv_values, value)
        if hit < len(self.mcv_values) and self.mcv_values[hit] == value:
            return float(self.mcv_counts[hit]) / self.num_rows
        edges = self.boundaries
        if self._rest_rows == 0 or value < edges[0] or value >= edges[-1]:
            return 0.0
        bucket = max(0, min(int(np.searchsorted(edges, value,
                                                side="right")) - 1,
                            self.num_buckets - 1))
        b_lo, b_hi = int(edges[bucket]), int(edges[bucket + 1]) - 1
        width = max(b_hi - b_lo + 1, 1)
        return min((self.counts[bucket] / width) / self.num_rows, 1.0)


class TableStatistics:
    """Histograms for every column of one table."""

    def __init__(self, table: Table, buckets: int = DEFAULT_BUCKETS) -> None:
        self.table_name = table.name
        self.num_rows = table.num_rows
        self._columns: Dict[str, Column] = {
            c.name: c for c in table.columns()
        }
        self._histograms: Dict[str, Histogram] = {
            c.name: Histogram.build(c.data, buckets)
            for c in table.columns()
        }

    def histogram(self, column: str) -> Histogram:
        try:
            return self._histograms[column]
        except KeyError:
            raise SchemaError(
                f"no statistics for column {column!r} of "
                f"{self.table_name!r}"
            ) from None

    def estimate_predicate(self, pred: Predicate) -> float:
        """Estimated selectivity of one predicate in [0, 1]."""
        column = self._columns[pred.column]
        hist = self.histogram(pred.column)
        if isinstance(pred, Comparison):
            lo, hi = comparison_as_code_bounds(column, pred)
            if pred.op is CompareOp.EQ:
                return hist.estimate_eq(lo)
            return hist.estimate_range(lo, hi)
        if isinstance(pred, RangePredicate):
            lo, hi = code_bounds_for_range(column, pred.low, pred.high)
            return hist.estimate_range(lo, hi)
        if isinstance(pred, InSet):
            total = 0.0
            for v in pred.values:
                code = column.encode_literal(v)
                if code is not None:
                    total += hist.estimate_eq(code)
            return min(total, 1.0)
        raise SchemaError(f"unknown predicate type {type(pred).__name__}")

    def estimate_conjunction(self, predicates: Sequence[Predicate]
                             ) -> float:
        """Independence-assumption product of predicate selectivities."""
        selectivity = 1.0
        for pred in predicates:
            selectivity *= self.estimate_predicate(pred)
        return selectivity


class CatalogStatistics:
    """ANALYZE output for a whole database."""

    def __init__(self, tables: Dict[str, Table],
                 buckets: int = DEFAULT_BUCKETS) -> None:
        self.tables = {
            name: TableStatistics(table, buckets)
            for name, table in tables.items()
        }

    def table(self, name: str) -> TableStatistics:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"no statistics for table {name!r}") from None

    def estimate_dimension(self, dim: str, predicates: Sequence[Predicate]
                           ) -> float:
        """Estimated fraction of dimension rows surviving ``predicates``."""
        if not predicates:
            return 1.0
        return self.table(dim).estimate_conjunction(predicates)


__all__ = ["Histogram", "TableStatistics", "CatalogStatistics",
           "DEFAULT_BUCKETS"]
