"""Bitmap indexes, stored as compressed rid lists.

System X's bitmap plans (the paper's "traditional (bitmap)" configuration)
map each distinct column value to the set of rids holding it.  Like
modern word-aligned-hybrid bitmap implementations, the per-value bitmap is
kept compressed; an equality predicate reads one value's rid set, a range
or IN predicate ORs several, and conjunction intersects rid sets from
different columns.

Physical layout: each value's rid list is delta + bit-packed (ascending
rids compress well), all blobs are packed back-to-back into 32 KB pages,
and an in-memory directory maps value -> (byte offset, length).  Reading
a value's rid set reads exactly the pages its blob spans, so sparse
probes cost a page or two while ORing many values degrades toward a full
index scan — the behaviour behind the paper's observation that "merging
bitmaps adds some overhead and bitmap scans can be slower than pure
sequential scans" (Section 6.2.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import StorageError
from ..simio.buffer_pool import BufferPool
from ..simio.disk import PAGE_SIZE, SimulatedDisk
from ..storage.encodings import decode_payload
from ..storage.encodings.delta import DELTA


class BitmapIndex:
    """value -> compressed rid set, for one column of one table."""

    def __init__(self, disk: SimulatedDisk, name: str,
                 directory: Dict[int, Tuple[int, int]], num_rows: int) -> None:
        self.disk = disk
        self.name = name
        self.directory = directory
        self.num_rows = num_rows

    @classmethod
    def build(cls, disk: SimulatedDisk, name: str, values: np.ndarray
              ) -> "BitmapIndex":
        """Index ``values`` (row i holds values[i]); values are raw codes."""
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        boundaries = np.flatnonzero(np.diff(sorted_values)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(values)]))

        blobs: List[Tuple[int, bytes]] = []
        for s, e in zip(starts, ends):
            rids = np.sort(order[s:e]).astype(np.int64)
            blobs.append((int(sorted_values[s]), DELTA.frame(rids)))

        disk.create(name)
        directory: Dict[int, Tuple[int, int]] = {}
        buffer = bytearray()
        offset = 0
        for value, blob in blobs:
            directory[value] = (offset, len(blob))
            buffer += blob
            offset += len(blob)
        for start in range(0, max(len(buffer), 1), PAGE_SIZE):
            disk.append_page(name, bytes(buffer[start:start + PAGE_SIZE]))
        return cls(disk, name, directory, len(values))

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    @property
    def size_bytes(self) -> int:
        return self.disk.file(self.name).size_bytes

    @property
    def num_values(self) -> int:
        return len(self.directory)

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def read_rids(self, pool: BufferPool, value: int) -> np.ndarray:
        """The ascending rid set for one value (empty if absent)."""
        entry = self.directory.get(int(value))
        if entry is None:
            return np.zeros(0, dtype=np.int64)
        offset, length = entry
        first_page = offset // PAGE_SIZE
        last_page = (offset + length - 1) // PAGE_SIZE
        chunks = [pool.read_page(self.name, p)
                  for p in range(first_page, last_page + 1)]
        blob = b"".join(chunks)[offset - first_page * PAGE_SIZE:
                                offset - first_page * PAGE_SIZE + length]
        rids = decode_payload(blob)
        pool.stats.values_decompressed += len(rids)
        return rids

    def read_union(self, pool: BufferPool, values: Iterable[int]
                   ) -> np.ndarray:
        """OR together the rid sets of ``values`` (result ascending).

        Charges one position op per rid merged, the bitmap-merge overhead
        the paper calls out.
        """
        parts = [self.read_rids(pool, v) for v in values]
        parts = [p for p in parts if len(p)]
        if not parts:
            return np.zeros(0, dtype=np.int64)
        merged = np.sort(np.concatenate(parts))
        pool.stats.position_ops += len(merged)
        return merged

    def read_range(self, pool: BufferPool, low: int, high: int
                   ) -> np.ndarray:
        """OR of every value in [low, high] that exists in the directory."""
        hits = [v for v in self.directory if low <= v <= high]
        return self.read_union(pool, sorted(hits))


def intersect_rid_sets(pool: BufferPool, rid_sets: Sequence[np.ndarray]
                       ) -> np.ndarray:
    """AND rid sets from different columns (all ascending).

    Charges a position op per element inspected, mirroring bitmap AND
    cost.
    """
    if not rid_sets:
        raise StorageError("intersect of zero rid sets")
    result = rid_sets[0]
    for other in rid_sets[1:]:
        pool.stats.position_ops += len(result) + len(other)
        result = np.intersect1d(result, other, assume_unique=True)
    return result


__all__ = ["BitmapIndex", "intersect_rid_sets"]
