"""The paper's five row-store physical designs (Section 4 / 6.2).

Each design builds real on-disk structures from the generated SSB data:

* ``TRADITIONAL`` — one heap file per relation, the fact table partitioned
  by orderdate year.
* ``TRADITIONAL_BITMAP`` — traditional, plus bitmap indexes on the fact
  foreign keys and restricted measure columns; plans are biased to use
  them.
* ``MATERIALIZED_VIEWS`` — per query flight, a heap file holding exactly
  the fact columns that flight needs (no pre-joining), partitioned by
  year.
* ``VERTICAL_PARTITIONING`` — one two-column (position, value) heap file
  per fact column, each row paying the tuple header and the position —
  the 16-bytes-per-value overhead of Section 6.2.
* ``INDEX_ONLY`` — unclustered B+Trees on every column of every table;
  dimension-attribute indexes carry the dimension primary key as a
  composite secondary key (the paper's (age, salary) optimization).

Dimension tables are stored as traditional heap files in every design
(the paper's plans always scan or index the small dimensions directly).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..errors import PlanError
from ..simio.disk import SimulatedDisk
from ..ssb.generator import SsbData
from ..ssb.queries import ALL_QUERIES, FLIGHT_OF
from ..storage.column import Column
from ..storage.heapfile import HeapFile
from ..storage.table import Table
from ..types import int32
from .bitmap_index import BitmapIndex
from .btree import BPlusTree
from .partitioning import partition_by_year


class DesignKind(enum.Enum):
    """Physical design identifiers, with the paper's figure labels."""

    TRADITIONAL = "T"
    TRADITIONAL_BITMAP = "T(B)"
    MATERIALIZED_VIEWS = "MV"
    VERTICAL_PARTITIONING = "VP"
    INDEX_ONLY = "AI"


#: Fact columns carrying a bitmap index in the T(B) design.
BITMAPPED_FACT_COLUMNS: Tuple[str, ...] = (
    "custkey", "suppkey", "partkey", "orderdate", "quantity", "discount",
)


@dataclass
class Artifacts:
    """Everything one design materialized on disk."""

    #: table -> heap file (dimensions; and the fact for designs that keep it)
    heaps: Dict[str, HeapFile] = field(default_factory=dict)
    #: fact partitions: year -> heap file
    fact_partitions: Dict[int, HeapFile] = field(default_factory=dict)
    #: flight number -> (year -> heap file) for materialized views
    mv_partitions: Dict[int, Dict[int, HeapFile]] = field(default_factory=dict)
    #: flight number -> MV column list
    mv_columns: Dict[int, List[str]] = field(default_factory=dict)
    #: fact column -> two-column heap file (vertical partitioning)
    vp_heaps: Dict[str, HeapFile] = field(default_factory=dict)
    #: fact column -> header-free single-column heap ("super tuples")
    vp_super_heaps: Dict[str, HeapFile] = field(default_factory=dict)
    #: (table, column) -> B+Tree (index-only design)
    btrees: Dict[Tuple[str, str], BPlusTree] = field(default_factory=dict)
    #: fact column -> bitmap index (T(B) design)
    bitmaps: Dict[str, BitmapIndex] = field(default_factory=dict)

    def total_bytes(self) -> int:
        total = sum(h.size_bytes for h in self.heaps.values())
        total += sum(h.size_bytes for h in self.fact_partitions.values())
        for parts in self.mv_partitions.values():
            total += sum(h.size_bytes for h in parts.values())
        total += sum(h.size_bytes for h in self.vp_heaps.values())
        total += sum(h.size_bytes for h in self.vp_super_heaps.values())
        total += sum(t.size_bytes for t in self.btrees.values())
        total += sum(b.size_bytes for b in self.bitmaps.values())
        return total


def mv_columns_for_flight(flight: int) -> List[str]:
    """Fact columns a flight's materialized view must carry."""
    columns: List[str] = []
    for q in ALL_QUERIES:
        if FLIGHT_OF[q.name] != flight:
            continue
        for c in q.fact_columns_needed():
            if c not in columns:
                columns.append(c)
    if not columns:
        raise PlanError(f"no queries in flight {flight}")
    return columns


class DesignBuilder:
    """Materializes design artifacts onto a simulated disk."""

    def __init__(self, disk: SimulatedDisk, data: SsbData) -> None:
        self.disk = disk
        self.data = data

    # ------------------------------------------------------------------ #
    def build_dimensions(self, artifacts: Artifacts) -> None:
        for name, table in self.data.dimensions().items():
            if name not in artifacts.heaps:
                artifacts.heaps[name] = HeapFile.load(self.disk, f"heap.{name}",
                                                      table)

    def build_traditional(self, artifacts: Artifacts) -> None:
        """Fact heap partitioned by orderdate year."""
        if artifacts.fact_partitions:
            return
        for year, part in partition_by_year(self.data.lineorder).items():
            artifacts.fact_partitions[year] = HeapFile.load(
                self.disk, f"heap.lineorder.y{year}", part)

    def build_fact_unpartitioned(self, artifacts: Artifacts) -> None:
        """One whole-fact heap (bitmap plans address rids globally)."""
        if "lineorder" not in artifacts.heaps:
            artifacts.heaps["lineorder"] = HeapFile.load(
                self.disk, "heap.lineorder", self.data.lineorder)

    def build_bitmaps(self, artifacts: Artifacts) -> None:
        self.build_fact_unpartitioned(artifacts)
        fact = self.data.lineorder
        for column in BITMAPPED_FACT_COLUMNS:
            if column in artifacts.bitmaps:
                continue
            artifacts.bitmaps[column] = BitmapIndex.build(
                self.disk, f"bmp.lineorder.{column}",
                fact.column(column).data)

    def build_materialized_views(self, artifacts: Artifacts) -> None:
        for flight in sorted({FLIGHT_OF[q.name] for q in ALL_QUERIES}):
            if flight in artifacts.mv_partitions:
                continue
            columns = mv_columns_for_flight(flight)
            artifacts.mv_columns[flight] = columns
            view = self.data.lineorder.project(columns,
                                               new_name=f"mv_f{flight}")
            partitions: Dict[int, HeapFile] = {}
            for year, part in partition_by_year(view).items():
                partitions[year] = HeapFile.load(
                    self.disk, f"heap.mv_f{flight}.y{year}", part)
            artifacts.mv_partitions[flight] = partitions

    def build_vertical_partitions(self, artifacts: Artifacts) -> None:
        """One (position, value) heap per fact column."""
        fact = self.data.lineorder
        positions = np.arange(fact.num_rows, dtype=np.int32)
        pos_col_type = int32()
        for column in fact.columns():
            if column.name in artifacts.vp_heaps:
                continue
            two_col = Table(
                f"vp_{column.name}",
                [
                    Column.from_ints("pos", positions, pos_col_type),
                    column,
                ],
            )
            artifacts.vp_heaps[column.name] = HeapFile.load(
                self.disk, f"heap.vp.{column.name}", two_col)

    def build_super_vertical_partitions(self, artifacts: Artifacts) -> None:
        """Header-free, position-implicit vertical partitions — the
        "super tuple" proposal of Halverson et al. and the storage
        improvements this paper's conclusion says a row store would
        need: virtual record-ids, reduced tuple overhead, guaranteed
        position order."""
        fact = self.data.lineorder
        for column in fact.columns():
            if column.name in artifacts.vp_super_heaps:
                continue
            one_col = Table(f"svp_{column.name}", [column])
            artifacts.vp_super_heaps[column.name] = HeapFile.load(
                self.disk, f"heap.svp.{column.name}", one_col,
                header_bytes=0)

    def build_indexes(self, artifacts: Artifacts) -> None:
        """B+Trees on every column of every table (index-only design)."""
        fact = self.data.lineorder
        rids = np.arange(fact.num_rows, dtype=np.int32)
        for column in fact.columns():
            key = ("lineorder", column.name)
            if key not in artifacts.btrees:
                artifacts.btrees[key] = BPlusTree.build(
                    self.disk, f"idx.lineorder.{column.name}",
                    column.data.astype(np.int64), rids)
        for name, dim in self.data.dimensions().items():
            key_column = dim.columns()[0].name  # primary key is first
            dim_keys = dim.column(key_column).data
            dim_rids = np.arange(dim.num_rows, dtype=np.int32)
            for column in dim.columns():
                key = (name, column.name)
                if key in artifacts.btrees:
                    continue
                secondary = None if column.name == key_column else dim_keys
                artifacts.btrees[key] = BPlusTree.build(
                    self.disk, f"idx.{name}.{column.name}",
                    column.data.astype(np.int64), dim_rids,
                    secondary=secondary)


__all__ = [
    "DesignKind",
    "Artifacts",
    "DesignBuilder",
    "mv_columns_for_flight",
    "BITMAPPED_FACT_COLUMNS",
]
