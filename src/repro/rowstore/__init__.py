"""The row-store engine ("System X" in the paper).

A single-threaded, disk-based row store with:

* heap files of headered fixed-width tuples (:mod:`repro.storage.heapfile`);
* unclustered B+Tree indexes with optional composite keys
  (:mod:`repro.rowstore.btree`);
* bitmap indexes stored as compressed rid lists
  (:mod:`repro.rowstore.bitmap_index`);
* a Volcano-style executor (:mod:`repro.rowstore.operators`) whose ledger
  charges tuple-at-a-time interpretation costs — one iterator call and
  1-2 attribute extractions per tuple per operator, as Section 5.3
  describes for row stores;
* the paper's five physical designs (:mod:`repro.rowstore.designs`):
  traditional, traditional(bitmap), vertical partitioning, index-only,
  and per-flight materialized views, with orderdate-year partitioning.

Implementation note: operators move numpy record batches for wall-clock
speed, but the ledger records the work a tuple-at-a-time engine performs
— per-tuple iterator calls, per-tuple attribute extractions, per-tuple
hash probes.  The simulated cost therefore reflects the modeled engine,
not the Python vehicle (see DESIGN.md, "Substitutions").
"""

from .engine import SystemX, RowStoreRun
from .designs import DesignKind

__all__ = ["SystemX", "RowStoreRun", "DesignKind"]
