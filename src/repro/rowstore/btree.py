"""Disk-resident B+Tree indexes.

Unclustered indexes over heap files, supporting the paper's index-only
plans (Section 4): every leaf entry is ``(key, [secondary key,] rid)``, so
a full index scan recovers a column without touching the base table, and
a range scan recovers the rid-list (plus secondary-key values) for a
predicate.

Keys are integers — string columns are indexed on their order-preserving
dictionary codes, which keeps range semantics intact.  Composite keys
(the paper's ``(age, salary)`` example; here ``(attribute, dimension
primary key)``) are supported with a second key field per entry.

Layout: leaves are packed little-endian ``int32`` triples/pairs written
one page each at a configurable fill factor (default 0.67, a typical
steady-state B+Tree occupancy — this is what makes an index scan cost
more bytes than a heap column scan).  Internal levels store separator
keys and child page numbers; the root is the last page.  The tree is
built bottom-up at load time (bulk load) and is read-only afterwards,
like every structure in this read-only benchmark.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..errors import StorageError
from ..simio.buffer_pool import BufferPool
from ..simio.disk import PAGE_SIZE, SimulatedDisk

_LEAF_MAGIC = 0
_INTERNAL_MAGIC = 1
_PAGE_HEADER = struct.Struct("<BHI")  # magic, entry count, next-leaf page


@dataclass(frozen=True)
class LeafBatch:
    """Decoded contents of one leaf page."""

    keys: np.ndarray
    rids: np.ndarray
    secondary: Optional[np.ndarray]


class BPlusTree:
    """A read-only, bulk-loaded B+Tree with int32 keys and rid payloads."""

    def __init__(self, disk: SimulatedDisk, name: str, num_entries: int,
                 num_leaves: int, root_page: int, has_secondary: bool,
                 height: int) -> None:
        self.disk = disk
        self.name = name
        self.num_entries = num_entries
        self.num_leaves = num_leaves
        self.root_page = root_page
        self.has_secondary = has_secondary
        self.height = height

    # ------------------------------------------------------------------ #
    # construction (bulk load)
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        disk: SimulatedDisk,
        name: str,
        keys: np.ndarray,
        rids: np.ndarray,
        secondary: Optional[np.ndarray] = None,
        fill_factor: float = 0.67,
    ) -> "BPlusTree":
        """Bulk-load a tree from unsorted ``(key[, secondary], rid)`` data.

        Entries are sorted by (key, secondary, rid) — the order an index
        scan returns them in.
        """
        if not 0.1 <= fill_factor <= 1.0:
            raise StorageError(f"unreasonable fill factor {fill_factor}")
        n = len(keys)
        if len(rids) != n or (secondary is not None and len(secondary) != n):
            raise StorageError("keys/rids/secondary lengths differ")
        keys = keys.astype(np.int32)
        rids = rids.astype(np.int32)
        if secondary is not None:
            secondary = secondary.astype(np.int32)
            order = np.lexsort((rids, secondary, keys))
            secondary = secondary[order]
        else:
            order = np.lexsort((rids, keys))
        keys = keys[order]
        rids = rids[order]

        disk.create(name)
        entry_width = 12 if secondary is not None else 8
        capacity = (PAGE_SIZE - _PAGE_HEADER.size) // entry_width
        per_leaf = max(1, int(capacity * fill_factor))

        # --- leaves ---
        leaf_pages: List[int] = []
        leaf_first_keys: List[int] = []
        for start in range(0, max(n, 1), per_leaf):
            k = keys[start:start + per_leaf]
            r = rids[start:start + per_leaf]
            s = secondary[start:start + per_leaf] if secondary is not None else None
            if n == 0:
                k = keys[:0]
                r = rids[:0]
                s = None if secondary is None else secondary[:0]
            payload = cls._leaf_payload(k, r, s)
            page_no = disk.append_page(name, payload)
            leaf_pages.append(page_no)
            leaf_first_keys.append(int(k[0]) if len(k) else 0)
            if n == 0:
                break
        # patch next-leaf pointers: leaves were appended consecutively, so
        # leaf i's successor is leaf i+1; rewrite headers in place
        # (rewrite_page keeps the stored page checksums consistent).
        f = disk.file(name)
        for i, page_no in enumerate(leaf_pages):
            nxt = leaf_pages[i + 1] if i + 1 < len(leaf_pages) else 0xFFFFFFFF
            old = f.pages[page_no]
            magic, count, _ = _PAGE_HEADER.unpack_from(old, 0)
            disk.rewrite_page(
                name, page_no,
                _PAGE_HEADER.pack(magic, count, nxt) + old[_PAGE_HEADER.size:])

        # --- internal levels ---
        height = 1
        level_pages = leaf_pages
        level_keys = leaf_first_keys
        fan_out = (PAGE_SIZE - _PAGE_HEADER.size) // 8
        per_node = max(2, int(fan_out * fill_factor))
        while len(level_pages) > 1:
            next_pages: List[int] = []
            next_keys: List[int] = []
            for start in range(0, len(level_pages), per_node):
                child_pages = level_pages[start:start + per_node]
                child_keys = level_keys[start:start + per_node]
                payload = cls._internal_payload(child_keys, child_pages)
                page_no = disk.append_page(name, payload)
                next_pages.append(page_no)
                next_keys.append(child_keys[0])
            level_pages, level_keys = next_pages, next_keys
            height += 1
        return cls(disk, name, n, len(leaf_pages), level_pages[0],
                   secondary is not None, height)

    @staticmethod
    def _leaf_payload(keys: np.ndarray, rids: np.ndarray,
                      secondary: Optional[np.ndarray]) -> bytes:
        header = _PAGE_HEADER.pack(_LEAF_MAGIC, len(keys), 0xFFFFFFFF)
        body = keys.astype("<i4").tobytes()
        if secondary is not None:
            body += secondary.astype("<i4").tobytes()
        body += rids.astype("<i4").tobytes()
        return header + body

    @staticmethod
    def _internal_payload(child_keys: List[int], child_pages: List[int]
                          ) -> bytes:
        header = _PAGE_HEADER.pack(_INTERNAL_MAGIC, len(child_keys),
                                   0xFFFFFFFF)
        body = np.asarray(child_keys, dtype="<i4").tobytes()
        body += np.asarray(child_pages, dtype="<u4").tobytes()
        return header + body

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    @property
    def size_bytes(self) -> int:
        return self.disk.file(self.name).size_bytes

    @property
    def num_pages(self) -> int:
        return self.disk.file(self.name).num_pages

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def _parse_leaf(self, payload: bytes) -> Tuple[LeafBatch, int]:
        magic, count, next_leaf = _PAGE_HEADER.unpack_from(payload, 0)
        if magic != _LEAF_MAGIC:
            raise StorageError(f"page is not a leaf in index {self.name!r}")
        off = _PAGE_HEADER.size
        keys = np.frombuffer(payload, dtype="<i4", count=count, offset=off)
        off += 4 * count
        secondary = None
        if self.has_secondary:
            secondary = np.frombuffer(payload, dtype="<i4", count=count,
                                      offset=off)
            off += 4 * count
        rids = np.frombuffer(payload, dtype="<i4", count=count, offset=off)
        return LeafBatch(keys, rids, secondary), next_leaf

    def _parse_internal(self, payload: bytes
                        ) -> Tuple[np.ndarray, np.ndarray]:
        magic, count, _ = _PAGE_HEADER.unpack_from(payload, 0)
        if magic != _INTERNAL_MAGIC:
            raise StorageError(
                f"page is not an internal node in index {self.name!r}"
            )
        off = _PAGE_HEADER.size
        keys = np.frombuffer(payload, dtype="<i4", count=count, offset=off)
        pages = np.frombuffer(payload, dtype="<u4", count=count,
                              offset=off + 4 * count)
        return keys, pages

    def scan_leaves(self, pool: BufferPool) -> Iterator[LeafBatch]:
        """Full index scan: every leaf in key order (sequential I/O)."""
        for page_no in range(self.num_leaves):
            batch, _next = self._parse_leaf(pool.read_page(self.name, page_no))
            yield batch

    def _descend_to_leaf(self, pool: BufferPool, key: int) -> int:
        """Walk the root-to-leaf path to the first leaf that may contain
        ``key``.  With duplicate keys an equal run can begin in the leaf
        *before* the first separator equal to ``key``, so the descent
        biases one child early (side="left" minus one); the range scan
        then walks forward past any leading non-matching entries."""
        page_no = self.root_page
        for _level in range(self.height - 1):
            keys, pages = self._parse_internal(pool.read_page(self.name,
                                                              page_no))
            child = int(np.searchsorted(keys, key, side="left")) - 1
            page_no = int(pages[max(child, 0)])
        return page_no

    def range_scan(self, pool: BufferPool, low: int, high: int
                   ) -> Iterator[LeafBatch]:
        """Leaves trimmed to entries with ``low <= key <= high``.

        Descends from the root (random page reads), then walks the leaf
        chain sequentially.
        """
        if self.num_entries == 0 or low > high:
            return
        page_no = self._descend_to_leaf(pool, low)
        while page_no != 0xFFFFFFFF:
            batch, next_leaf = self._parse_leaf(
                pool.read_page(self.name, page_no))
            lo = int(np.searchsorted(batch.keys, low, side="left"))
            hi = int(np.searchsorted(batch.keys, high, side="right"))
            if hi > lo:
                yield LeafBatch(
                    batch.keys[lo:hi],
                    batch.rids[lo:hi],
                    None if batch.secondary is None else batch.secondary[lo:hi],
                )
            if len(batch.keys) == 0 or (len(batch.keys) and
                                        batch.keys[-1] > high):
                return
            page_no = next_leaf

    def lookup(self, pool: BufferPool, key: int) -> np.ndarray:
        """Rids of every entry with exactly ``key``."""
        rids: List[np.ndarray] = []
        for batch in self.range_scan(pool, key, key):
            rids.append(batch.rids)
        if not rids:
            return np.zeros(0, dtype=np.int32)
        return np.concatenate(rids)

    def verify(self, pool: BufferPool) -> bool:
        """Structural check: keys non-decreasing across the leaf chain."""
        previous = None
        total = 0
        for batch in self.scan_leaves(pool):
            if len(batch.keys) == 0:
                continue
            if np.any(np.diff(batch.keys) < 0):
                return False
            if previous is not None and batch.keys[0] < previous:
                return False
            previous = int(batch.keys[-1])
            total += len(batch.keys)
        return total == self.num_entries


__all__ = ["BPlusTree", "LeafBatch"]
