"""Lowering StarQuery to physical plans, one routine per design.

The plan shapes follow Section 6.2.1 of the paper:

* **traditional / MV** — scan the (partition-pruned) fact heap with fact
  predicates pushed down, pipeline hash joins against filtered dimension
  hash tables in selectivity order, hash-aggregate, sort.
* **traditional (bitmap)** — turn every dimension predicate into a union
  of fact-FK bitmap rid sets and every (bitmapped) fact predicate into a
  bitmap range read; intersect rid sets; fetch qualifying fact tuples by
  rid; join out group-by attributes; aggregate.
* **vertical partitioning** — scan each needed fact column-table (pos,
  value); hash-join FK column scans against filtered dimensions; then
  hash-join the per-column result sets together on position; measure
  columns are picked up last with one more position join each.
* **index-only** — full (or range) index scans over each needed fact
  column joined on rid *before* any dimension filtering (System X cannot
  defer these joins — Section 6.2.2), then dimension attribute indexes
  (composite (attribute, primary key) keys) are range/full scanned,
  rid-joined, and hash-joined to the fact result.

All plans share the hash-aggregate + result-sort tail and the honest
spill accounting of :class:`~repro.rowstore.operators.SpillAccountant`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import PlanError
from ..obs import Tracer, span_context
from ..plan.logical import (
    ColumnRef,
    Comparison,
    InSet,
    Predicate,
    RangePredicate,
    StarQuery,
)
from ..reference.predicates import (
    code_bounds_for_range,
    comparison_as_code_bounds,
)
from ..result import ResultSet
from ..simio.buffer_pool import BufferPool
from ..simio.stats import QueryStats
from ..ssb.generator import SsbData
from ..ssb.queries import FLIGHT_OF
from ..storage.heapfile import HeapFile
from ..storage.table import Table
from .bitmap_index import intersect_rid_sets
from .designs import Artifacts, DesignKind
from .operators import (
    HashAggregator,
    HashTable,
    RowBatch,
    SpillAccountant,
    charge_result_sort,
    eval_expr_rows,
    hash_join,
    heap_fetch,
    index_full_scan,
    index_range_scan,
    qualified,
    seq_scan,
    super_tuple_scan,
)
from .partitioning import qualifying_years, year_of_datekey


class RowPlanner:
    """Executes StarQueries against one set of design artifacts."""

    def __init__(
        self,
        pool: BufferPool,
        artifacts: Artifacts,
        catalog: SsbData,
        spill: SpillAccountant,
        statistics=None,
        tracer: Optional[Tracer] = None,
        zone_maps: bool = False,
        visibility=None,
    ) -> None:
        self.pool = pool
        self.artifacts = artifacts
        self.catalog = catalog
        self.spill = spill
        #: consult heap synopsis sidecars to skip non-qualifying pages
        self.zone_maps = zone_maps
        if statistics is None:
            from .statistics import CatalogStatistics

            statistics = CatalogStatistics(catalog.tables)
        self.statistics = statistics
        #: optional span tracer (tracing is passive: ledgers are
        #: byte-identical with or without one attached)
        self.tracer = tracer
        #: optional MVCC snapshot (:class:`repro.write.Visibility`).  Only
        #: a fact deleted-mask needs plan-side work: FK integrity keeps
        #: dimension heaps and their hash tables patch-free, and pending
        #: inserts are merged by the engine's delta evaluator, never here.
        self.visibility = visibility
        self._fact_live: Optional[np.ndarray] = None
        if visibility is not None and visibility.needs_patching:
            self._fact_live = ~visibility.fact_deleted

    def _span(self, name: str):
        return span_context(self.tracer, name)

    @property
    def stats(self) -> QueryStats:
        return self.pool.stats

    # ------------------------------------------------------------------ #
    # entry point
    # ------------------------------------------------------------------ #
    def run(self, query: StarQuery, design: DesignKind,
            prune_partitions: bool = True,
            vp_join: str = "hash",
            vp_super_tuples: bool = False) -> ResultSet:
        if design is DesignKind.TRADITIONAL:
            return self._run_traditional(query, prune_partitions)
        if design is DesignKind.MATERIALIZED_VIEWS:
            return self._run_materialized_view(query, prune_partitions)
        if design is DesignKind.TRADITIONAL_BITMAP:
            return self._run_bitmap(query)
        if design is DesignKind.VERTICAL_PARTITIONING:
            return self._run_vertical(query, vp_join, vp_super_tuples)
        if design is DesignKind.INDEX_ONLY:
            return self._run_index_only(query)
        raise PlanError(f"unknown design {design}")

    # ------------------------------------------------------------------ #
    # shared pieces
    # ------------------------------------------------------------------ #
    def _dim_hash_tables(self, query: StarQuery
                         ) -> List[Tuple[str, HashTable, float]]:
        """(dimension, filtered hash table, estimated selectivity), most
        selective first.  Join order comes from ANALYZE histograms —
        catalog statistics, not from peeking at the filtered results —
        exactly how a commercial optimizer decides (the estimates are
        also what EXPLAIN prints)."""
        out: List[Tuple[str, HashTable, float]] = []
        with self._span("dimension-filter"):
            for dim in query.dimensions_used():
                heap = self.artifacts.heaps[dim]
                key_col = query.key_of(dim)
                attrs = query.group_by_of(dim)
                stream = seq_scan(
                    heap, self.pool, dim,
                    out_columns=[key_col] + attrs,
                    predicates=query.dimension_predicates(dim),
                    zone_maps=self.zone_maps,
                )
                table = HashTable.from_stream(
                    stream, qualified(dim, key_col),
                    [qualified(dim, a) for a in attrs], self.stats)
                estimate = self.statistics.estimate_dimension(
                    dim, query.dimension_predicates(dim))
                out.append((dim, table, estimate))
        out.sort(key=lambda item: item[2])
        return out

    def _fact_out_columns(self, query: StarQuery) -> List[str]:
        """Fact columns the scan must emit (FKs, aggregate inputs,
        fact-side group keys) — predicates are applied inside the scan."""
        pred_cols = {p.column for p in query.fact_predicates()}
        return [c for c in query.fact_columns_needed()
                if c not in pred_cols or self._column_needed_beyond_pred(
                    query, c)]

    @staticmethod
    def _column_needed_beyond_pred(query: StarQuery, column: str) -> bool:
        from ..plan.logical import expr_columns

        for agg in query.aggregates:
            for ref in expr_columns(agg.expr):
                if ref.table == query.fact_table and ref.column == column:
                    return True
        for g in query.group_by:
            if g.table == query.fact_table and g.column == column:
                return True
        for fk in query.joins:
            if fk == column:
                return True
        return False

    def _join_and_aggregate(
        self,
        query: StarQuery,
        stream: Iterable[RowBatch],
        dim_tables: List[Tuple[str, HashTable, float]],
        probe_rows_estimate: int,
    ) -> ResultSet:
        """The common tail: pipeline dimension joins, aggregate, sort."""
        for dim, table, _sel in dim_tables:
            fk = query.fk_of(dim)
            prefixing = {
                qualified(dim, a): qualified(dim, a)
                for a in query.group_by_of(dim)
            }
            stream = hash_join(
                stream, qualified(query.fact_table, fk), table, prefixing,
                self.stats, spill=self.spill,
                probe_row_bytes=32, probe_rows_estimate=probe_rows_estimate,
            )
        return self._aggregate(query, stream)

    def _live_filter(self, stream: Iterable[RowBatch], key: str
                     ) -> Iterator[RowBatch]:
        """Visibility check on a position/rid-keyed stream: drop
        snapshot-deleted fact rows, one position op per checked key."""
        live = self._fact_live
        for batch in stream:
            keys = batch.column(key)
            self.stats.position_ops += len(keys)
            keep = live[keys]
            yield batch if keep.all() else batch.take(keep)

    def _aggregate(self, query: StarQuery, stream: Iterable[RowBatch]
                   ) -> ResultSet:
        from ..plan.aggregates import (
            empty_accumulator,
            finalize,
            needs_expr_values,
        )

        group_names = [g.column for g in query.group_by]
        agg_names = [a.alias for a in query.aggregates]
        aggregator = HashAggregator(group_names, agg_names,
                                    [a.func for a in query.aggregates])
        group_keys = [qualified(g.table, g.column) for g in query.group_by]
        # The scan and joins are lazy generators drained by this loop, so
        # their work is indivisible from the aggregation — one honest span
        # covers the whole pipeline rather than pretending to split it.
        with self._span("pipeline:scan-join-aggregate"):
            for batch in stream:
                n = len(batch)
                self.stats.attr_extractions += n * len(group_keys)
                group_arrays = [batch.column(k) for k in group_keys]
                agg_arrays = [
                    eval_expr_rows(a.expr, batch, query.fact_table,
                                   self.stats)
                    if needs_expr_values(a.func)
                    else np.zeros(n, dtype=np.int64)
                    for a in query.aggregates
                ]
                aggregator.consume(group_arrays, agg_arrays, self.stats)
            result = aggregator.result()
            if not query.group_by and not result.rows:
                result.rows.append(tuple(
                    finalize(a.func, *empty_accumulator(a.func))
                    for a in query.aggregates))
        with self._span("sort"):
            result = result.order_by(query.order_by).limited(query.limit)
            charge_result_sort(result, self.stats)
        return result

    # ------------------------------------------------------------------ #
    # traditional and materialized views
    # ------------------------------------------------------------------ #
    def _scan_partitions(
        self,
        query: StarQuery,
        partitions: Dict[int, HeapFile],
        out_columns: List[str],
        prune: bool,
    ) -> Iterator[RowBatch]:
        years = sorted(partitions)
        if prune:
            years = qualifying_years(self.catalog.date, query, years)
        live = self._fact_live
        row_years = None
        if live is not None:
            # partition_by_year keeps parent row order, and MV partitions
            # share the fact's row order, so the per-year slice of the
            # database-wide live mask lines up with each partition heap
            row_years = year_of_datekey(
                self.catalog.lineorder.column("orderdate").data)
        for year in years:
            heap = partitions[year]
            mask = None
            if live is not None:
                mask = live[np.flatnonzero(row_years == year)]
                if mask.all():
                    mask = None
            yield from seq_scan(
                heap, self.pool, query.fact_table,
                out_columns=out_columns,
                predicates=query.fact_predicates(),
                zone_maps=self.zone_maps,
                live_mask=mask,
            )

    def _run_traditional(self, query: StarQuery, prune: bool) -> ResultSet:
        dim_tables = self._dim_hash_tables(query)
        out_columns = self._fact_out_columns(query)
        stream = self._scan_partitions(
            query, self.artifacts.fact_partitions, out_columns, prune)
        estimate = self.catalog.lineorder.num_rows
        return self._join_and_aggregate(query, stream, dim_tables, estimate)

    def _run_materialized_view(self, query: StarQuery, prune: bool
                               ) -> ResultSet:
        flight = FLIGHT_OF.get(query.name)
        if flight is None or flight not in self.artifacts.mv_partitions:
            raise PlanError(
                f"no materialized view covers query {query.name!r}"
            )
        dim_tables = self._dim_hash_tables(query)
        out_columns = self._fact_out_columns(query)
        stream = self._scan_partitions(
            query, self.artifacts.mv_partitions[flight], out_columns, prune)
        estimate = self.catalog.lineorder.num_rows
        return self._join_and_aggregate(query, stream, dim_tables, estimate)

    # ------------------------------------------------------------------ #
    # traditional (bitmap)
    # ------------------------------------------------------------------ #
    def _bitmap_rids_for_fact_pred(self, pred: Predicate
                                   ) -> Optional[np.ndarray]:
        index = self.artifacts.bitmaps.get(pred.column)
        if index is None:
            return None
        column = self.catalog.lineorder.column(pred.column)
        if isinstance(pred, Comparison):
            lo, hi = comparison_as_code_bounds(column, pred)
            return index.read_range(self.pool, lo, hi)
        if isinstance(pred, RangePredicate):
            lo, hi = code_bounds_for_range(column, pred.low, pred.high)
            return index.read_range(self.pool, lo, hi)
        if isinstance(pred, InSet):
            codes = [column.encode_literal(v) for v in pred.values]
            return index.read_union(
                self.pool, sorted(c for c in codes if c is not None))
        return None

    def _run_bitmap(self, query: StarQuery) -> ResultSet:
        dim_tables = self._dim_hash_tables(query)
        fact_heap = self.artifacts.heaps["lineorder"]
        rid_sets: List[np.ndarray] = []
        leftover_preds: List[Predicate] = []
        with self._span("fact-scan:bitmap"):
            # dimension predicates -> FK bitmap unions
            filtered_dims = {p.table for p in query.predicates
                             if p.table != query.fact_table}
            for dim, table, _sel in dim_tables:
                if dim not in filtered_dims:
                    continue
                fk = query.fk_of(dim)
                index = self.artifacts.bitmaps.get(fk)
                if index is None:
                    continue
                matching_keys = table.matching_keys()
                rid_sets.append(index.read_union(self.pool, matching_keys))
            # fact predicates -> bitmap range reads where indexed
            for pred in query.fact_predicates():
                rids = self._bitmap_rids_for_fact_pred(pred)
                if rids is None:
                    leftover_preds.append(pred)
                else:
                    rid_sets.append(rids)
            if rid_sets:
                rids = intersect_rid_sets(self.pool, rid_sets)
                if self._fact_live is not None:
                    # bitmaps cover every base row; drop deleted rids
                    # before paying any heap fetch for them
                    self.stats.position_ops += len(rids)
                    rids = rids[self._fact_live[rids]]
        if not rid_sets:
            # nothing bitmap-able: degrade to a plain scan of the heap
            stream = seq_scan(
                fact_heap, self.pool, query.fact_table,
                self._fact_out_columns(query), query.fact_predicates(),
                zone_maps=self.zone_maps, live_mask=self._fact_live)
        else:
            stream = heap_fetch(
                fact_heap, self.pool, rids, query.fact_table,
                self._fact_out_columns(query)
                + [p.column for p in leftover_preds])
            if leftover_preds:
                stream = self._post_filter(stream, query, leftover_preds,
                                           fact_heap)
        return self._join_and_aggregate(
            query, stream, dim_tables, self.catalog.lineorder.num_rows)

    def _post_filter(self, stream: Iterable[RowBatch], query: StarQuery,
                     preds: List[Predicate], heap: HeapFile
                     ) -> Iterator[RowBatch]:
        from .predicates import compile_predicate

        compiled = [
            (qualified(query.fact_table, p.column),
             compile_predicate(p, heap.fmt.dtype[p.column]))
            for p in preds
        ]
        for batch in stream:
            mask = np.ones(len(batch), dtype=bool)
            for name, pred in compiled:
                mask &= pred(batch.column(name), self.stats)
            yield batch.take(mask)

    # ------------------------------------------------------------------ #
    # vertical partitioning
    # ------------------------------------------------------------------ #
    def _vp_scan(self, column: str, table_alias: str,
                 predicates: Sequence[Predicate] = ()) -> Iterator[RowBatch]:
        heap = self.artifacts.vp_heaps[column]
        yield from seq_scan(
            heap, self.pool, table_alias,
            out_columns=["pos", column],
            predicates=[self._rebase_pred(p, table_alias) for p in predicates],
            zone_maps=self.zone_maps,
        )

    @staticmethod
    def _rebase_pred(pred: Predicate, table: str) -> Predicate:
        ref = ColumnRef(table, pred.column)
        if isinstance(pred, Comparison):
            return Comparison(ref, pred.op, pred.value)
        if isinstance(pred, RangePredicate):
            return RangePredicate(ref, pred.low, pred.high)
        return InSet(ref, pred.values)

    def _svp_scan(self, column: str, table_alias: str, pos_key: str,
                  predicates: Sequence[Predicate] = ()
                  ) -> Iterator[RowBatch]:
        heap = self.artifacts.vp_super_heaps[column]
        yield from super_tuple_scan(
            heap, self.pool, table_alias, column,
            predicates=[self._rebase_pred(p, table_alias)
                        for p in predicates],
            pos_name=pos_key,
            zone_maps=self.zone_maps,
        )

    def _run_vertical(self, query: StarQuery,
                      vp_join: str = "hash",
                      super_tuples: bool = False) -> ResultSet:
        """Position-join chain over two-column tables (Section 6.2.1).

        ``vp_join`` selects how the per-column result sets are combined:
        ``"hash"`` is what System X actually did (expensive, may spill);
        ``"merge"`` is the merge-join-without-sort the paper speculates
        System X *could* have used, since all column-tables share
        position order (Section 6.2.2).
        """
        if vp_join not in ("hash", "merge"):
            raise PlanError(f"vp_join must be 'hash' or 'merge', "
                            f"got {vp_join!r}")
        join_step = (self._position_join if vp_join == "hash"
                     else self._merge_position_join)
        dim_tables = self._dim_hash_tables(query)
        fact = query.fact_table
        pos_key = "_pos" if super_tuples else qualified(fact, "pos")
        if super_tuples:
            def column_scan(column, preds=()):
                return self._svp_scan(column, fact, pos_key, preds)
        else:
            def column_scan(column, preds=()):
                return self._vp_scan(column, fact, preds)
        estimate = self.catalog.lineorder.num_rows

        # stage 1: FK column scans filtered through dimension hash tables,
        # and fact-predicate column scans; each yields (pos, attrs) sets
        stages: List[Tuple[float, Iterator[RowBatch], Dict[str, str]]] = []
        for dim, table, sel in dim_tables:
            fk = query.fk_of(dim)
            scan = column_scan(fk)
            prefixing = {
                qualified(dim, a): qualified(dim, a)
                for a in query.group_by_of(dim)
            }
            joined = hash_join(
                scan, qualified(fact, fk), table, prefixing, self.stats,
                spill=self.spill, probe_row_bytes=16,
                probe_rows_estimate=estimate)
            stages.append((sel, joined, prefixing))
        for pred in query.fact_predicates():
            scan = column_scan(pred.column, [pred])
            stages.append((0.5, scan, {}))
        if not stages:
            # no predicates or joins: seed the position set from the
            # first needed column's table (a full scan); a column-free
            # plan (bare count(*)) counts positions off the key column
            needed = self._fact_out_columns(query)
            seed = needed[0] if needed else "orderkey"
            stages.append((1.0, column_scan(seed), {}))
        stages.sort(key=lambda s: s[0])

        # stage 2: successively position-join the result sets together
        # (draining the stage-1 column scans and dimension probes as the
        # joins materialize, so the span covers both)
        with self._span("fact-scan:vertical-partitions"):
            current = self._materialize_keyed(stages[0][1], pos_key,
                                              charge=vp_join == "hash")
            for _sel, stream, _prefix in stages[1:]:
                current = join_step(current, stream, pos_key, estimate)

            # stage 3: pick up remaining needed columns by position join
            have = set(current.payload_names()) | {pos_key}
            for column in self._fact_out_columns(query):
                name = qualified(fact, column)
                if name in have:
                    continue
                scan = column_scan(column)
                current = join_step(current, scan, pos_key, estimate)
                have.add(name)

        stream = current.as_batches(pos_key)
        if self._fact_live is not None:
            stream = self._live_filter(stream, pos_key)
        return self._aggregate(query, stream)

    def _materialize_keyed(self, stream: Iterable[RowBatch], key: str,
                           charge: bool = True) -> HashTable:
        batches = list(stream)
        columns = sorted(
            {c for b in batches for c in b.columns if c != key})
        keys = (np.concatenate([b.column(key) for b in batches])
                if batches else np.zeros(0, np.int64))
        payload = {
            c: (np.concatenate([b.column(c) for b in batches])
                if batches else np.zeros(0, np.int64))
            for c in columns
        }
        table = HashTable(keys, payload, self.stats, charge_inserts=charge)
        if charge and table.size_bytes > self.spill.memory_budget_bytes:
            self.spill.spill_round_trip(table.size_bytes)
        return table

    def _merge_position_join(self, current: HashTable,
                             stream: Iterable[RowBatch], pos_key: str,
                             estimate: int) -> HashTable:
        """Merge join on position: both sides arrive in position order
        (heap order is position order; materialized sides are kept
        sorted), so one interleaved pass suffices — no hash build, no
        spill.  Charges one comparison per input element on each side."""
        incoming = self._materialize_keyed(stream, pos_key, charge=False)
        left_keys = current.matching_keys()
        right_keys = incoming.matching_keys()
        self.stats.position_ops += len(left_keys) + len(right_keys)
        common, left_idx, right_idx = np.intersect1d(
            left_keys, right_keys, assume_unique=True, return_indices=True)
        payload: Dict[str, np.ndarray] = {}
        for name in current.payload_names():
            payload[name] = current.payload_at(name, left_idx)
        for name in incoming.payload_names():
            payload[name] = incoming.payload_at(name, right_idx)
        self.stats.tuple_attrs_copied += len(common) * max(len(payload), 1)
        return HashTable(common, payload, self.stats, charge_inserts=False)

    def _position_join(self, current: HashTable, stream: Iterable[RowBatch],
                       pos_key: str, estimate: int) -> HashTable:
        prefixing = {c: c for c in current.payload_names()}
        joined = hash_join(
            stream, pos_key, current, prefixing, self.stats,
            spill=self.spill, probe_row_bytes=16,
            probe_rows_estimate=estimate)
        return self._materialize_keyed(joined, pos_key)

    # ------------------------------------------------------------------ #
    # index-only
    # ------------------------------------------------------------------ #
    def _fact_index_stream(self, query: StarQuery, column: str
                           ) -> Iterator[RowBatch]:
        tree = self.artifacts.btrees[(query.fact_table, column)]
        preds = [p for p in query.fact_predicates() if p.column == column]
        name = qualified(query.fact_table, column)
        if preds:
            lo, hi = self._pred_bounds(self.catalog.lineorder, preds[0])
            yield from index_range_scan(tree, self.pool, lo, hi, name, "_rid")
        else:
            yield from index_full_scan(tree, self.pool, name, "_rid")

    def _pred_bounds(self, table: Table, pred: Predicate) -> Tuple[int, int]:
        column = table.column(pred.column)
        if isinstance(pred, Comparison):
            return comparison_as_code_bounds(column, pred)
        if isinstance(pred, RangePredicate):
            return code_bounds_for_range(column, pred.low, pred.high)
        raise PlanError(f"IN predicates need per-value scans: {pred}")

    def _run_index_only(self, query: StarQuery) -> ResultSet:
        fact = query.fact_table
        estimate = self.catalog.lineorder.num_rows

        # 1. join the needed fact columns on rid, in schema order —
        #    System X cannot defer these joins past the dimension joins
        # a column-free plan (bare count(*)) still needs one index
        # stream to enumerate rids
        fact_cols = list(query.fact_columns_needed()) or ["orderkey"]
        with self._span("fact-scan:index-rid-joins"):
            current = self._materialize_keyed(
                self._fact_index_stream(query, fact_cols[0]), "_rid")
            for column in fact_cols[1:]:
                stream = self._fact_index_stream(query, column)
                current = self._position_join(current, stream, "_rid",
                                              estimate)

        # 2. per-dimension hash tables from composite-key index scans
        dim_tables: List[Tuple[str, HashTable, float]] = []
        with self._span("dimension-filter"):
            for dim in query.dimensions_used():
                table = self._dim_table_from_indexes(query, dim)
                selectivity = table.num_entries / max(
                    self.catalog.table(dim).num_rows, 1)
                dim_tables.append((dim, table, selectivity))
        dim_tables.sort(key=lambda item: item[2])

        # 3. probe the joined fact columns against each dimension
        stream = current.as_batches("_rid")
        if self._fact_live is not None:
            stream = self._live_filter(stream, "_rid")
        result = self._join_and_aggregate(query, stream, dim_tables, estimate)
        return self._decode_index_codes(query, result)

    def _dim_table_from_indexes(self, query: StarQuery, dim: str
                                ) -> HashTable:
        """Build key -> group attrs for one dimension purely from indexes."""
        catalog_dim = self.catalog.table(dim)
        key_col = query.key_of(dim)
        preds = query.dimension_predicates(dim)
        attrs = query.group_by_of(dim)

        rid_key_batches: List[Tuple[np.ndarray, np.ndarray]] = []
        if preds:
            per_pred_sets: List[Tuple[np.ndarray, np.ndarray]] = []
            for pred in preds:
                parts_rids: List[np.ndarray] = []
                parts_keys: List[np.ndarray] = []
                for lo, hi in self._pred_ranges(catalog_dim, pred):
                    tree = self.artifacts.btrees[(dim, pred.column)]
                    for batch in index_range_scan(
                            tree, self.pool, lo, hi, "_v", "_rid", "_key"):
                        parts_rids.append(batch.column("_rid"))
                        parts_keys.append(batch.column("_key"))
                rids = (np.concatenate(parts_rids) if parts_rids
                        else np.zeros(0, np.int64))
                keys = (np.concatenate(parts_keys) if parts_keys
                        else np.zeros(0, np.int64))
                per_pred_sets.append((rids, keys))
            # merge rid-lists in memory across predicates on this table
            rids, keys = per_pred_sets[0]
            order = np.argsort(rids)
            rids, keys = rids[order], keys[order]
            for other_rids, other_keys in per_pred_sets[1:]:
                self.stats.position_ops += len(rids) + len(other_rids)
                common, left_idx, _right = np.intersect1d(
                    rids, other_rids, assume_unique=True,
                    return_indices=True)
                rids, keys = common, keys[left_idx]
        else:
            # no predicate: a full scan of the primary-key index
            tree = self.artifacts.btrees[(dim, key_col)]
            parts_rids, parts_keys = [], []
            for batch in index_full_scan(tree, self.pool, "_key", "_rid"):
                parts_rids.append(batch.column("_rid"))
                parts_keys.append(batch.column("_key"))
            rids = (np.concatenate(parts_rids) if parts_rids
                    else np.zeros(0, np.int64))
            keys = (np.concatenate(parts_keys) if parts_keys
                    else np.zeros(0, np.int64))
            order = np.argsort(rids)
            rids, keys = rids[order], keys[order]

        base = HashTable(rids, {"_key": keys}, self.stats)
        if not attrs:
            all_rows = np.arange(base.num_entries)
            return HashTable(base.payload_at("_key", all_rows), {},
                             self.stats)
        # each group attribute arrives via its own full index scan,
        # rid-joined against the filtered rid set; sorting every join
        # output by dimension key aligns the payload columns
        payload: Dict[str, np.ndarray] = {}
        sorted_keys = np.zeros(0, dtype=np.int64)
        for attr in attrs:
            tree = self.artifacts.btrees[(dim, attr)]
            stream = index_full_scan(tree, self.pool,
                                     qualified(dim, attr), "_rid")
            joined = hash_join(stream, "_rid", base,
                               {"_key": "_key"}, self.stats)
            collected_keys: List[np.ndarray] = []
            collected_vals: List[np.ndarray] = []
            for batch in joined:
                collected_keys.append(batch.column("_key"))
                collected_vals.append(batch.column(qualified(dim, attr)))
            attr_keys = (np.concatenate(collected_keys) if collected_keys
                         else np.zeros(0, np.int64))
            vals = (np.concatenate(collected_vals) if collected_vals
                    else np.zeros(0, np.int64))
            order = np.argsort(attr_keys)
            payload[qualified(dim, attr)] = vals[order]
            sorted_keys = attr_keys[order]
        return HashTable(sorted_keys, payload, self.stats)

    def _pred_ranges(self, table: Table, pred: Predicate
                     ) -> List[Tuple[int, int]]:
        column = table.column(pred.column)
        if isinstance(pred, InSet):
            out: List[Tuple[int, int]] = []
            for v in pred.values:
                code = column.encode_literal(v)
                if code is not None:
                    out.append((code, code))
            return out
        return [self._pred_bounds(table, pred)]

    def _decode_index_codes(self, query: StarQuery, result: ResultSet
                            ) -> ResultSet:
        """Translate dictionary codes back to strings in an index-only
        result (real indexes store the strings; ours store codes and pay a
        dictionary lookup per output cell instead)."""
        decoders = []
        for i, g in enumerate(query.group_by):
            column = self.catalog.table(g.table).column(g.column)
            decoders.append(column.dictionary)
        if not any(decoders):
            return result
        rows = []
        for row in result.rows:
            cells = list(row)
            for i, decoder in enumerate(decoders):
                if decoder is not None:
                    self.stats.dict_lookups += 1
                    cells[i] = decoder.value(int(cells[i]))
            rows.append(tuple(cells))
        out = ResultSet(result.columns, rows)
        return out.order_by(query.order_by).limited(query.limit)


__all__ = ["RowPlanner"]
