"""Predicate evaluation over in-memory columns.

Shared vocabulary between the reference engine and the tests: given a
:class:`~repro.storage.column.Column` and one IR predicate, produce a
boolean mask.  String predicates are evaluated on dictionary codes, which
is sound because dictionaries are order-preserving (codes sort exactly
like their strings).
"""

from __future__ import annotations

import bisect
from typing import Tuple

import numpy as np

from ..errors import ExecutionError, TypeMismatchError
from ..plan.logical import (
    CompareOp,
    Comparison,
    InSet,
    Predicate,
    RangePredicate,
    Value,
)
from ..storage.column import Column


def code_bounds_for_range(column: Column, low: Value, high: Value
                          ) -> Tuple[int, int]:
    """Translate a [low, high] literal range into the column's raw domain.

    For string columns, returns the inclusive code range covering every
    dictionary entry in [low, high]; the range may be empty (lo > hi).
    """
    if column.dictionary is None:
        if isinstance(low, str) or isinstance(high, str):
            raise TypeMismatchError(
                f"string bounds on integer column {column.name!r}"
            )
        return int(low), int(high)
    if not isinstance(low, str) or not isinstance(high, str):
        raise TypeMismatchError(
            f"integer bounds on string column {column.name!r}"
        )
    strings = column.dictionary.strings
    lo = bisect.bisect_left(strings, low)
    hi = bisect.bisect_right(strings, high) - 1
    return lo, hi


def comparison_as_code_bounds(column: Column, pred: Comparison
                              ) -> Tuple[int, int]:
    """An inclusive raw-domain [lo, hi] equivalent to ``pred``.

    Unbounded sides use the dtype's extremes.  For string columns the
    translation uses dictionary order, so e.g. ``city < 'M'`` becomes a
    code range.
    """
    info = np.iinfo(column.data.dtype)
    if column.dictionary is None:
        if isinstance(pred.value, str):
            raise TypeMismatchError(
                f"string literal on integer column {column.name!r}"
            )
        v = int(pred.value)
        return {
            CompareOp.EQ: (v, v),
            CompareOp.LT: (info.min, v - 1),
            CompareOp.LE: (info.min, v),
            CompareOp.GT: (v + 1, info.max),
            CompareOp.GE: (v, info.max),
        }[pred.op]
    if not isinstance(pred.value, str):
        raise TypeMismatchError(
            f"integer literal on string column {column.name!r}"
        )
    strings = column.dictionary.strings
    left = bisect.bisect_left(strings, pred.value)
    right = bisect.bisect_right(strings, pred.value) - 1
    return {
        CompareOp.EQ: (left, right),
        CompareOp.LT: (0, left - 1),
        CompareOp.LE: (0, right if right >= left else left - 1),
        CompareOp.GT: (right + 1 if right >= left else left, len(strings) - 1),
        CompareOp.GE: (left, len(strings) - 1),
    }[pred.op]


def eval_predicate(column: Column, pred: Predicate) -> np.ndarray:
    """Boolean mask of rows of ``column`` satisfying ``pred``."""
    data = column.data
    if isinstance(pred, Comparison):
        lo, hi = comparison_as_code_bounds(column, pred)
        if lo > hi:
            return np.zeros(len(data), dtype=bool)
        return (data >= lo) & (data <= hi)
    if isinstance(pred, RangePredicate):
        lo, hi = code_bounds_for_range(column, pred.low, pred.high)
        if lo > hi:
            return np.zeros(len(data), dtype=bool)
        return (data >= lo) & (data <= hi)
    if isinstance(pred, InSet):
        raw = []
        for v in pred.values:
            code = column.encode_literal(v)
            if code is not None:
                raw.append(code)
        if not raw:
            return np.zeros(len(data), dtype=bool)
        return np.isin(data, np.asarray(raw, dtype=data.dtype))
    raise ExecutionError(f"unknown predicate type {type(pred).__name__}")


__all__ = ["eval_predicate", "code_bounds_for_range", "comparison_as_code_bounds"]
