"""Naive StarQuery evaluation over in-memory tables.

The algorithm is deliberately the simplest correct one:

1. build a boolean mask over the fact table from fact predicates;
2. for every filtered dimension, evaluate its predicates, then map each
   fact FK to its dimension row (dimension keys are unique and sorted, so
   a binary search suffices) and AND the dimension verdicts in;
3. gather group-by attributes for the surviving fact rows, aggregate with
   int64 accumulators, decode strings, sort per ORDER BY.

No I/O, no cost ledger, no sharing of operator code with the measured
engines — this is the oracle they are all compared against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ExecutionError
from ..plan.aggregates import (
    finalize,
    needs_expr_values,
    reduce_groups,
    reduce_scalar,
)
from ..plan.logical import (
    BinOp,
    ColumnRef,
    Expr,
    Literal,
    StarQuery,
)
from ..result import ResultSet, Row
from ..storage.column import Column
from ..storage.table import Table
from .predicates import eval_predicate


def _dimension_row_index(dim: Table, key_column: str, fk: np.ndarray
                         ) -> np.ndarray:
    """Dimension row position for each FK value (-1 when absent).

    Dimension keys are unique and ascending by construction (contiguous
    1..N for customer/supplier/part, chronological yyyymmdd for date).
    """
    keys = dim.column(key_column).data
    idx = np.searchsorted(keys, fk)
    idx_clipped = np.minimum(idx, len(keys) - 1)
    found = keys[idx_clipped] == fk
    return np.where(found, idx_clipped, -1)


def selected_positions(tables: Dict[str, Table], query: StarQuery
                       ) -> np.ndarray:
    """Fact-table positions satisfying every predicate of ``query``."""
    fact = tables[query.fact_table]
    mask = np.ones(fact.num_rows, dtype=bool)
    for pred in query.fact_predicates():
        mask &= eval_predicate(fact.column(pred.column), pred)
    dims_with_preds = {p.table for p in query.predicates
                       if p.table != query.fact_table}
    for dim_name in sorted(dims_with_preds):
        dim = tables[dim_name]
        dim_mask = np.ones(dim.num_rows, dtype=bool)
        for pred in query.dimension_predicates(dim_name):
            dim_mask &= eval_predicate(dim.column(pred.column), pred)
        fk = fact.column(query.fk_of(dim_name)).data
        rows = _dimension_row_index(dim, query.key_of(dim_name), fk)
        ok = rows >= 0
        verdict = np.zeros(fact.num_rows, dtype=bool)
        verdict[ok] = dim_mask[rows[ok]]
        mask &= verdict
    return np.flatnonzero(mask)


def _eval_expr(expr: Expr, fact: Table, positions: np.ndarray) -> np.ndarray:
    """Evaluate an aggregate-input expression to int64 over ``positions``."""
    if isinstance(expr, ColumnRef):
        column = fact.column(expr.column)
        if column.dictionary is not None:
            raise ExecutionError(
                f"string column {expr.column!r} in arithmetic expression"
            )
        return column.data[positions].astype(np.int64)
    if isinstance(expr, Literal):
        return np.full(len(positions), expr.value, dtype=np.int64)
    if isinstance(expr, BinOp):
        left = _eval_expr(expr.left, fact, positions)
        right = _eval_expr(expr.right, fact, positions)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        return left * right
    raise ExecutionError(f"unknown expression node {type(expr).__name__}")


def _group_source(
    tables: Dict[str, Table], query: StarQuery, ref: ColumnRef,
    positions: np.ndarray,
) -> Tuple[np.ndarray, Optional[Column]]:
    """(raw codes/values, source column) for one group-by key."""
    fact = tables[query.fact_table]
    if ref.table == query.fact_table:
        column = fact.column(ref.column)
        return column.data[positions], column
    dim = tables[ref.table]
    fk = fact.column(query.fk_of(ref.table)).data[positions]
    rows = _dimension_row_index(dim, query.key_of(ref.table), fk)
    if np.any(rows < 0):
        raise ExecutionError(
            f"dangling foreign key into {ref.table!r} "
            f"(query {query.name!r})"
        )
    column = dim.column(ref.column)
    return column.data[rows], column


def execute(tables: Dict[str, Table], query: StarQuery) -> ResultSet:
    """Evaluate ``query`` and return its ordered :class:`ResultSet`."""
    fact = tables[query.fact_table]
    positions = selected_positions(tables, query)
    agg_inputs = [
        _eval_expr(agg.expr, fact, positions)
        if needs_expr_values(agg.func)
        else np.zeros(len(positions), dtype=np.int64)
        for agg in query.aggregates
    ]
    columns = [g.column for g in query.group_by] + [
        agg.alias for agg in query.aggregates
    ]

    if not query.group_by:
        cells = []
        for agg, values in zip(query.aggregates, agg_inputs):
            primary, secondary = reduce_scalar(agg.func, values)
            cells.append(finalize(agg.func, primary, secondary))
        result = ResultSet(columns, [tuple(cells)])
        return result.order_by(query.order_by).limited(query.limit)

    sources = [
        _group_source(tables, query, ref, positions)
        for ref in query.group_by
    ]
    if len(positions) == 0:
        return ResultSet(columns, [])
    key_matrix = np.stack([raw.astype(np.int64) for raw, _col in sources])
    uniq, inverse = np.unique(key_matrix, axis=1, return_inverse=True)
    num_groups = uniq.shape[1]
    rows: List[Row] = []
    reduced = [
        reduce_groups(agg.func, values, inverse, num_groups)
        for agg, values in zip(query.aggregates, agg_inputs)
    ]
    for g in range(num_groups):
        cells: List[object] = []
        for k, (_raw, col) in enumerate(sources):
            raw_value = int(uniq[k, g])
            if col.dictionary is not None:
                cells.append(col.dictionary.value(raw_value))
            else:
                cells.append(raw_value)
        for agg, (primary, secondary) in zip(query.aggregates, reduced):
            cells.append(finalize(
                agg.func, int(primary[g]),
                None if secondary is None else int(secondary[g])))
        rows.append(tuple(cells))
    return ResultSet(columns, rows).order_by(query.order_by).limited(
        query.limit)


__all__ = ["execute", "selected_positions"]
