"""The reference engine: a naive, obviously-correct StarQuery evaluator.

This is the correctness oracle.  It shares no executor code with the
row-store or column-store engines (only the in-memory ``Table`` container
and the IR), evaluates queries with straightforward vectorized numpy over
decoded values, and performs no I/O and no cost accounting.  Every
engine x design x configuration in the test suite must match its output
exactly.
"""

from .engine import execute, selected_positions
from .predicates import eval_predicate

__all__ = ["execute", "selected_positions", "eval_predicate"]
