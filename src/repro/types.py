"""Column type system shared by the row and column engines.

The SSB schema only needs a small set of types: 32/64-bit integers,
fixed-point prices (stored as int64 cents in the generator, but the paper
treats them as integers too), and strings.  Strings are always
dictionary-encodable; the storage layer decides whether to materialize them
as Python strings or keep integer codes.

``ColumnType`` knows its width in bytes, which is what the simulated disk
charges for.  Widths follow the paper's accounting: 4 bytes for an int32
column value, 8 for int64, and the declared fixed width for CHAR(n)-style
strings (SSB uses fixed-width text fields).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .errors import SchemaError, TypeMismatchError


class TypeKind(enum.Enum):
    """Physical kind of a column."""

    INT32 = "int32"
    INT64 = "int64"
    STRING = "string"


@dataclass(frozen=True)
class ColumnType:
    """A column's physical type.

    Parameters
    ----------
    kind:
        The :class:`TypeKind`.
    width:
        Fixed byte width of one value as stored uncompressed.  For strings
        this is the CHAR(n) width from the SSB spec; for integers it is the
        numpy itemsize.
    """

    kind: TypeKind
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise TypeMismatchError(f"column width must be positive, got {self.width}")

    @property
    def is_string(self) -> bool:
        return self.kind is TypeKind.STRING

    @property
    def is_integer(self) -> bool:
        return self.kind in (TypeKind.INT32, TypeKind.INT64)

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used for in-memory vectors of this type.

        String columns are held as dictionary codes (int32); the dictionary
        itself lives beside the code vector.
        """
        if self.kind is TypeKind.INT32:
            return np.dtype(np.int32)
        if self.kind is TypeKind.INT64:
            return np.dtype(np.int64)
        return np.dtype(np.int32)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_string:
            return f"STRING({self.width})"
        return self.kind.value.upper()


def int32() -> ColumnType:
    """The 4-byte integer type."""
    return ColumnType(TypeKind.INT32, 4)


def int64() -> ColumnType:
    """The 8-byte integer type."""
    return ColumnType(TypeKind.INT64, 8)


def string(width: int) -> ColumnType:
    """A fixed-width string type of ``width`` bytes (CHAR(width))."""
    return ColumnType(TypeKind.STRING, width)


@dataclass(frozen=True)
class Field:
    """A named, typed column within a schema."""

    name: str
    ctype: ColumnType

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("field name must be non-empty")


class Schema:
    """An ordered collection of :class:`Field` objects.

    Provides O(1) name lookup and stable iteration order.  Immutable once
    constructed; derivative schemas are built with :meth:`project` /
    :meth:`concat`.
    """

    def __init__(self, fields: Sequence[Field]) -> None:
        self._fields: Tuple[Field, ...] = tuple(fields)
        self._index: Dict[str, int] = {}
        for position, f in enumerate(self._fields):
            if f.name in self._index:
                raise SchemaError(f"duplicate field name {f.name!r}")
            self._index[f.name] = position

    @classmethod
    def of(cls, *pairs: Tuple[str, ColumnType]) -> "Schema":
        """Build a schema from (name, type) pairs."""
        return cls([Field(name, ctype) for name, ctype in pairs])

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{f.name}: {f.ctype!r}" for f in self._fields)
        return f"Schema({inner})"

    @property
    def names(self) -> List[str]:
        """Field names in schema order."""
        return [f.name for f in self._fields]

    def field(self, name: str) -> Field:
        """Return the field called ``name``; raise :class:`SchemaError` if absent."""
        try:
            return self._fields[self._index[name]]
        except KeyError:
            raise SchemaError(f"no field named {name!r} in {self.names}") from None

    def position(self, name: str) -> int:
        """Return the ordinal position of ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no field named {name!r} in {self.names}") from None

    def type_of(self, name: str) -> ColumnType:
        """Return the :class:`ColumnType` of field ``name``."""
        return self.field(name).ctype

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a new schema containing only ``names``, in the given order."""
        return Schema([self.field(n) for n in names])

    def concat(self, other: "Schema") -> "Schema":
        """Return a new schema with ``other``'s fields appended."""
        return Schema(list(self._fields) + list(other._fields))

    def rename(self, mapping: Dict[str, str]) -> "Schema":
        """Return a schema with fields renamed per ``mapping`` (others kept)."""
        return Schema(
            [Field(mapping.get(f.name, f.name), f.ctype) for f in self._fields]
        )

    @property
    def row_width(self) -> int:
        """Uncompressed byte width of one row under this schema."""
        return sum(f.ctype.width for f in self._fields)


# Tuple header accounting, per the paper's Section 6.2 ("about 8 bytes of
# overhead per row" in System X) and Section 6.3.1 (column stores keep
# headers in separate columns, i.e. zero bytes inline).
ROW_TUPLE_HEADER_BYTES = 8
RECORD_ID_BYTES = 4


def validate_int_array(values: np.ndarray, ctype: ColumnType) -> np.ndarray:
    """Coerce ``values`` to the dtype of ``ctype``, raising on overflow.

    Used at ingestion boundaries so the storage layer can assume arrays are
    already well-typed.
    """
    if not ctype.is_integer and not ctype.is_string:
        raise TypeMismatchError(f"unsupported type {ctype!r}")
    target = ctype.numpy_dtype
    arr = np.asarray(values)
    if arr.dtype == target:
        return arr
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeMismatchError(
            f"expected integer array for {ctype!r}, got dtype {arr.dtype}"
        )
    info = np.iinfo(target)
    if arr.size and (arr.min() < info.min or arr.max() > info.max):
        raise TypeMismatchError(
            f"values out of range for {ctype!r}: [{arr.min()}, {arr.max()}]"
        )
    return arr.astype(target)


__all__ = [
    "TypeKind",
    "ColumnType",
    "Field",
    "Schema",
    "int32",
    "int64",
    "string",
    "ROW_TUPLE_HEADER_BYTES",
    "RECORD_ID_BYTES",
    "validate_int_array",
]
