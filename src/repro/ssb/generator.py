"""Deterministic SSB data generator.

Produces the five SSB tables as in-memory
:class:`~repro.storage.table.Table` objects, vectorized with numpy and
fully determined by ``(scale_factor, seed)``.

Properties the experiments rely on (and tests assert):

* **Dimension sort + key reassignment.**  Each dimension is sorted by its
  rollup hierarchy (customer/supplier: region, nation, city; part: mfgr,
  category, brand1; date: chronological) and its primary key is assigned
  ``1..N`` *after* sorting.  This is exactly the "dictionary encoding for
  key reassignment" of Section 5.4.2: equality predicates on any rollup
  attribute select a contiguous key range, enabling between-predicate
  rewriting; and key ``k`` lives at position ``k-1``, enabling the
  invisible join's direct array extraction.  The date table keeps its
  yyyymmdd key — non-contiguous, so date joins need real lookups, as the
  paper notes in Section 5.4.1.
* **Fact sort order.**  The lineorder table is sorted on (orderdate,
  quantity, discount), the one sorted + two secondarily-sorted columns of
  Section 6.3.2.
* **Published selectivities.**  Value distributions are uniform over the
  spec domains, so the 13 LINEORDER selectivities in Section 3 hold (see
  ``tests/ssb/test_selectivities.py``).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..storage.column import Column, StringDictionary
from ..storage.table import SortOrder, Table
from . import schema as sp

DEFAULT_SEED = 20080609  # SIGMOD'08 began June 9, 2008


@dataclass
class SsbData:
    """The generated benchmark database."""

    scale_factor: float
    seed: int
    lineorder: Table
    customer: Table
    supplier: Table
    part: Table
    date: Table

    @property
    def tables(self) -> Dict[str, Table]:
        return {
            "lineorder": self.lineorder,
            "customer": self.customer,
            "supplier": self.supplier,
            "part": self.part,
            "date": self.date,
        }

    def table(self, name: str) -> Table:
        return self.tables[name]

    def dimensions(self) -> Dict[str, Table]:
        return {k: v for k, v in self.tables.items() if k != "lineorder"}


def generate(scale_factor: float = 0.05, seed: int = DEFAULT_SEED) -> SsbData:
    """Generate the SSB database at ``scale_factor`` deterministically."""
    sizes = sp.table_sizes(scale_factor)
    rng = np.random.default_rng(seed)
    date = _generate_date()
    customer = _generate_customer(sizes["customer"], rng)
    supplier = _generate_supplier(sizes["supplier"], rng)
    part = _generate_part(sizes["part"], rng)
    lineorder = _generate_lineorder(
        sizes["lineorder"],
        num_customers=sizes["customer"],
        num_suppliers=sizes["supplier"],
        num_parts=sizes["part"],
        date=date,
        rng=rng,
    )
    return SsbData(scale_factor, seed, lineorder, customer, supplier, part,
                   date)


# --------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------- #
def _string_column(name: str, domain: List[str], codes: np.ndarray,
                   width: int) -> Column:
    """A string column over a fixed domain given per-row domain indices."""
    ordered = sorted(set(domain))
    remap = np.array([ordered.index(v) for v in domain], dtype=np.int32)
    dictionary = StringDictionary.from_sorted_unique(ordered)
    return Column.from_codes(name, remap[codes], dictionary, width)


def _unique_string_column(name: str, values: List[str], width: int) -> Column:
    """A string column where most values are distinct (names, addresses)."""
    return Column.from_strings(name, values, width)


def _sorted_with_keys(name: str, columns: List[Column], sort_keys: List[str],
                      key_column: str) -> Table:
    """Sort by the rollup hierarchy, then assign contiguous keys 1..N."""
    table = Table(name, columns).sort_by(sort_keys)
    n = table.num_rows
    keys = Column.from_ints(key_column, np.arange(1, n + 1, dtype=np.int32),
                            table.schema.type_of(key_column))
    rebuilt = [keys if c.name == key_column else c for c in table.columns()]
    return Table(name, rebuilt, SortOrder(tuple(sort_keys)))


# --------------------------------------------------------------------- #
# dimensions
# --------------------------------------------------------------------- #
def _stratified(n: int, cardinality: int, rng: np.random.Generator
                ) -> np.ndarray:
    """A permutation-stratified uniform assignment over ``cardinality``.

    Every domain value receives either floor(n/card) or ceil(n/card)
    rows — the exact-uniform coverage the SSB spec's selectivities
    assume, which plain i.i.d. sampling only approximates (badly, for
    small dimension tables at sub-1 scale factors).
    """
    return (rng.permutation(n) % cardinality).astype(np.int32)


def _generate_customer(n: int, rng: np.random.Generator) -> Table:
    strata = _stratified(n, len(sp.NATIONS) * sp.CITIES_PER_NATION, rng)
    nation_idx = strata % len(sp.NATIONS)
    city_digit = strata // len(sp.NATIONS)
    nations = list(sp.NATIONS)
    regions = [sp.NATION_REGION[x] for x in nations]
    cities = [sp.city_name(nations[i], d)
              for i, d in zip(nation_idx, city_digit)]
    segments = rng.integers(0, len(sp.MKT_SEGMENTS), n).astype(np.int32)
    columns = [
        Column.from_ints("custkey", np.zeros(n, dtype=np.int32),
                         sp.CUSTOMER_SCHEMA.type_of("custkey")),
        _unique_string_column(
            "name", [f"Customer#{i:09d}" for i in range(1, n + 1)], 25),
        _unique_string_column(
            "address", [_address(rng) for _ in range(n)], 25),
        Column.from_strings("city", cities, 10),
        _string_column("nation", nations, nation_idx, 15),
        _string_column("region", regions, nation_idx, 12),
        _unique_string_column(
            "phone", [_phone(rng) for _ in range(n)], 15),
        _string_column("mktsegment", list(sp.MKT_SEGMENTS), segments, 10),
    ]
    return _sorted_with_keys("customer", columns,
                             list(sp.DIMENSION_SORT_KEYS["customer"]),
                             "custkey")


def _generate_supplier(n: int, rng: np.random.Generator) -> Table:
    strata = _stratified(n, len(sp.NATIONS) * sp.CITIES_PER_NATION, rng)
    nation_idx = strata % len(sp.NATIONS)
    city_digit = strata // len(sp.NATIONS)
    nations = list(sp.NATIONS)
    regions = [sp.NATION_REGION[x] for x in nations]
    cities = [sp.city_name(nations[i], d)
              for i, d in zip(nation_idx, city_digit)]
    columns = [
        Column.from_ints("suppkey", np.zeros(n, dtype=np.int32),
                         sp.SUPPLIER_SCHEMA.type_of("suppkey")),
        _unique_string_column(
            "name", [f"Supplier#{i:09d}" for i in range(1, n + 1)], 25),
        _unique_string_column(
            "address", [_address(rng) for _ in range(n)], 25),
        Column.from_strings("city", cities, 10),
        _string_column("nation", nations, nation_idx, 15),
        _string_column("region", regions, nation_idx, 12),
        _unique_string_column(
            "phone", [_phone(rng) for _ in range(n)], 15),
    ]
    return _sorted_with_keys("supplier", columns,
                             list(sp.DIMENSION_SORT_KEYS["supplier"]),
                             "suppkey")


def _generate_part(n: int, rng: np.random.Generator) -> Table:
    brand_idx = _stratified(n, len(sp.BRANDS), rng)
    brands = list(sp.BRANDS)
    categories = [b[:7] for b in brands]
    mfgrs = [b[:6] for b in brands]
    color_idx = rng.integers(0, len(sp.COLORS), n).astype(np.int32)
    type_idx = rng.integers(0, len(sp.PART_TYPES), n).astype(np.int32)
    container_idx = rng.integers(0, len(sp.CONTAINERS), n).astype(np.int32)
    columns = [
        Column.from_ints("partkey", np.zeros(n, dtype=np.int32),
                         sp.PART_SCHEMA.type_of("partkey")),
        _unique_string_column(
            "name", [f"part {i:08d}" for i in range(1, n + 1)], 22),
        _string_column("mfgr", mfgrs, brand_idx, 6),
        _string_column("category", categories, brand_idx, 7),
        _string_column("brand1", brands, brand_idx, 9),
        _string_column("color", list(sp.COLORS), color_idx, 11),
        _string_column("type", list(sp.PART_TYPES), type_idx, 25),
        Column.from_ints("size", rng.integers(1, 51, n).astype(np.int32),
                         sp.PART_SCHEMA.type_of("size")),
        _string_column("container", list(sp.CONTAINERS), container_idx, 10),
    ]
    return _sorted_with_keys("part", columns,
                             list(sp.DIMENSION_SORT_KEYS["part"]), "partkey")


def _generate_date() -> Table:
    """The fixed 2556-row date dimension (no randomness)."""
    rows = [sp.date_of_offset(i) for i in range(sp.NUM_DATE_ROWS)]
    datekeys = np.array([sp.datekey_of(d) for d in rows], dtype=np.int32)
    years = np.array([d.year for d in rows], dtype=np.int32)
    months = np.array([d.month for d in rows], dtype=np.int32)
    day_in_year = np.array([d.timetuple().tm_yday for d in rows],
                           dtype=np.int32)
    weekday = np.array([d.weekday() for d in rows], dtype=np.int32)
    date_strs = [f"{sp.MONTH_NAMES[d.month - 1]} {d.day}, {d.year}"
                 for d in rows]
    season_idx = np.array([_season_index(d) for d in rows], dtype=np.int32)
    columns = [
        Column.from_ints("datekey", datekeys,
                         sp.DATE_SCHEMA.type_of("datekey")),
        _unique_string_column("date", date_strs, 18),
        _string_column("dayofweek", list(sp.DAY_NAMES), weekday, 9),
        _string_column("month", list(sp.MONTH_NAMES), months - 1, 9),
        Column.from_ints("year", years, sp.DATE_SCHEMA.type_of("year")),
        Column.from_ints("yearmonthnum", years * 100 + months,
                         sp.DATE_SCHEMA.type_of("yearmonthnum")),
        Column.from_strings(
            "yearmonth",
            [f"{sp.MONTH_ABBREV[d.month - 1]}{d.year}" for d in rows], 7),
        Column.from_ints("daynuminweek", weekday + 1,
                         sp.DATE_SCHEMA.type_of("daynuminweek")),
        Column.from_ints("daynuminmonth",
                         np.array([d.day for d in rows], dtype=np.int32),
                         sp.DATE_SCHEMA.type_of("daynuminmonth")),
        Column.from_ints("daynuminyear", day_in_year,
                         sp.DATE_SCHEMA.type_of("daynuminyear")),
        Column.from_ints("monthnuminyear", months,
                         sp.DATE_SCHEMA.type_of("monthnuminyear")),
        Column.from_ints("weeknuminyear", (day_in_year - 1) // 7 + 1,
                         sp.DATE_SCHEMA.type_of("weeknuminyear")),
        _string_column("sellingseason", list(sp.SELLING_SEASONS), season_idx,
                       12),
        Column.from_ints("lastdayinweekfl", (weekday == 6).astype(np.int32),
                         sp.DATE_SCHEMA.type_of("lastdayinweekfl")),
        Column.from_ints(
            "lastdayinmonthfl",
            np.array([int((d + datetime.timedelta(days=1)).month != d.month)
                      for d in rows], dtype=np.int32),
            sp.DATE_SCHEMA.type_of("lastdayinmonthfl")),
        Column.from_ints(
            "holidayfl",
            np.array([int(d.month == 12 and d.day in (24, 25, 26, 31))
                      or int(d.month == 1 and d.day == 1) for d in rows],
                     dtype=np.int32),
            sp.DATE_SCHEMA.type_of("holidayfl")),
        Column.from_ints("weekdayfl", (weekday < 5).astype(np.int32),
                         sp.DATE_SCHEMA.type_of("weekdayfl")),
    ]
    return Table("date", columns, SortOrder(("datekey",)))


def _season_index(d: datetime.date) -> int:
    if d.month == 12:
        return sp.SELLING_SEASONS.index("Christmas")
    if d.month in (1, 2):
        return sp.SELLING_SEASONS.index("Winter")
    if d.month in (3, 4, 5):
        return sp.SELLING_SEASONS.index("Spring")
    if d.month in (6, 7, 8):
        return sp.SELLING_SEASONS.index("Summer")
    return sp.SELLING_SEASONS.index("Fall")


# --------------------------------------------------------------------- #
# fact table
# --------------------------------------------------------------------- #
def _generate_lineorder(
    n: int,
    num_customers: int,
    num_suppliers: int,
    num_parts: int,
    date: Table,
    rng: np.random.Generator,
) -> Table:
    # orders of 1..7 lines; per-order attributes repeat across their lines
    num_orders = max(1, int(n / 4))
    lines_per_order = rng.integers(1, 8, num_orders)
    while int(lines_per_order.sum()) < n:
        extra = rng.integers(1, 8, max(64, num_orders // 8))
        lines_per_order = np.concatenate([lines_per_order, extra])
        num_orders = len(lines_per_order)
    # trim the last orders so the total is exactly n
    cumulative = np.cumsum(lines_per_order)
    cut = int(np.searchsorted(cumulative, n))
    lines_per_order = lines_per_order[:cut + 1].copy()
    overshoot = int(lines_per_order.sum()) - n
    lines_per_order[-1] -= overshoot
    if lines_per_order[-1] <= 0:
        lines_per_order = lines_per_order[:-1]
    num_orders = len(lines_per_order)

    order_ids = np.arange(1, num_orders + 1, dtype=np.int32)
    orderkey = np.repeat(order_ids, lines_per_order)
    linenumber = np.concatenate(
        [np.arange(1, k + 1, dtype=np.int32) for k in lines_per_order])

    order_custkey = rng.integers(1, num_customers + 1,
                                 num_orders).astype(np.int32)
    order_date_offset = rng.integers(0, sp.NUM_ORDER_DATES,
                                     num_orders).astype(np.int32)
    order_priority = rng.integers(0, len(sp.ORDER_PRIORITIES),
                                  num_orders).astype(np.int32)

    datekeys = date.column("datekey").data
    custkey = np.repeat(order_custkey, lines_per_order)
    orderdate = datekeys[np.repeat(order_date_offset, lines_per_order)]
    priority_idx = np.repeat(order_priority, lines_per_order)

    partkey = rng.integers(1, num_parts + 1, n).astype(np.int32)
    suppkey = rng.integers(1, num_suppliers + 1, n).astype(np.int32)
    quantity = rng.integers(1, 51, n).astype(np.int32)
    discount = rng.integers(0, 11, n).astype(np.int32)
    tax = rng.integers(0, 9, n).astype(np.int32)
    unit_price = rng.integers(1000, 10001, n).astype(np.int64)
    extendedprice = (quantity.astype(np.int64) * unit_price).astype(np.int32)
    revenue = (extendedprice.astype(np.int64)
               * (100 - discount) // 100).astype(np.int32)
    supplycost = (extendedprice.astype(np.int64) * 6 // 10).astype(np.int32)
    shipmode_idx = rng.integers(0, len(sp.SHIP_MODES), n).astype(np.int32)

    # ordtotalprice: per-order sum of extendedprice, repeated per line
    order_starts = np.concatenate(
        ([0], np.cumsum(lines_per_order)[:-1])).astype(np.int64)
    order_totals = np.add.reduceat(extendedprice.astype(np.int64),
                                   order_starts)
    ordtotalprice = np.minimum(
        np.repeat(order_totals, lines_per_order), 2**31 - 1).astype(np.int32)

    commit_offset = np.repeat(order_date_offset, lines_per_order) + \
        rng.integers(30, 91, n).astype(np.int32)
    commit_offset = np.minimum(commit_offset, sp.NUM_DATE_ROWS - 1)
    commitdate = datekeys[commit_offset]

    columns = [
        Column.from_ints("orderkey", orderkey,
                         sp.LINEORDER_SCHEMA.type_of("orderkey")),
        Column.from_ints("linenumber", linenumber,
                         sp.LINEORDER_SCHEMA.type_of("linenumber")),
        Column.from_ints("custkey", custkey,
                         sp.LINEORDER_SCHEMA.type_of("custkey")),
        Column.from_ints("partkey", partkey,
                         sp.LINEORDER_SCHEMA.type_of("partkey")),
        Column.from_ints("suppkey", suppkey,
                         sp.LINEORDER_SCHEMA.type_of("suppkey")),
        Column.from_ints("orderdate", orderdate,
                         sp.LINEORDER_SCHEMA.type_of("orderdate")),
        _string_column("ordpriority", list(sp.ORDER_PRIORITIES), priority_idx,
                       15),
        Column.from_strings("shippriority", ["0"] * n, 1),
        Column.from_ints("quantity", quantity,
                         sp.LINEORDER_SCHEMA.type_of("quantity")),
        Column.from_ints("extendedprice", extendedprice,
                         sp.LINEORDER_SCHEMA.type_of("extendedprice")),
        Column.from_ints("ordtotalprice", ordtotalprice,
                         sp.LINEORDER_SCHEMA.type_of("ordtotalprice")),
        Column.from_ints("discount", discount,
                         sp.LINEORDER_SCHEMA.type_of("discount")),
        Column.from_ints("revenue", revenue,
                         sp.LINEORDER_SCHEMA.type_of("revenue")),
        Column.from_ints("supplycost", supplycost,
                         sp.LINEORDER_SCHEMA.type_of("supplycost")),
        Column.from_ints("tax", tax, sp.LINEORDER_SCHEMA.type_of("tax")),
        Column.from_ints("commitdate", commitdate,
                         sp.LINEORDER_SCHEMA.type_of("commitdate")),
        _string_column("shipmode", list(sp.SHIP_MODES), shipmode_idx, 10),
    ]
    table = Table("lineorder", columns)
    return table.sort_by(list(sp.FACT_SORT_KEYS))


# --------------------------------------------------------------------- #
# small string helpers
# --------------------------------------------------------------------- #
_ADDRESS_CHARS = np.array(list("abcdefghijklmnopqrstuvwxyz0123456789 "))


def _address(rng: np.random.Generator) -> str:
    length = int(rng.integers(10, 25))
    return "".join(rng.choice(_ADDRESS_CHARS, length))


def _phone(rng: np.random.Generator) -> str:
    a, b, c = rng.integers(10, 35), rng.integers(100, 1000), rng.integers(
        100, 1000)
    d = rng.integers(1000, 10000)
    return f"{a}-{b}-{c}-{d}"


__all__ = ["SsbData", "generate", "DEFAULT_SEED"]
