"""The Star Schema Benchmark (O'Neil, O'Neil, Chen), as used in the paper.

* :mod:`~repro.ssb.schema` — table schemas, value domains, sizing rules.
* :mod:`~repro.ssb.generator` — deterministic data generator
  (:class:`~repro.ssb.generator.SsbData`).
* :mod:`~repro.ssb.queries` — the 13 queries as :class:`StarQuery` IR plus
  the paper's published selectivities.
* :mod:`~repro.ssb.sql_text` — the SQL text of each query (parsed by the
  SQL frontend and asserted equal to the hand-built IR in tests).
* :mod:`~repro.ssb.denormalize` — the pre-joined wide table of Figure 8.
"""

from .generator import SsbData, generate
from .queries import all_queries, query_by_name, PAPER_SELECTIVITIES

__all__ = [
    "SsbData",
    "generate",
    "all_queries",
    "query_by_name",
    "PAPER_SELECTIVITIES",
]
