"""The thirteen SSB queries as :class:`~repro.plan.logical.StarQuery` IR.

Flights and predicates follow Section 3 of the paper (and the SSB spec);
``PAPER_SELECTIVITIES`` records the published LINEORDER selectivity of
each query, which ``tests/ssb/test_selectivities.py`` asserts against the
generated data.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..plan.logical import (
    AggExpr,
    BinOp,
    ColumnRef,
    CompareOp,
    Comparison,
    InSet,
    OrderKey,
    RangePredicate,
    StarQuery,
)

LO = "lineorder"
_DIM_KEYS = {"date": "datekey"}
C = "customer"
S = "supplier"
P = "part"
D = "date"


def _lo(col: str) -> ColumnRef:
    return ColumnRef(LO, col)


def _ref(table: str, col: str) -> ColumnRef:
    return ColumnRef(table, col)


_REVENUE_GAIN = AggExpr(
    "sum", BinOp("*", _lo("extendedprice"), _lo("discount")), "revenue")
_SUM_REVENUE = AggExpr("sum", _lo("revenue"), "revenue")
_PROFIT = AggExpr(
    "sum", BinOp("-", _lo("revenue"), _lo("supplycost")), "profit")


def _flight1(name: str, date_preds: List, discount: Tuple[int, int],
             quantity_pred) -> StarQuery:
    return StarQuery(
        name=name,
        fact_table=LO,
        joins={"orderdate": D},
        dim_keys=_DIM_KEYS,
        predicates=tuple(date_preds) + (
            RangePredicate(_lo("discount"), discount[0], discount[1]),
            quantity_pred,
        ),
        group_by=(),
        aggregates=(_REVENUE_GAIN,),
    )


Q1_1 = _flight1(
    "Q1.1",
    [Comparison(_ref(D, "year"), CompareOp.EQ, 1993)],
    (1, 3),
    Comparison(_lo("quantity"), CompareOp.LT, 25),
)

Q1_2 = _flight1(
    "Q1.2",
    [Comparison(_ref(D, "yearmonthnum"), CompareOp.EQ, 199401)],
    (4, 6),
    RangePredicate(_lo("quantity"), 26, 35),
)

Q1_3 = _flight1(
    "Q1.3",
    [
        Comparison(_ref(D, "weeknuminyear"), CompareOp.EQ, 6),
        Comparison(_ref(D, "year"), CompareOp.EQ, 1994),
    ],
    (5, 7),
    RangePredicate(_lo("quantity"), 36, 40),
)


def _flight2(name: str, part_pred) -> Dict[str, object]:
    return dict(
        name=name,
        fact_table=LO,
        joins={"partkey": P, "suppkey": S, "orderdate": D},
        dim_keys=_DIM_KEYS,
        group_by=(_ref(D, "year"), _ref(P, "brand1")),
        aggregates=(_SUM_REVENUE,),
        order_by=(OrderKey("year"), OrderKey("brand1")),
    )


Q2_1 = StarQuery(
    predicates=(
        Comparison(_ref(P, "category"), CompareOp.EQ, "MFGR#12"),
        Comparison(_ref(S, "region"), CompareOp.EQ, "AMERICA"),
    ),
    **_flight2("Q2.1", None),
)

Q2_2 = StarQuery(
    predicates=(
        RangePredicate(_ref(P, "brand1"), "MFGR#2221", "MFGR#2228"),
        Comparison(_ref(S, "region"), CompareOp.EQ, "ASIA"),
    ),
    **_flight2("Q2.2", None),
)

Q2_3 = StarQuery(
    predicates=(
        Comparison(_ref(P, "brand1"), CompareOp.EQ, "MFGR#2239"),
        Comparison(_ref(S, "region"), CompareOp.EQ, "EUROPE"),
    ),
    **_flight2("Q2.3", None),
)


def _flight3(name: str, cust_pred, supp_pred, date_pred,
             group_cols: Tuple[str, str]) -> StarQuery:
    return StarQuery(
        name=name,
        fact_table=LO,
        joins={"custkey": C, "suppkey": S, "orderdate": D},
        dim_keys=_DIM_KEYS,
        predicates=(cust_pred, supp_pred, date_pred),
        group_by=(_ref(C, group_cols[0]), _ref(S, group_cols[1]),
                  _ref(D, "year")),
        aggregates=(_SUM_REVENUE,),
        order_by=(OrderKey("year"), OrderKey("revenue", ascending=False)),
    )


Q3_1 = _flight3(
    "Q3.1",
    Comparison(_ref(C, "region"), CompareOp.EQ, "ASIA"),
    Comparison(_ref(S, "region"), CompareOp.EQ, "ASIA"),
    RangePredicate(_ref(D, "year"), 1992, 1997),
    ("nation", "nation"),
)

Q3_2 = _flight3(
    "Q3.2",
    Comparison(_ref(C, "nation"), CompareOp.EQ, "UNITED STATES"),
    Comparison(_ref(S, "nation"), CompareOp.EQ, "UNITED STATES"),
    RangePredicate(_ref(D, "year"), 1992, 1997),
    ("city", "city"),
)

_KI_CITIES = ("UNITED KI1", "UNITED KI5")

Q3_3 = _flight3(
    "Q3.3",
    InSet(_ref(C, "city"), _KI_CITIES),
    InSet(_ref(S, "city"), _KI_CITIES),
    RangePredicate(_ref(D, "year"), 1992, 1997),
    ("city", "city"),
)

Q3_4 = _flight3(
    "Q3.4",
    InSet(_ref(C, "city"), _KI_CITIES),
    InSet(_ref(S, "city"), _KI_CITIES),
    Comparison(_ref(D, "yearmonth"), CompareOp.EQ, "Dec1997"),
    ("city", "city"),
)


Q4_1 = StarQuery(
    name="Q4.1",
    fact_table=LO,
    joins={"custkey": C, "suppkey": S, "partkey": P, "orderdate": D},
    dim_keys=_DIM_KEYS,
    predicates=(
        Comparison(_ref(C, "region"), CompareOp.EQ, "AMERICA"),
        Comparison(_ref(S, "region"), CompareOp.EQ, "AMERICA"),
        InSet(_ref(P, "mfgr"), ("MFGR#1", "MFGR#2")),
    ),
    group_by=(_ref(D, "year"), _ref(C, "nation")),
    aggregates=(_PROFIT,),
    order_by=(OrderKey("year"), OrderKey("nation")),
)

Q4_2 = StarQuery(
    name="Q4.2",
    fact_table=LO,
    joins={"custkey": C, "suppkey": S, "partkey": P, "orderdate": D},
    dim_keys=_DIM_KEYS,
    predicates=(
        Comparison(_ref(C, "region"), CompareOp.EQ, "AMERICA"),
        Comparison(_ref(S, "region"), CompareOp.EQ, "AMERICA"),
        InSet(_ref(D, "year"), (1997, 1998)),
        InSet(_ref(P, "mfgr"), ("MFGR#1", "MFGR#2")),
    ),
    group_by=(_ref(D, "year"), _ref(S, "nation"), _ref(P, "category")),
    aggregates=(_PROFIT,),
    order_by=(OrderKey("year"), OrderKey("nation"), OrderKey("category")),
)

Q4_3 = StarQuery(
    name="Q4.3",
    fact_table=LO,
    joins={"custkey": C, "suppkey": S, "partkey": P, "orderdate": D},
    dim_keys=_DIM_KEYS,
    predicates=(
        Comparison(_ref(C, "region"), CompareOp.EQ, "AMERICA"),
        Comparison(_ref(S, "nation"), CompareOp.EQ, "UNITED STATES"),
        InSet(_ref(D, "year"), (1997, 1998)),
        Comparison(_ref(P, "category"), CompareOp.EQ, "MFGR#14"),
    ),
    group_by=(_ref(D, "year"), _ref(S, "city"), _ref(P, "brand1")),
    aggregates=(_PROFIT,),
    order_by=(OrderKey("year"), OrderKey("city"), OrderKey("brand1")),
)


ALL_QUERIES: Tuple[StarQuery, ...] = (
    Q1_1, Q1_2, Q1_3,
    Q2_1, Q2_2, Q2_3,
    Q3_1, Q3_2, Q3_3, Q3_4,
    Q4_1, Q4_2, Q4_3,
)

#: Query name -> flight number.
FLIGHT_OF: Dict[str, int] = {q.name: int(q.name[1]) for q in ALL_QUERIES}

#: The LINEORDER selectivities published in Section 3 of the paper.
PAPER_SELECTIVITIES: Dict[str, float] = {
    "Q1.1": 1.9e-2,
    "Q1.2": 6.5e-4,
    "Q1.3": 7.5e-5,
    "Q2.1": 8.0e-3,
    "Q2.2": 1.6e-3,
    "Q2.3": 2.0e-4,
    "Q3.1": 3.4e-2,
    "Q3.2": 1.4e-3,
    "Q3.3": 5.5e-5,
    "Q3.4": 7.6e-7,
    "Q4.1": 1.6e-2,
    "Q4.2": 4.5e-3,
    "Q4.3": 9.1e-5,
}


def all_queries() -> List[StarQuery]:
    """The 13 SSB queries in flight order."""
    return list(ALL_QUERIES)


def query_by_name(name: str) -> StarQuery:
    """Look up one query, e.g. ``query_by_name("Q3.1")``."""
    for q in ALL_QUERIES:
        if q.name == name:
            return q
    raise KeyError(f"no SSB query named {name!r}")


__all__ = [
    "all_queries",
    "query_by_name",
    "ALL_QUERIES",
    "FLIGHT_OF",
    "PAPER_SELECTIVITIES",
]
