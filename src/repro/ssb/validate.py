"""SSB data validation: every invariant the experiments rely on.

Run ``python -m repro.ssb.validate [--sf 0.02]`` to check a generated
database, or call :func:`validate` programmatically.  Checks cover
sizing, value domains, referential integrity, sort orders, key
contiguity, order-level consistency, and the Section 3 selectivities.
Each check returns a :class:`CheckResult`; the CLI prints a PASS/FAIL
table and exits non-zero on any failure.
"""

from __future__ import annotations

import argparse
import math
import sys
from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from . import schema as sp
from .generator import SsbData, generate
from .queries import ALL_QUERIES, PAPER_SELECTIVITIES


@dataclass(frozen=True)
class CheckResult:
    name: str
    passed: bool
    detail: str = ""


def _check(name: str):
    def wrap(fn: Callable[[SsbData], str]):
        def run(data: SsbData) -> CheckResult:
            try:
                detail = fn(data)
                return CheckResult(name, True, detail or "")
            except AssertionError as failure:
                return CheckResult(name, False, str(failure))
        run._check_name = name
        return run
    return wrap


@_check("row counts match the sizing formula")
def _row_counts(data: SsbData) -> str:
    sizes = sp.table_sizes(data.scale_factor)
    for name, table in data.tables.items():
        assert table.num_rows == sizes[name], \
            f"{name}: {table.num_rows} rows, expected {sizes[name]}"
    return f"{data.lineorder.num_rows:,} fact rows"


@_check("referential integrity (every FK resolves)")
def _foreign_keys(data: SsbData) -> str:
    lo = data.lineorder
    for fk, (dim_name, key_col) in sp.FOREIGN_KEYS.items():
        keys = data.table(dim_name).column(key_col).data
        assert np.isin(lo.column(fk).data, keys).all(), \
            f"dangling {fk} into {dim_name}"
    return "5 foreign keys checked"


@_check("dimension keys are contiguous 1..N (after hierarchy sort)")
def _key_contiguity(data: SsbData) -> str:
    for name in ("customer", "supplier", "part"):
        table = data.table(name)
        keys = table.columns()[0].data
        assert np.array_equal(
            keys, np.arange(1, table.num_rows + 1, dtype=keys.dtype)), name
    return "customer, supplier, part"


@_check("tables obey their declared sort orders")
def _sort_orders(data: SsbData) -> str:
    for name, table in data.tables.items():
        assert table.verify_sorted(), f"{name} violates {table.sort_order}"
    return f"fact sorted on {data.lineorder.sort_order.keys}"


@_check("value domains within SSB spec bounds")
def _domains(data: SsbData) -> str:
    lo = data.lineorder
    q = lo.column("quantity").data
    d = lo.column("discount").data
    t = lo.column("tax").data
    assert q.min() >= 1 and q.max() <= 50, "quantity out of [1,50]"
    assert d.min() >= 0 and d.max() <= 10, "discount out of [0,10]"
    assert t.min() >= 0 and t.max() <= 8, "tax out of [0,8]"
    regions = set(data.customer.column("region").dictionary.strings)
    assert regions <= set(sp.REGIONS), f"unknown regions {regions}"
    brands = set(data.part.column("brand1").dictionary.strings)
    assert brands <= set(sp.BRANDS), "unknown brand values"
    return "quantity, discount, tax, regions, brands"


@_check("revenue = extendedprice * (100 - discount) / 100")
def _derived_columns(data: SsbData) -> str:
    lo = data.lineorder
    ep = lo.column("extendedprice").data.astype(np.int64)
    disc = lo.column("discount").data.astype(np.int64)
    rev = lo.column("revenue").data.astype(np.int64)
    assert np.array_equal(rev, ep * (100 - disc) // 100)
    return ""


@_check("orders are internally consistent (shared customer/date)")
def _order_consistency(data: SsbData) -> str:
    lo = data.lineorder
    orderkey = lo.column("orderkey").data
    order = np.argsort(orderkey, kind="stable")
    ok = orderkey[order]
    ck = lo.column("custkey").data[order]
    od = lo.column("orderdate").data[order]
    same_order = ok[1:] == ok[:-1]
    assert np.all(ck[1:][same_order] == ck[:-1][same_order]), \
        "custkey differs within an order"
    assert np.all(od[1:][same_order] == od[:-1][same_order]), \
        "orderdate differs within an order"
    lines = np.bincount(orderkey)
    assert lines[lines > 0].max() <= 7, "an order has more than 7 lines"
    return f"{int((lines > 0).sum()):,} orders"


@_check("orderdate spans the first 2405 calendar days")
def _orderdate_span(data: SsbData) -> str:
    distinct = np.unique(data.lineorder.column("orderdate").data)
    datekeys = data.date.column("datekey").data
    allowed = set(datekeys[:sp.NUM_ORDER_DATES].tolist())
    assert set(distinct.tolist()) <= allowed, \
        "orderdate outside the order calendar"
    return f"{len(distinct)} distinct dates"


@_check("Section 3 selectivities within statistical tolerance")
def _selectivities(data: SsbData) -> str:
    from ..reference import selected_positions

    n = data.lineorder.num_rows
    worst = ""
    for query in ALL_QUERIES:
        observed = len(selected_positions(data.tables, query))
        expected = PAPER_SELECTIVITIES[query.name] * n
        slack = 5 * math.sqrt(max(expected, 1)) + 0.25 * expected + 2
        assert abs(observed - expected) <= slack, (
            f"{query.name}: observed {observed}, expected {expected:.1f}"
        )
    return "13 queries"


ALL_CHECKS = [
    _row_counts,
    _foreign_keys,
    _key_contiguity,
    _sort_orders,
    _domains,
    _derived_columns,
    _order_consistency,
    _orderdate_span,
    _selectivities,
]


def validate(data: SsbData) -> List[CheckResult]:
    """Run every check; returns all results (never raises)."""
    return [check(data) for check in ALL_CHECKS]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ssb.validate",
        description="Validate a generated SSB database.")
    parser.add_argument("--sf", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args(argv)
    kwargs = {} if args.seed is None else {"seed": args.seed}
    print(f"generating SSB at scale factor {args.sf} ...")
    data = generate(args.sf, **kwargs)
    results = validate(data)
    failures = 0
    for result in results:
        status = "PASS" if result.passed else "FAIL"
        detail = f"  ({result.detail})" if result.detail else ""
        print(f"  [{status}] {result.name}{detail}")
        failures += not result.passed
    print(f"{len(results) - failures}/{len(results)} checks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
