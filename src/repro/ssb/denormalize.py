"""Pre-joined (denormalized) fact tables for the Figure 8 experiment.

Section 6.3.3: the fact table and its dimensions are pre-joined so every
fact row carries all dimension attribute values; queries then run with no
joins at all.  The paper evaluates three storage treatments of the wide
table — strings unmodified ("PJ, No C"), strings dictionary-encoded to
integers ("PJ, Int C"), and full C-Store compression ("PJ, Max C") —
which map onto our :class:`~repro.storage.colfile.CompressionLevel`
values NONE / INT / MAX.

``denormalize`` builds the wide table (dimension columns named
``<dim>_<attr>``); ``rewrite_query`` turns any SSB query into an
equivalent join-free query over it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import PlanError
from ..plan.logical import (
    AggExpr,
    BinOp,
    ColumnRef,
    Comparison,
    Expr,
    InSet,
    Literal,
    Predicate,
    RangePredicate,
    StarQuery,
)
from ..storage.column import Column
from ..storage.table import SortOrder, Table
from .generator import SsbData
from .schema import FACT_SORT_KEYS

#: Name of the denormalized table.
DENORM_TABLE = "lineorder_denorm"

#: Dimension attributes folded into the wide table (the ones any SSB
#: query touches; folding all 40+ would only inflate load time).
DENORM_ATTRIBUTES: Dict[str, Tuple[str, ...]] = {
    "customer": ("region", "nation", "city"),
    "supplier": ("region", "nation", "city"),
    "part": ("mfgr", "category", "brand1"),
    "date": ("year", "yearmonthnum", "yearmonth", "weeknuminyear"),
}

#: fact FK column -> dimension, as in the SSB queries.
_FK_OF_DIM = {
    "customer": "custkey",
    "supplier": "suppkey",
    "part": "partkey",
    "date": "orderdate",
}


def denorm_column_name(dim: str, attr: str) -> str:
    """The wide-table column holding dimension ``dim``'s ``attr``."""
    return f"{dim}_{attr}"


def denormalize(data: SsbData) -> Table:
    """Build the pre-joined wide table (sorted like the fact table)."""
    fact = data.lineorder
    columns: List[Column] = list(fact.columns())
    for dim_name, attrs in DENORM_ATTRIBUTES.items():
        dim = data.table(dim_name)
        key_column = dim.columns()[0].name
        keys = dim.column(key_column).data
        fk = fact.column(_FK_OF_DIM[dim_name]).data
        rows = np.searchsorted(keys, fk)
        rows = np.minimum(rows, len(keys) - 1)
        if not np.all(keys[rows] == fk):
            raise PlanError(
                f"dangling foreign keys into {dim_name} during denormalization"
            )
        for attr in attrs:
            source = dim.column(attr)
            columns.append(
                Column(denorm_column_name(dim_name, attr), source.ctype,
                       source.data[rows], source.dictionary)
            )
    return Table(DENORM_TABLE, columns, SortOrder(tuple(FACT_SORT_KEYS)))


def _rewrite_ref(ref: ColumnRef, fact_table: str) -> ColumnRef:
    if ref.table == "lineorder":
        return ColumnRef(DENORM_TABLE, ref.column)
    return ColumnRef(DENORM_TABLE, denorm_column_name(ref.table, ref.column))


def _rewrite_predicate(pred: Predicate) -> Predicate:
    ref = _rewrite_ref(pred.ref, DENORM_TABLE)
    if isinstance(pred, Comparison):
        return Comparison(ref, pred.op, pred.value)
    if isinstance(pred, RangePredicate):
        return RangePredicate(ref, pred.low, pred.high)
    return InSet(ref, pred.values)


def _rewrite_expr(expr: Expr) -> Expr:
    if isinstance(expr, ColumnRef):
        return _rewrite_ref(expr, DENORM_TABLE)
    if isinstance(expr, Literal):
        return expr
    return BinOp(expr.op, _rewrite_expr(expr.left), _rewrite_expr(expr.right))


def rewrite_query(query: StarQuery) -> StarQuery:
    """An equivalent join-free query over the denormalized table.

    Group-by output columns take the wide table's names (e.g. ``year``
    becomes ``date_year``), so ORDER BY keys are renamed to match;
    aggregate aliases are unchanged."""
    from ..plan.logical import OrderKey

    rename: Dict[str, str] = {}
    for g in query.group_by:
        rewritten = _rewrite_ref(g, DENORM_TABLE)
        rename[g.column] = rewritten.column
    return StarQuery(
        name=f"{query.name}/denorm",
        fact_table=DENORM_TABLE,
        joins={},
        predicates=tuple(_rewrite_predicate(p) for p in query.predicates),
        group_by=tuple(_rewrite_ref(g, DENORM_TABLE) for g in query.group_by),
        aggregates=tuple(
            AggExpr(a.func, _rewrite_expr(a.expr), a.alias)
            for a in query.aggregates
        ),
        order_by=tuple(
            OrderKey(rename.get(k.key, k.key), k.ascending)
            for k in query.order_by
        ),
    )


__all__ = [
    "DENORM_TABLE",
    "DENORM_ATTRIBUTES",
    "denorm_column_name",
    "denormalize",
    "rewrite_query",
]
