"""SSB schemas, value domains, and sizing rules (Figure 1 of the paper).

Domains follow the SSB specification (itself derived from TPC-H dbgen):

* 5 regions, 25 nations (5 per region), 250 cities (10 per nation, named
  as the first 9 characters of the nation plus a digit);
* parts roll up brand1 (1000) → category (25) → mfgr (5);
* dates cover the 7 calendar years 1992-1998 (2556 days); orders occupy
  the first 2405 days (through 1998-08-02), matching the paper's
  observation that orderdate has 2405 distinct values;
* table cardinalities scale with the scale factor SF: lineorder
  6,000,000 x SF, customer 30,000 x SF, supplier 2,000 x SF, date fixed,
  part 200,000 x (1 + log2 SF) for SF >= 1 (pro-rated below 1).

Brand suffixes are zero-padded to two digits ("MFGR#2201".."MFGR#2240")
so that Q2.2's string BETWEEN selects exactly 8 of 1000 brands, keeping
the published selectivity of 1.6e-3 exact.
"""

from __future__ import annotations

import datetime
import math
from typing import Dict, Tuple

from ..types import Schema, int32, string

# --------------------------------------------------------------------- #
# geography
# --------------------------------------------------------------------- #
REGIONS: Tuple[str, ...] = (
    "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST",
)

#: nation -> region, 5 nations per region (TPC-H's 25 nations).
NATION_REGION: Dict[str, str] = {
    "ALGERIA": "AFRICA",
    "ETHIOPIA": "AFRICA",
    "KENYA": "AFRICA",
    "MOROCCO": "AFRICA",
    "MOZAMBIQUE": "AFRICA",
    "ARGENTINA": "AMERICA",
    "BRAZIL": "AMERICA",
    "CANADA": "AMERICA",
    "PERU": "AMERICA",
    "UNITED STATES": "AMERICA",
    "CHINA": "ASIA",
    "INDIA": "ASIA",
    "INDONESIA": "ASIA",
    "JAPAN": "ASIA",
    "VIETNAM": "ASIA",
    "FRANCE": "EUROPE",
    "GERMANY": "EUROPE",
    "ROMANIA": "EUROPE",
    "RUSSIA": "EUROPE",
    "UNITED KINGDOM": "EUROPE",
    "EGYPT": "MIDDLE EAST",
    "IRAN": "MIDDLE EAST",
    "IRAQ": "MIDDLE EAST",
    "JORDAN": "MIDDLE EAST",
    "SAUDI ARABIA": "MIDDLE EAST",
}

NATIONS: Tuple[str, ...] = tuple(sorted(NATION_REGION))

CITIES_PER_NATION = 10


def city_name(nation: str, digit: int) -> str:
    """SSB city naming: first 9 chars of the nation (space-padded) + digit."""
    return f"{nation[:9]:<9s}{digit}"


ALL_CITIES: Tuple[str, ...] = tuple(
    city_name(nation, digit)
    for nation in NATIONS
    for digit in range(CITIES_PER_NATION)
)

# --------------------------------------------------------------------- #
# parts
# --------------------------------------------------------------------- #
NUM_MFGRS = 5
CATEGORIES_PER_MFGR = 5
BRANDS_PER_CATEGORY = 40

MFGRS: Tuple[str, ...] = tuple(f"MFGR#{i}" for i in range(1, NUM_MFGRS + 1))
CATEGORIES: Tuple[str, ...] = tuple(
    f"MFGR#{m}{c}"
    for m in range(1, NUM_MFGRS + 1)
    for c in range(1, CATEGORIES_PER_MFGR + 1)
)
BRANDS: Tuple[str, ...] = tuple(
    f"{cat}{b:02d}" for cat in CATEGORIES for b in range(1, BRANDS_PER_CATEGORY + 1)
)

COLORS: Tuple[str, ...] = tuple(
    f"color{i:02d}" for i in range(40)
)
PART_TYPES: Tuple[str, ...] = tuple(
    f"{kind} {finish}"
    for kind in ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
    for finish in ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
)
CONTAINERS: Tuple[str, ...] = tuple(
    f"{size} {kind}"
    for size in ("SM", "MED", "LG", "JUMBO", "WRAP")
    for kind in ("CASE", "BOX", "BAG", "PKG", "PACK", "CAN", "DRUM", "JAR")
)

# --------------------------------------------------------------------- #
# other dimension domains
# --------------------------------------------------------------------- #
MKT_SEGMENTS: Tuple[str, ...] = (
    "AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY",
)
ORDER_PRIORITIES: Tuple[str, ...] = (
    "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW",
)
SHIP_MODES: Tuple[str, ...] = (
    "AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK",
)
MONTH_NAMES: Tuple[str, ...] = (
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
)
MONTH_ABBREV: Tuple[str, ...] = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)
DAY_NAMES: Tuple[str, ...] = (
    "Monday", "Tuesday", "Wednesday", "Thursday", "Friday",
    "Saturday", "Sunday",
)
SELLING_SEASONS: Tuple[str, ...] = (
    "Winter", "Spring", "Summer", "Fall", "Christmas",
)

# --------------------------------------------------------------------- #
# calendar
# --------------------------------------------------------------------- #
FIRST_DATE = datetime.date(1992, 1, 1)
NUM_YEARS = 7
#: 365 * 7 (the SSB date table ignores leap days in its sizing; we keep
#: real calendar dates and simply take the first 2556 days).
NUM_DATE_ROWS = 365 * NUM_YEARS
#: Orders occupy the first 2405 days (through 1998-08-02), giving the
#: 2405 distinct orderdate values the paper reports.
NUM_ORDER_DATES = 2405


def date_of_offset(offset: int) -> datetime.date:
    """Calendar date for day ``offset`` (0 = 1992-01-01)."""
    return FIRST_DATE + datetime.timedelta(days=offset)


def datekey_of(d: datetime.date) -> int:
    """SSB datekey: the yyyymmdd integer."""
    return d.year * 10000 + d.month * 100 + d.day


# --------------------------------------------------------------------- #
# sizing
# --------------------------------------------------------------------- #
LINEORDER_PER_SF = 6_000_000
CUSTOMER_PER_SF = 30_000
SUPPLIER_PER_SF = 2_000
PART_BASE = 200_000


def table_sizes(scale_factor: float) -> Dict[str, int]:
    """Row counts for each table at ``scale_factor``.

    The part formula is the spec's ``200,000 * (1 + log2 SF)`` for SF >= 1;
    below 1 it pro-rates linearly (the spec does not define sub-1 scale
    factors) with a floor that keeps every brand represented.
    """
    if scale_factor <= 0:
        raise ValueError(f"scale factor must be positive, got {scale_factor}")
    if scale_factor >= 1:
        part = int(PART_BASE * (1 + math.log2(scale_factor)))
    else:
        part = max(len(BRANDS) * 2, int(PART_BASE * scale_factor))
    return {
        "lineorder": max(1, int(LINEORDER_PER_SF * scale_factor)),
        "customer": max(len(ALL_CITIES), int(CUSTOMER_PER_SF * scale_factor)),
        "supplier": max(len(ALL_CITIES), int(SUPPLIER_PER_SF * scale_factor)),
        "part": part,
        "date": NUM_DATE_ROWS,
    }


# --------------------------------------------------------------------- #
# schemas (string widths per the SSB spec's CHAR declarations)
# --------------------------------------------------------------------- #
LINEORDER_SCHEMA = Schema.of(
    ("orderkey", int32()),
    ("linenumber", int32()),
    ("custkey", int32()),
    ("partkey", int32()),
    ("suppkey", int32()),
    ("orderdate", int32()),
    ("ordpriority", string(15)),
    ("shippriority", string(1)),
    ("quantity", int32()),
    ("extendedprice", int32()),
    ("ordtotalprice", int32()),
    ("discount", int32()),
    ("revenue", int32()),
    ("supplycost", int32()),
    ("tax", int32()),
    ("commitdate", int32()),
    ("shipmode", string(10)),
)

CUSTOMER_SCHEMA = Schema.of(
    ("custkey", int32()),
    ("name", string(25)),
    ("address", string(25)),
    ("city", string(10)),
    ("nation", string(15)),
    ("region", string(12)),
    ("phone", string(15)),
    ("mktsegment", string(10)),
)

SUPPLIER_SCHEMA = Schema.of(
    ("suppkey", int32()),
    ("name", string(25)),
    ("address", string(25)),
    ("city", string(10)),
    ("nation", string(15)),
    ("region", string(12)),
    ("phone", string(15)),
)

PART_SCHEMA = Schema.of(
    ("partkey", int32()),
    ("name", string(22)),
    ("mfgr", string(6)),
    ("category", string(7)),
    ("brand1", string(9)),
    ("color", string(11)),
    ("type", string(25)),
    ("size", int32()),
    ("container", string(10)),
)

DATE_SCHEMA = Schema.of(
    ("datekey", int32()),
    ("date", string(18)),
    ("dayofweek", string(9)),
    ("month", string(9)),
    ("year", int32()),
    ("yearmonthnum", int32()),
    ("yearmonth", string(7)),
    ("daynuminweek", int32()),
    ("daynuminmonth", int32()),
    ("daynuminyear", int32()),
    ("monthnuminyear", int32()),
    ("weeknuminyear", int32()),
    ("sellingseason", string(12)),
    ("lastdayinweekfl", int32()),
    ("lastdayinmonthfl", int32()),
    ("holidayfl", int32()),
    ("weekdayfl", int32()),
)

SCHEMAS: Dict[str, Schema] = {
    "lineorder": LINEORDER_SCHEMA,
    "customer": CUSTOMER_SCHEMA,
    "supplier": SUPPLIER_SCHEMA,
    "part": PART_SCHEMA,
    "date": DATE_SCHEMA,
}

#: Fact foreign keys -> (dimension table, dimension key column).
FOREIGN_KEYS: Dict[str, Tuple[str, str]] = {
    "custkey": ("customer", "custkey"),
    "suppkey": ("supplier", "suppkey"),
    "partkey": ("part", "partkey"),
    "orderdate": ("date", "datekey"),
    "commitdate": ("date", "datekey"),
}

#: Dimension sort hierarchies (coarse -> fine), the property
#: between-predicate rewriting exploits (Section 5.4.2).
DIMENSION_SORT_KEYS: Dict[str, Tuple[str, ...]] = {
    "customer": ("region", "nation", "city"),
    "supplier": ("region", "nation", "city"),
    "part": ("mfgr", "category", "brand1"),
    "date": ("datekey",),
}

#: The fact projection's sort order (Section 6.3.2: orderdate sorted,
#: quantity and discount secondarily sorted).
FACT_SORT_KEYS: Tuple[str, ...] = ("orderdate", "quantity", "discount")


__all__ = [
    "REGIONS",
    "NATIONS",
    "NATION_REGION",
    "CITIES_PER_NATION",
    "ALL_CITIES",
    "city_name",
    "MFGRS",
    "CATEGORIES",
    "BRANDS",
    "COLORS",
    "PART_TYPES",
    "CONTAINERS",
    "MKT_SEGMENTS",
    "ORDER_PRIORITIES",
    "SHIP_MODES",
    "MONTH_NAMES",
    "MONTH_ABBREV",
    "DAY_NAMES",
    "SELLING_SEASONS",
    "FIRST_DATE",
    "NUM_YEARS",
    "NUM_DATE_ROWS",
    "NUM_ORDER_DATES",
    "date_of_offset",
    "datekey_of",
    "table_sizes",
    "LINEORDER_SCHEMA",
    "CUSTOMER_SCHEMA",
    "SUPPLIER_SCHEMA",
    "PART_SCHEMA",
    "DATE_SCHEMA",
    "SCHEMAS",
    "FOREIGN_KEYS",
    "DIMENSION_SORT_KEYS",
    "FACT_SORT_KEYS",
]
