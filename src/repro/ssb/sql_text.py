"""SQL text of the thirteen SSB queries (the paper's dialect).

The paper calls the date dimension ``dwdate`` (to dodge a reserved word
in System X); our catalog names it ``date``, which the lexer handles
fine.  ``SQL_TEXT[name]`` parses through :func:`repro.sql.parse_query`
into an IR equivalent to the hand-built query of the same name — a
round-trip asserted by ``tests/sql/test_ssb_sql.py``.
"""

from __future__ import annotations

from typing import Dict

SQL_TEXT: Dict[str, str] = {
    "Q1.1": """
        SELECT sum(lo.extendedprice * lo.discount) AS revenue
        FROM lineorder AS lo, date AS d
        WHERE lo.orderdate = d.datekey
          AND d.year = 1993
          AND lo.discount BETWEEN 1 AND 3
          AND lo.quantity < 25;
    """,
    "Q1.2": """
        SELECT sum(lo.extendedprice * lo.discount) AS revenue
        FROM lineorder AS lo, date AS d
        WHERE lo.orderdate = d.datekey
          AND d.yearmonthnum = 199401
          AND lo.discount BETWEEN 4 AND 6
          AND lo.quantity BETWEEN 26 AND 35;
    """,
    "Q1.3": """
        SELECT sum(lo.extendedprice * lo.discount) AS revenue
        FROM lineorder AS lo, date AS d
        WHERE lo.orderdate = d.datekey
          AND d.weeknuminyear = 6
          AND d.year = 1994
          AND lo.discount BETWEEN 5 AND 7
          AND lo.quantity BETWEEN 36 AND 40;
    """,
    "Q2.1": """
        SELECT sum(lo.revenue) AS revenue, d.year, p.brand1
        FROM lineorder AS lo, date AS d, part AS p, supplier AS s
        WHERE lo.orderdate = d.datekey
          AND lo.partkey = p.partkey
          AND lo.suppkey = s.suppkey
          AND p.category = 'MFGR#12'
          AND s.region = 'AMERICA'
        GROUP BY d.year, p.brand1
        ORDER BY year, brand1;
    """,
    "Q2.2": """
        SELECT sum(lo.revenue) AS revenue, d.year, p.brand1
        FROM lineorder AS lo, date AS d, part AS p, supplier AS s
        WHERE lo.orderdate = d.datekey
          AND lo.partkey = p.partkey
          AND lo.suppkey = s.suppkey
          AND p.brand1 BETWEEN 'MFGR#2221' AND 'MFGR#2228'
          AND s.region = 'ASIA'
        GROUP BY d.year, p.brand1
        ORDER BY year, brand1;
    """,
    "Q2.3": """
        SELECT sum(lo.revenue) AS revenue, d.year, p.brand1
        FROM lineorder AS lo, date AS d, part AS p, supplier AS s
        WHERE lo.orderdate = d.datekey
          AND lo.partkey = p.partkey
          AND lo.suppkey = s.suppkey
          AND p.brand1 = 'MFGR#2239'
          AND s.region = 'EUROPE'
        GROUP BY d.year, p.brand1
        ORDER BY year, brand1;
    """,
    "Q3.1": """
        SELECT c.nation, s.nation, d.year, sum(lo.revenue) AS revenue
        FROM customer AS c, lineorder AS lo, supplier AS s, date AS d
        WHERE lo.custkey = c.custkey
          AND lo.suppkey = s.suppkey
          AND lo.orderdate = d.datekey
          AND c.region = 'ASIA'
          AND s.region = 'ASIA'
          AND d.year BETWEEN 1992 AND 1997
        GROUP BY c.nation, s.nation, d.year
        ORDER BY year ASC, revenue DESC;
    """,
    "Q3.2": """
        SELECT c.city, s.city, d.year, sum(lo.revenue) AS revenue
        FROM customer AS c, lineorder AS lo, supplier AS s, date AS d
        WHERE lo.custkey = c.custkey
          AND lo.suppkey = s.suppkey
          AND lo.orderdate = d.datekey
          AND c.nation = 'UNITED STATES'
          AND s.nation = 'UNITED STATES'
          AND d.year BETWEEN 1992 AND 1997
        GROUP BY c.city, s.city, d.year
        ORDER BY year ASC, revenue DESC;
    """,
    "Q3.3": """
        SELECT c.city, s.city, d.year, sum(lo.revenue) AS revenue
        FROM customer AS c, lineorder AS lo, supplier AS s, date AS d
        WHERE lo.custkey = c.custkey
          AND lo.suppkey = s.suppkey
          AND lo.orderdate = d.datekey
          AND c.city IN ('UNITED KI1', 'UNITED KI5')
          AND s.city IN ('UNITED KI1', 'UNITED KI5')
          AND d.year BETWEEN 1992 AND 1997
        GROUP BY c.city, s.city, d.year
        ORDER BY year ASC, revenue DESC;
    """,
    "Q3.4": """
        SELECT c.city, s.city, d.year, sum(lo.revenue) AS revenue
        FROM customer AS c, lineorder AS lo, supplier AS s, date AS d
        WHERE lo.custkey = c.custkey
          AND lo.suppkey = s.suppkey
          AND lo.orderdate = d.datekey
          AND c.city IN ('UNITED KI1', 'UNITED KI5')
          AND s.city IN ('UNITED KI1', 'UNITED KI5')
          AND d.yearmonth = 'Dec1997'
        GROUP BY c.city, s.city, d.year
        ORDER BY year ASC, revenue DESC;
    """,
    "Q4.1": """
        SELECT d.year, c.nation, sum(lo.revenue - lo.supplycost) AS profit
        FROM date AS d, customer AS c, supplier AS s, part AS p,
             lineorder AS lo
        WHERE lo.custkey = c.custkey
          AND lo.suppkey = s.suppkey
          AND lo.partkey = p.partkey
          AND lo.orderdate = d.datekey
          AND c.region = 'AMERICA'
          AND s.region = 'AMERICA'
          AND p.mfgr IN ('MFGR#1', 'MFGR#2')
        GROUP BY d.year, c.nation
        ORDER BY year, nation;
    """,
    "Q4.2": """
        SELECT d.year, s.nation, p.category,
               sum(lo.revenue - lo.supplycost) AS profit
        FROM date AS d, customer AS c, supplier AS s, part AS p,
             lineorder AS lo
        WHERE lo.custkey = c.custkey
          AND lo.suppkey = s.suppkey
          AND lo.partkey = p.partkey
          AND lo.orderdate = d.datekey
          AND c.region = 'AMERICA'
          AND s.region = 'AMERICA'
          AND d.year IN (1997, 1998)
          AND p.mfgr IN ('MFGR#1', 'MFGR#2')
        GROUP BY d.year, s.nation, p.category
        ORDER BY year, nation, category;
    """,
    "Q4.3": """
        SELECT d.year, s.city, p.brand1,
               sum(lo.revenue - lo.supplycost) AS profit
        FROM date AS d, customer AS c, supplier AS s, part AS p,
             lineorder AS lo
        WHERE lo.custkey = c.custkey
          AND lo.suppkey = s.suppkey
          AND lo.partkey = p.partkey
          AND lo.orderdate = d.datekey
          AND c.region = 'AMERICA'
          AND s.nation = 'UNITED STATES'
          AND d.year IN (1997, 1998)
          AND p.category = 'MFGR#14'
        GROUP BY d.year, s.city, p.brand1
        ORDER BY year, city, brand1;
    """,
}

__all__ = ["SQL_TEXT"]
