"""On-disk caching of generated SSB databases.

Generation is deterministic in (scale factor, seed) but costs real time
at larger scales (sorting 60 M rows per projection adds up).  This module
persists a generated :class:`~repro.ssb.generator.SsbData` as one ``.npz``
of column arrays plus a JSON sidecar of dictionaries and metadata, and
loads it back bit-identically.

Use directly::

    from repro.ssb.cache import load_or_generate
    data = load_or_generate(0.2, cache_dir="~/.cache/repro")

or set ``REPRO_CACHE_DIR`` and the benchmark harness caches
automatically.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from ..errors import StorageError
from ..storage.column import Column, StringDictionary
from ..storage.table import SortOrder, Table
from ..types import ColumnType, TypeKind
from .generator import DEFAULT_SEED, SsbData, generate

_FORMAT_VERSION = 1


@dataclass
class CacheHealth:
    """Observable record of cache outcomes.

    A cached artifact that exists but cannot be decoded is **corruption**,
    not a miss — regeneration hides the broken file, so the event is
    counted here and warned about instead of being swallowed silently.

    Counters mutate under a lock: the serving layer loads datasets from
    concurrent client threads, and ``+=`` on a shared int is a lost
    update waiting to happen.
    """

    hits: int = 0
    misses: int = 0
    corruption_events: int = 0
    last_corruption: Optional[str] = None

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record_hit(self) -> None:
        with self._lock:
            self.hits += 1

    def record_miss(self) -> None:
        with self._lock:
            self.misses += 1

    def record_corruption(self, path: Path, error: Exception) -> None:
        with self._lock:
            self.corruption_events += 1
            self.last_corruption = \
                f"{path}: {type(error).__name__}: {error}"
            message = self.last_corruption
        warnings.warn(
            f"cached SSB artifact is corrupt and will be regenerated "
            f"({message})",
            RuntimeWarning,
            stacklevel=3,
        )


#: Module-wide health record (the cache itself is module-level functions).
CACHE_HEALTH = CacheHealth()


def cache_key(scale_factor: float, seed: int) -> str:
    return f"ssb_v{_FORMAT_VERSION}_sf{scale_factor:g}_seed{seed}"


def save(data: SsbData, directory: Path) -> Path:
    """Persist ``data``; returns the .npz path."""
    directory = Path(directory).expanduser()
    directory.mkdir(parents=True, exist_ok=True)
    stem = directory / cache_key(data.scale_factor, data.seed)
    arrays: Dict[str, np.ndarray] = {}
    meta: Dict[str, object] = {
        "version": _FORMAT_VERSION,
        "scale_factor": data.scale_factor,
        "seed": data.seed,
        "tables": {},
    }
    for table_name, table in data.tables.items():
        columns_meta = []
        for column in table.columns():
            key = f"{table_name}.{column.name}"
            arrays[key] = column.data
            entry = {
                "name": column.name,
                "kind": column.ctype.kind.value,
                "width": column.ctype.width,
            }
            if column.dictionary is not None:
                entry["dictionary"] = column.dictionary.strings
            columns_meta.append(entry)
        meta["tables"][table_name] = {
            "columns": columns_meta,
            "sort_keys": list(table.sort_order.keys),
        }
    np.savez_compressed(str(stem) + ".npz", **arrays)
    (stem.parent / (stem.name + ".json")).write_text(json.dumps(meta))
    return Path(str(stem) + ".npz")


def load(scale_factor: float, seed: int, directory: Path
         ) -> Optional[SsbData]:
    """Load a cached database, or None when absent/unreadable."""
    directory = Path(directory).expanduser()
    stem = directory / cache_key(scale_factor, seed)
    npz_path = Path(str(stem) + ".npz")
    json_path = stem.parent / (stem.name + ".json")
    if not npz_path.exists() or not json_path.exists():
        CACHE_HEALTH.record_miss()
        return None
    try:
        meta = json.loads(json_path.read_text())
        if meta.get("version") != _FORMAT_VERSION:
            CACHE_HEALTH.record_miss()  # stale format, a legitimate miss
            return None
        archive = np.load(npz_path)
        tables: Dict[str, Table] = {}
        for table_name, table_meta in meta["tables"].items():
            columns = []
            for entry in table_meta["columns"]:
                data_arr = archive[f"{table_name}.{entry['name']}"]
                ctype = ColumnType(TypeKind(entry["kind"]), entry["width"])
                dictionary = None
                if "dictionary" in entry:
                    dictionary = StringDictionary.from_sorted_unique(
                        entry["dictionary"])
                columns.append(Column(entry["name"], ctype, data_arr,
                                      dictionary))
            tables[table_name] = Table(
                table_name, columns,
                SortOrder(tuple(table_meta["sort_keys"])))
        loaded = SsbData(
            scale_factor=meta["scale_factor"],
            seed=meta["seed"],
            lineorder=tables["lineorder"],
            customer=tables["customer"],
            supplier=tables["supplier"],
            part=tables["part"],
            date=tables["date"],
        )
    except Exception as error:  # any decode failure: zip, json, dtype, ...
        # The artifact exists but cannot be decoded: that is corruption,
        # not a miss.  Surface it (counter + warning) and fall back to
        # regeneration so callers keep working.
        CACHE_HEALTH.record_corruption(npz_path, error)
        return None
    CACHE_HEALTH.record_hit()
    return loaded


def load_or_generate(
    scale_factor: float,
    seed: int = DEFAULT_SEED,
    cache_dir: Optional[os.PathLike] = None,
) -> SsbData:
    """Load from the cache when possible; otherwise generate and cache.

    ``cache_dir`` defaults to the ``REPRO_CACHE_DIR`` environment
    variable; with neither set, this is plain generation.
    """
    if cache_dir is None:
        env = os.environ.get("REPRO_CACHE_DIR")
        if env:
            cache_dir = Path(env)
    if cache_dir is None:
        return generate(scale_factor, seed)
    cached = load(scale_factor, seed, Path(cache_dir))
    if cached is not None:
        return cached
    data = generate(scale_factor, seed)
    save(data, Path(cache_dir))
    return data


__all__ = ["save", "load", "load_or_generate", "cache_key",
           "CacheHealth", "CACHE_HEALTH"]
