"""repro — a reproduction of Abadi, Madden & Hachem, SIGMOD 2008:
"Column-Stores vs. Row-Stores: How Different Are They Really?"

The package contains two complete analytical database engines over a
simulated 2008-era disk, the Star Schema Benchmark, and the harness that
regenerates every figure in the paper's evaluation:

* :class:`repro.rowstore.SystemX` — a commercial-style row store with
  the paper's five physical designs (traditional, bitmap, materialized
  views, vertical partitioning, index-only);
* :class:`repro.colstore.CStore` — a C-Store-style column store whose
  optimizations (compression, late materialization, block iteration,
  and the paper's **invisible join**) can be toggled per query;
* :func:`repro.ssb.generate` — the deterministic SSB data generator;
* :func:`repro.sql.parse_query` — a SQL frontend for the SSB dialect;
* :mod:`repro.bench` — per-figure benchmark drivers
  (``python -m repro.bench all``).

Quickstart::

    from repro import generate, CStore, SystemX, DesignKind, query_by_name

    data = generate(scale_factor=0.01)
    cstore = CStore(data)
    run = cstore.execute(query_by_name("Q3.1"))
    print(run.result.pretty())
    print(f"simulated {run.seconds:.3f}s on 2008 hardware")
"""

from .core.config import CONFIG_LADDER, ExecutionConfig
from .colstore.engine import CStore, ColumnStoreRun
from .plan.logical import StarQuery
from .result import ResultSet
from .rowstore.designs import DesignKind
from .rowstore.engine import RowStoreRun, SystemX
from .reference import execute as reference_execute
from .sql import parse_query
from .ssb.generator import SsbData, generate
from .ssb.queries import PAPER_SELECTIVITIES, all_queries, query_by_name

__version__ = "1.0.0"

__all__ = [
    "CStore",
    "ColumnStoreRun",
    "SystemX",
    "RowStoreRun",
    "DesignKind",
    "ExecutionConfig",
    "CONFIG_LADDER",
    "StarQuery",
    "ResultSet",
    "SsbData",
    "generate",
    "all_queries",
    "query_by_name",
    "PAPER_SELECTIVITIES",
    "parse_query",
    "reference_execute",
    "__version__",
]
