"""Per-client session state for the query service.

A :class:`Session` is one logical client: which engine it targets, the
execution config (column store) or physical design (row store) it runs
under, whether it wants cache service, and running tallies of what it
got.  Sessions are cheap descriptors — all heavy state (engines, cache,
admission) lives on the :class:`~repro.serve.service.QueryService` that
issued them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from ..core.config import ExecutionConfig
from ..plan.logical import StarQuery
from ..rowstore.designs import DesignKind
from ..storage.colfile import CompressionLevel


@dataclass
class SessionStats:
    """What one session has been served so far."""

    submitted: int = 0
    completed: int = 0
    errors: int = 0
    exact_hits: int = 0
    subsumption_hits: int = 0
    engine_runs: int = 0
    simulated_seconds: float = 0.0
    wall_seconds: float = 0.0


class Session:
    """One logical client of a :class:`QueryService`."""

    def __init__(
        self,
        service: "object",
        name: str,
        engine: str = "cs",
        config: Optional[ExecutionConfig] = None,
        level: Optional[CompressionLevel] = None,
        design: DesignKind = DesignKind.TRADITIONAL,
        cached: bool = True,
        priority: int = 0,
    ) -> None:
        if engine not in ("cs", "rs"):
            raise ValueError(f"unknown engine {engine!r} (expected cs or rs)")
        self.service = service
        self.name = name
        self.engine = engine
        self.config = config if config is not None \
            else ExecutionConfig.baseline()
        self.level = level
        self.design = design
        self.cached = cached
        #: brownout class: <= 0 is sheddable when the service is over
        #: its latency threshold; > 0 rides out the brownout
        self.priority = priority
        self.stats = SessionStats()
        self.closed = False
        self._lock = threading.Lock()

    def execute(self, query: StarQuery, cached: Optional[bool] = None,
                timeout: Optional[float] = None,
                deadline: Optional[float] = None,
                sim_deadline: Optional[float] = None,
                priority: Optional[int] = None):
        """Submit ``query`` through the owning service (blocking)."""
        return self.service.submit(query, session=self, cached=cached,
                                   timeout=timeout, deadline=deadline,
                                   sim_deadline=sim_deadline,
                                   priority=priority)

    def execute_sql(self, sql: str, **kwargs):
        """Parse and serve one SQL statement through the owning service
        (SELECT returns a ``ServiceRun``; INSERT/DELETE return rows
        affected)."""
        return self.service.execute_sql(sql, session=self, **kwargs)

    def note_submitted(self) -> None:
        with self._lock:
            self.stats.submitted += 1

    def note_result(self, source: str, simulated_seconds: float,
                    wall_seconds: float) -> None:
        with self._lock:
            self.stats.completed += 1
            if source == "cache-exact":
                self.stats.exact_hits += 1
            elif source == "cache-refilter":
                self.stats.subsumption_hits += 1
            else:
                self.stats.engine_runs += 1
            self.stats.simulated_seconds += simulated_seconds
            self.stats.wall_seconds += wall_seconds

    def note_error(self) -> None:
        with self._lock:
            self.stats.errors += 1

    def close(self) -> None:
        self.closed = True


__all__ = ["Session", "SessionStats"]
