"""The query service: admission control, dispatch, semantic caching.

:class:`QueryService` fronts one :class:`~repro.colstore.engine.CStore`
and/or one :class:`~repro.rowstore.engine.SystemX`.  Clients hold
:class:`~repro.serve.session.Session` handles and submit
:class:`~repro.plan.logical.StarQuery` objects; the service

1. **admits** — a bounded number of queries run at once; the rest wait
   in a FIFO queue with an optional queue timeout and per-query
   deadline, failing fast with typed
   :class:`~repro.errors.AdmissionError` / ``DeadlineError``;
2. **looks up** — the semantic cache first (exact result hits, then
   subsumed position entries re-filtered into fresh results);
3. **protects** — a per-(engine, fact-table) circuit breaker opens
   after repeated persistent faults; while open, queries are answered
   **degraded** from the cache when honesty allows (exact hits, or
   symbolically-proven subsumption — never key-set guesses) and refused
   with typed :class:`~repro.errors.BreakerOpenError` otherwise.
   Deadlines propagate into engine execution as cooperative
   cancellation tokens checked at page/morsel boundaries, and an
   optional brownout policy sheds low-priority queued work
   (:class:`~repro.errors.ShedError`) when estimated wait exceeds a
   threshold;
4. **executes** — on a miss, under the target engine's lock, optionally
   batching same-projection queries into one shared-scan wave;
5. **accounts** — every step runs under the requesting query's own
   :class:`~repro.simio.stats.QueryStats` ledger and span tracer
   (``admission-wait``, ``breaker-check``, ``cache-lookup``,
   ``cache-refilter``, ``cache-admit``, ``shared-scan``, plus ``shed``
   and ``degraded-hit`` markers), and the finished trace is verified
   to sum exactly to the flat ledger — on error paths too, where the
   partial trace rides on the raised exception as ``error.trace``.
   With the cache disabled and no faults, a service run's ledger is
   byte-identical to a direct engine call.

Writes go through :meth:`QueryService.insert` / ``delete`` / ``move``
(or ``execute_sql``): each mutation lands on every attached engine
under its lock, evicts cached entries touching the written table, and
while a delta is pending the cache is bypassed entirely, so no
merge-blind answer can serve stale rows.

All breaker/brownout timing runs on a :class:`ServiceClock` of
accumulated *simulated* seconds, so resilience behaviour is exactly
reproducible for a given submission order.  ``drain()`` stops admitting
and waits for in-flight queries to finish; the service is also a
context manager.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import (
    AdmissionError,
    BreakerOpenError,
    ChecksumError,
    CorruptPageError,
    DeadlineError,
    PlanError,
    QueryCancelledError,
    ReproError,
    ShedError,
    TransientIOError,
)
from ..obs import Trace, Tracer
from ..plan.logical import StarQuery
from ..result import ResultSet
from ..simio.stats import CostBreakdown, CostModel, PAPER_2008, QueryStats
from ..sql import bind, bind_delete, bind_insert, parse_statement
from ..sql.ast import DeleteStatement, InsertStatement
from .adapters import ColumnStoreAdapter, RowStoreAdapter
from .resilience import (
    BreakerBoard,
    CancellationToken,
    HALF_OPEN,
    OPEN,
    ServiceClock,
)
from .semcache import SemanticCache, normalize_query
from .session import Session
from .sharing import ScanSharing

#: engine failures that count toward a scope's circuit breaker: the
#: storage stack's persistent verdicts plus cooperative timeouts
BREAKER_FAULTS = (CorruptPageError, ChecksumError, TransientIOError,
                  QueryCancelledError)


@dataclass
class ServiceConfig:
    """Knobs of one :class:`QueryService`."""

    max_in_flight: int = 4          #: queries allowed past admission at once
    queue_limit: int = 64           #: waiters beyond which admission refuses
    queue_timeout: Optional[float] = 30.0  #: default max queue wait (wall s)
    cache: bool = True              #: semantic cache on/off
    cache_budget_bytes: int = 64 << 20
    cache_admit_seconds: float = 1e-3  #: cost-aware admission threshold
    shared_scans: bool = False      #: batch same-projection queries per wave
    wave_limit: int = 8             #: max queries served per shared wave
    breakers: bool = True           #: per-scope circuit breakers on/off
    breaker_threshold: int = 3      #: consecutive faults before opening
    breaker_cooldown: float = 0.05  #: simulated seconds open before half-open
    degraded_serving: bool = True   #: answer from cache while breaker is open
    shed_threshold: Optional[float] = None  #: brownout: est. wait (sim s)
    deadline: Optional[float] = None        #: default wall deadline per query
    sim_deadline: Optional[float] = None    #: default simulated-seconds budget
    failure_clock_seconds: float = 1e-3     #: clock charge per failed query


@dataclass
class ServiceRun:
    """Outcome of one query served by the service.

    ``stats``/``cost``/``trace`` cover everything done on the query's
    behalf — admission bookkeeping, cache probes, re-filtering, and (on
    a miss) the engine execution itself."""

    query_name: str
    session_name: str
    engine: str
    source: str                     #: "engine" | "cache-exact" | "cache-refilter"
    result: ResultSet
    stats: QueryStats
    cost: CostBreakdown
    trace: Trace
    wall_seconds: float
    shared: bool = False            #: served as part of a shared-scan wave
    degraded: bool = False          #: answered from cache under an open breaker

    @property
    def seconds(self) -> float:
        """Priced simulated seconds."""
        return self.cost.total_seconds


class _Waiter:
    """One queued admission request (priority + shed flag)."""

    __slots__ = ("priority", "shed")

    def __init__(self, priority: int) -> None:
        self.priority = priority
        self.shed = False


class AdmissionController:
    """Bounded FIFO admission with queue timeout, deadlines, and
    priority-aware load shedding.

    When ``shed_threshold`` is set (simulated seconds), a low-priority
    arrival (``priority <= 0``) is shed with :class:`ShedError` as soon
    as the *estimated* wait — latency EWMA times backlog over the
    in-flight limit — exceeds the threshold (a brownout: the service
    keeps serving high-priority work at full quality instead of
    degrading everyone).  Independently, when the queue is full, a
    higher-priority arrival displaces the lowest-priority waiter rather
    than being refused."""

    #: weight of the newest observation in the latency EWMA
    EWMA_ALPHA = 0.2

    def __init__(self, max_in_flight: int, queue_limit: int,
                 queue_timeout: Optional[float],
                 shed_threshold: Optional[float] = None) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.max_in_flight = max_in_flight
        self.queue_limit = queue_limit
        self.queue_timeout = queue_timeout
        self.shed_threshold = shed_threshold
        self._cond = threading.Condition()
        self._waiters: List[_Waiter] = []
        self._in_flight = 0
        self._draining = False
        self._latency_ewma: Optional[float] = None

    @property
    def in_flight(self) -> int:
        with self._cond:
            return self._in_flight

    @property
    def queued(self) -> int:
        with self._cond:
            return len(self._waiters)

    @property
    def latency_ewma(self) -> float:
        """Smoothed simulated seconds per completed query."""
        with self._cond:
            return self._latency_ewma if self._latency_ewma is not None \
                else 0.0

    def note_latency(self, simulated_seconds: float) -> None:
        """Feed one completed query's simulated latency into the EWMA."""
        with self._cond:
            if self._latency_ewma is None:
                self._latency_ewma = simulated_seconds
            else:
                self._latency_ewma += self.EWMA_ALPHA * (
                    simulated_seconds - self._latency_ewma)

    def _estimated_wait(self) -> float:
        """Expected simulated seconds before a new arrival would start
        (lock held): backlog ahead of it, paced by the EWMA."""
        if self._latency_ewma is None:
            return 0.0
        backlog = len(self._waiters) + self._in_flight
        return self._latency_ewma * backlog / self.max_in_flight

    def _shed_candidate(self) -> Optional[_Waiter]:
        """The waiter a full queue would sacrifice: the latest-queued
        among the lowest-priority (lock held)."""
        best = None
        for waiter in self._waiters:
            if waiter.shed:
                continue
            if best is None or waiter.priority <= best.priority:
                best = waiter
        return best

    def acquire(self, timeout: Optional[float] = None,
                deadline_at: Optional[float] = None,
                priority: int = 0) -> None:
        """Block until admitted (FIFO).  Raises :class:`AdmissionError`
        when the queue is full, the wait exceeds ``timeout``, or the
        service is draining; :class:`DeadlineError` when ``deadline_at``
        (a ``time.monotonic`` instant) passes first; :class:`ShedError`
        when brownout policy or a higher-priority arrival sheds it."""
        if timeout is None:
            timeout = self.queue_timeout
        token = _Waiter(priority)
        with self._cond:
            if self._draining:
                raise AdmissionError(
                    "service is draining; not accepting new queries")
            if self.shed_threshold is not None and priority <= 0:
                estimated = self._estimated_wait()
                if estimated > self.shed_threshold:
                    raise ShedError(
                        f"brownout: estimated wait {estimated:.4f}s "
                        f"(simulated) exceeds shed threshold "
                        f"{self.shed_threshold:g}s for priority {priority}")
            # the limit bounds *waiting* requests; one that can start
            # immediately only passes through the list, it never queues
            would_wait = bool(self._waiters) \
                or self._in_flight >= self.max_in_flight
            if would_wait and len(self._waiters) >= self.queue_limit:
                victim = self._shed_candidate()
                if victim is not None and victim.priority < priority:
                    # displace the least important waiter instead of
                    # refusing the more important arrival
                    victim.shed = True
                    self._cond.notify_all()
                else:
                    raise AdmissionError(
                        f"admission queue is full "
                        f"({self.queue_limit} queries already waiting)")
            self._waiters.append(token)
            started = time.monotonic()
            try:
                while True:
                    if token.shed:
                        raise ShedError(
                            "shed from the admission queue by a "
                            "higher-priority arrival")
                    if self._draining:
                        raise AdmissionError(
                            "service is draining; not accepting new queries")
                    now = time.monotonic()
                    if deadline_at is not None and now >= deadline_at:
                        raise DeadlineError(
                            f"deadline expired after {now - started:.3f}s "
                            f"in the admission queue")
                    if self._waiters[0] is token \
                            and self._in_flight < self.max_in_flight:
                        self._in_flight += 1
                        return
                    waits = []
                    if timeout is not None:
                        remaining = started + timeout - now
                        if remaining <= 0:
                            raise AdmissionError(
                                f"queue timeout: not admitted within "
                                f"{timeout:g}s "
                                f"({len(self._waiters)} waiting, "
                                f"{self._in_flight} in flight)")
                        waits.append(remaining)
                    if deadline_at is not None:
                        waits.append(deadline_at - now)
                    self._cond.wait(min(waits) if waits else None)
            finally:
                self._waiters.remove(token)
                self._cond.notify_all()

    def release(self) -> None:
        with self._cond:
            self._in_flight -= 1
            self._cond.notify_all()

    def drain(self) -> None:
        """Refuse new queries and wait for in-flight ones to finish."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()
            while self._in_flight > 0 or self._waiters:
                self._cond.wait()

    def resume(self) -> None:
        with self._cond:
            self._draining = False
            self._cond.notify_all()


@dataclass
class ServiceStats:
    """Service-wide tallies (thread-safe via :meth:`note`)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    deadline_misses: int = 0
    engine_runs: int = 0
    exact_hits: int = 0
    subsumption_hits: int = 0
    shared_waves: int = 0
    shared_followers: int = 0
    shed: int = 0                   #: brownout / displacement sheds
    cancelled: int = 0              #: cooperative mid-execution cancels
    writes: int = 0                 #: INSERT/DELETE statements applied
    moves: int = 0                  #: tuple-mover runs
    recoveries: int = 0             #: cold-start journal replays
    degraded_hits: int = 0          #: cache answers under an open breaker
    breaker_opens: int = 0
    breaker_half_opens: int = 0
    breaker_closes: int = 0
    breaker_rejections: int = 0     #: open-breaker refusals (no cache answer)
    simulated_seconds: float = 0.0
    wall_seconds: float = 0.0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def note(self, **deltas) -> None:
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "deadline_misses": self.deadline_misses,
                "engine_runs": self.engine_runs,
                "exact_hits": self.exact_hits,
                "subsumption_hits": self.subsumption_hits,
                "shared_waves": self.shared_waves,
                "shared_followers": self.shared_followers,
                "shed": self.shed,
                "cancelled": self.cancelled,
                "writes": self.writes,
                "moves": self.moves,
                "recoveries": self.recoveries,
                "degraded_hits": self.degraded_hits,
                "breaker_opens": self.breaker_opens,
                "breaker_half_opens": self.breaker_half_opens,
                "breaker_closes": self.breaker_closes,
                "breaker_rejections": self.breaker_rejections,
                "simulated_seconds": self.simulated_seconds,
                "wall_seconds": self.wall_seconds,
            }


class _Request:
    """One in-flight submission's mutable state."""

    def __init__(self, query: StarQuery, session: Session, use_cache: bool,
                 stats: QueryStats, tracer: Tracer,
                 deadline_at: Optional[float],
                 token: Optional[CancellationToken] = None) -> None:
        self.query = query
        self.session = session
        self.use_cache = use_cache
        self.stats = stats
        self.tracer = tracer
        self.deadline_at = deadline_at
        self.token = token
        self.done = False
        self.run: Optional[ServiceRun] = None
        self.error: Optional[BaseException] = None
        self.shared = False
        self.started = time.perf_counter()


class QueryService:
    """A concurrent query service over one or both engines."""

    def __init__(
        self,
        cstore=None,
        system_x=None,
        config: Optional[ServiceConfig] = None,
        cost_model: CostModel = PAPER_2008,
    ) -> None:
        if cstore is None and system_x is None:
            raise ValueError("QueryService needs at least one engine")
        self.config = config if config is not None else ServiceConfig()
        self.cost_model = cost_model
        self._adapters: Dict[str, object] = {}
        self._engine_locks: Dict[str, threading.Lock] = {}
        if cstore is not None:
            self._adapters["cs"] = ColumnStoreAdapter(cstore)
            self._engine_locks["cs"] = threading.Lock()
        if system_x is not None:
            self._adapters["rs"] = RowStoreAdapter(system_x)
            self._engine_locks["rs"] = threading.Lock()
        self.cache = SemanticCache(
            budget_bytes=self.config.cache_budget_bytes,
            admit_seconds=self.config.cache_admit_seconds)
        self.admission = AdmissionController(
            self.config.max_in_flight, self.config.queue_limit,
            self.config.queue_timeout,
            shed_threshold=self.config.shed_threshold)
        self.sharing = ScanSharing()
        self.stats = ServiceStats()
        #: deterministic resilience clock: accumulated simulated seconds
        self.clock = ServiceClock()
        self.breakers: Optional[BreakerBoard] = None
        if self.config.breakers:
            self.breakers = BreakerBoard(
                self.config.breaker_threshold, self.config.breaker_cooldown,
                counter=self.stats.note)
        self.sessions: Dict[str, Session] = {}
        self._session_seq = 0
        self._session_lock = threading.Lock()
        #: explicit DML serialization: one statement's multi-engine
        #: application completes before the next begins, so racing
        #: writers queue here instead of tripping the write store's
        #: WriteContentionError
        self._dml_lock = threading.Lock()
        self._closed = False

    # -------------------------------------------------------------- #
    # sessions
    # -------------------------------------------------------------- #
    def session(self, name: Optional[str] = None, engine: Optional[str] = None,
                **kwargs) -> Session:
        """Open a logical client session (see :class:`Session`)."""
        if engine is None:
            engine = "cs" if "cs" in self._adapters else "rs"
        if engine not in self._adapters:
            raise PlanError(
                f"engine {engine!r} is not attached to this service")
        with self._session_lock:
            if name is None:
                self._session_seq += 1
                name = f"s{self._session_seq}"
            session = Session(self, name, engine=engine, **kwargs)
            self.sessions[name] = session
            return session

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #
    def drain(self) -> None:
        """Stop admitting and wait for in-flight queries to finish."""
        self.admission.drain()

    def close(self) -> None:
        self._closed = True
        self.drain()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def invalidate(self, table: Optional[str] = None) -> int:
        """Invalidate cached entries (all, or those touching ``table``)."""
        return self.cache.invalidate(table)

    # -------------------------------------------------------------- #
    # writes
    # -------------------------------------------------------------- #
    def insert(self, table: str, rows,
               stats: Optional[QueryStats] = None) -> int:
        """Buffer ``rows`` into every attached engine's delta store.

        Runs under each engine's lock so a write never interleaves with
        an executing query; the engines validate all-or-nothing, so a
        refused batch leaves both stores untouched.  Cached entries
        touching ``table`` are evicted (other tables' entries and all
        hit counters survive).  Returns rows accepted."""
        count = self._write(lambda engine, ledger:
                            engine.insert(table, rows, ledger), stats)
        self.cache.invalidate(table)
        self.stats.note(writes=1)
        return count

    def delete(self, table: str, predicates,
               stats: Optional[QueryStats] = None) -> int:
        """Mark matching rows deleted in every attached engine (dimension
        deletes are RESTRICTed while referenced).  Evicts cached entries
        touching ``table``; returns rows marked."""
        count = self._write(lambda engine, ledger:
                            engine.delete(table, predicates, ledger), stats)
        self.cache.invalidate(table)
        self.stats.note(writes=1)
        return count

    def move(self, stats: Optional[QueryStats] = None) -> int:
        """Run each attached engine's tuple mover (drains its WOS into
        fresh base pages).  Cached entries need no eviction here — every
        write already evicted its table's entries, and the cache is
        bypassed while a delta is pending — so surviving entries are for
        untouched tables, whose pages the mover rebuilds byte-identically.
        Returns rows merged."""
        count = self._write(lambda engine, ledger: engine.move(ledger),
                            stats)
        self.stats.note(moves=1)
        return count

    def recover(self) -> Dict[str, object]:
        """Cold-start crash recovery for every attached engine.

        Replays each engine's redo journal against its genesis tables
        (see ``docs/writes.md``, "Crash recovery") under the DML and
        engine locks, so recovery never interleaves with a write or an
        executing query.  Each engine's replay runs on its own ledger
        under a ``recovery`` root span; the verified trace rides on the
        returned report.  The cache is invalidated wholesale — recovered
        state supersedes anything admitted before the restart.  Returns
        ``{engine name: RecoveryReport}``.
        """
        if self._closed:
            raise AdmissionError("service is closed")
        reports: Dict[str, object] = {}
        with self._dml_lock:
            for name in sorted(self._adapters):
                engine = self._adapters[name].engine
                with self._engine_locks[name]:
                    ledger = QueryStats()
                    tracer = Tracer(ledger, self.cost_model,
                                    root_name="recovery")
                    report = engine.recover(stats=ledger, tracer=tracer)
                    report.trace = tracer.finish(ledger)
                    reports[name] = report
        self.cache.invalidate()
        self.stats.note(recoveries=1)
        return reports

    def _write(self, apply_fn, stats: Optional[QueryStats]) -> int:
        """Apply one mutation to every attached engine, under its lock.

        The attached engines front the same logical data, so a write
        must land on all of them or reads would diverge by engine; the
        per-engine counts are required to agree."""
        if self._closed:
            raise AdmissionError("service is closed")
        if stats is None:
            stats = QueryStats()
        counts = {}
        # the DML lock serializes whole statements: without it two
        # writers could interleave across the per-engine locks (engine A
        # sees X then Y, engine B sees Y then X) and the journals would
        # disagree on epoch order
        with self._dml_lock:
            for name in sorted(self._adapters):
                engine = self._adapters[name].engine
                with self._engine_locks[name]:
                    counts[name] = apply_fn(engine, stats)
        if len(set(counts.values())) > 1:
            raise ReproError(
                f"engines disagree on rows affected: {counts} — attached "
                f"stores have diverged (were they written directly?)")
        return next(iter(counts.values()))

    def execute_sql(self, sql: str, session: Optional[Session] = None,
                    **submit_kwargs):
        """Parse and serve one SQL statement.

        SELECT binds to a :class:`StarQuery` and goes through
        :meth:`submit` (returns its :class:`ServiceRun`); INSERT/DELETE
        go through the service write path (returns rows affected)."""
        statement = parse_statement(sql)
        if isinstance(statement, InsertStatement):
            table, rows = bind_insert(statement)
            return self.insert(table, rows)
        if isinstance(statement, DeleteStatement):
            table, predicates = bind_delete(statement)
            return self.delete(table, predicates)
        query = bind(statement, name="sql")
        return self.submit(query, session=session, **submit_kwargs)

    def serve_stats(self) -> Dict:
        """One dict for dashboards: service, cache, admission,
        resilience, sessions."""
        snap = self.stats.snapshot()
        return {
            "service": snap,
            "cache": self.cache.snapshot(),
            "admission": {
                "max_in_flight": self.admission.max_in_flight,
                "queue_limit": self.admission.queue_limit,
                "in_flight": self.admission.in_flight,
                "queued": self.admission.queued,
                "latency_ewma": self.admission.latency_ewma,
            },
            "resilience": {
                "breakers": self.breakers.states()
                if self.breakers is not None else {},
                "clock_seconds": self.clock.now(),
                "shed": snap["shed"],
                "degraded_hits": snap["degraded_hits"],
                "cancelled": snap["cancelled"],
                "breaker_rejections": snap["breaker_rejections"],
            },
            "sessions": {
                name: vars(s.stats).copy()
                for name, s in sorted(self.sessions.items())
            },
        }

    # -------------------------------------------------------------- #
    # submission
    # -------------------------------------------------------------- #
    def submit(self, query: StarQuery, session: Optional[Session] = None,
               cached: Optional[bool] = None,
               timeout: Optional[float] = None,
               deadline: Optional[float] = None,
               sim_deadline: Optional[float] = None,
               priority: Optional[int] = None) -> ServiceRun:
        """Serve one query for ``session`` (blocking).

        ``cached=False`` bypasses the cache for this call (the honest-
        accounting escape hatch); ``timeout`` caps the admission-queue
        wait; ``deadline`` caps total wall time — in the queue *and*,
        via a cooperative cancellation token, inside engine execution;
        ``sim_deadline`` caps the query's priced *simulated* seconds the
        same cooperative way; ``priority`` overrides the session's
        brownout class (``<= 0`` is sheddable)."""
        if self._closed:
            raise AdmissionError("service is closed")
        if session is None:
            session = self.session()
        adapter = self._adapters.get(session.engine)
        if adapter is None:
            raise PlanError(
                f"engine {session.engine!r} is not attached to this service")
        use_cache = self.config.cache and session.cached \
            if cached is None else bool(cached) and self.config.cache
        # every cache path — exact hits, key-set probes, re-filters,
        # position recording — reads base pages only and would be blind
        # to a pending delta; bypass until the tuple mover drains it
        if use_cache and adapter.engine.pending_writes():
            use_cache = False
        if deadline is None:
            deadline = self.config.deadline
        if sim_deadline is None:
            sim_deadline = self.config.sim_deadline
        if priority is None:
            priority = session.priority
        session.note_submitted()
        self.stats.note(submitted=1)

        stats = QueryStats()
        tracer = Tracer(stats, self.cost_model, root_name="service")
        deadline_at = None if deadline is None \
            else time.monotonic() + deadline
        token = None
        if deadline_at is not None or sim_deadline is not None:
            token = CancellationToken(deadline_at=deadline_at,
                                      sim_budget=sim_deadline,
                                      cost_model=self.cost_model)
        request = _Request(query, session, use_cache, stats, tracer,
                           deadline_at, token=token)
        try:
            with tracer.span("admission-wait"):
                self.admission.acquire(timeout=timeout,
                                       deadline_at=deadline_at,
                                       priority=priority)
        except DeadlineError as error:
            self.stats.note(rejected=1, deadline_misses=1)
            session.note_error()
            self._attach_trace(error, request)
            raise
        except ShedError as error:
            self.stats.note(rejected=1, shed=1)
            session.note_error()
            tracer.leaf("shed", QueryStats())
            self._attach_trace(error, request)
            raise
        except AdmissionError as error:
            self.stats.note(rejected=1)
            session.note_error()
            self._attach_trace(error, request)
            raise

        share_key = None
        try:
            if self.config.shared_scans:
                share_key = adapter.share_key(query, session)
                self.sharing.enqueue(share_key, request)
            with self._engine_locks[session.engine]:
                if not request.done:
                    if share_key is not None:
                        wave = self.sharing.take(share_key, request,
                                                 self.config.wave_limit)
                    else:
                        wave = [request]
                    self._serve_wave(adapter, wave)
        finally:
            if share_key is not None:
                self.sharing.discard(request)
            self.admission.release()

        if request.error is not None:
            error = request.error
            # even a failed query moves the resilience clock: the work
            # it burned, plus a fixed charge so all-failing workloads
            # still make progress toward breaker cooldowns
            self.clock.advance(self.cost_model.cost(stats).total_seconds
                               + self.config.failure_clock_seconds)
            self.stats.note(
                failed=1,
                deadline_misses=int(isinstance(error, DeadlineError)),
                cancelled=int(isinstance(error, QueryCancelledError)),
                breaker_rejections=int(isinstance(error, BreakerOpenError)))
            session.note_error()
            self._attach_trace(error, request)
            raise error
        run = request.run
        self.clock.advance(run.seconds)
        self.admission.note_latency(run.seconds)
        self.stats.note(completed=1, simulated_seconds=run.seconds,
                        wall_seconds=run.wall_seconds,
                        degraded_hits=int(run.degraded),
                        **{{"engine": "engine_runs",
                            "cache-exact": "exact_hits",
                            "cache-refilter": "subsumption_hits",
                            }[run.source]: 1})
        session.note_result(run.source, run.seconds, run.wall_seconds)
        return run

    @staticmethod
    def _attach_trace(error: BaseException, request: _Request) -> None:
        """Close the request's partial trace and ride it (plus its flat
        ledger) on the raised exception — ``error.trace`` still passes
        :meth:`Trace.verify` against ``error.stats``, so even failed
        queries account for the work they burned."""
        try:
            error.trace = request.tracer.finish(request.stats)
            error.stats = request.stats
        except (ReproError, AttributeError):
            pass

    # -------------------------------------------------------------- #
    # the serving path (engine lock held)
    # -------------------------------------------------------------- #
    def _serve_wave(self, adapter, wave: List[_Request]) -> None:
        shared = len(wave) > 1
        if shared:
            self.stats.note(shared_waves=1, shared_followers=len(wave) - 1)
        for i, request in enumerate(wave):
            try:
                now = time.monotonic()
                if request.deadline_at is not None \
                        and now >= request.deadline_at:
                    raise DeadlineError(
                        "deadline expired before execution started")
                self._serve_one(adapter, request, shared=shared,
                                warm=shared and i > 0)
            except BaseException as error:  # noqa: BLE001 — relayed to waiter
                request.error = error
            finally:
                request.done = True

    def _serve_one(self, adapter, request: _Request, shared: bool,
                   warm: bool) -> None:
        """Gate one query through its scope's breaker, then serve it.

        The breaker records at most one verdict per serve: a qualifying
        fault (``BREAKER_FAULTS``) counts as a failure, any completed
        engine touch (full run or re-filter) as a success, and a pure
        result-cache hit as neither."""
        session, engine = request.session, adapter.engine
        tracer = request.tracer
        # per shard set: a fault in one shard configuration must not trip
        # (or be masked by) the health of a differently-sharded stack
        breaker_scope = (session.engine, request.query.fact_table,
                         adapter.shard_count(session))
        trial = False
        if self.breakers is not None:
            with tracer.span("breaker-check"):
                verdict = self.breakers.admit(breaker_scope,
                                              self.clock.now())
            if verdict == OPEN:
                if self.config.degraded_serving and request.use_cache \
                        and self._serve_degraded(adapter, request, shared,
                                                 breaker_scope):
                    return
                raise BreakerOpenError(
                    breaker_scope,
                    detail="no honest cache answer available while open")
            trial = verdict == HALF_OPEN

        saved_token = engine.disk.cancellation
        if request.token is not None:
            engine.disk.cancellation = request.token
        try:
            engine_touched = self._serve_body(adapter, request, shared,
                                              warm)
        except BREAKER_FAULTS:
            if self.breakers is not None:
                self.breakers.record_failure(breaker_scope,
                                             self.clock.now())
            raise
        except BaseException:
            # not an engine-health verdict: free a reserved trial slot
            if trial:
                self.breakers.abandon_trial(breaker_scope)
            raise
        finally:
            engine.disk.cancellation = saved_token
        if self.breakers is not None:
            if engine_touched:
                self.breakers.record_success(breaker_scope)
            elif trial:
                self.breakers.abandon_trial(breaker_scope)

    def _serve_body(self, adapter, request: _Request, shared: bool,
                    warm: bool) -> bool:
        """Serve via cache/engine; returns True if the engine was
        touched (re-filter or full run), False on a pure exact hit."""
        query, session = request.query, request.session
        stats, tracer = request.stats, request.tracer
        engine = adapter.engine
        dim_cache: Dict = {}
        entry = None
        scope = None
        if request.use_cache:
            scope = adapter.scope(session)
            with tracer.span("cache-lookup"):
                stats.cache_lookups += 1
                result = self.cache.lookup_result(scope, query)
                if result is not None:
                    stats.cache_exact_hits += 1
                else:
                    # key-set probes read dimension columns: charge them
                    # to this query's ledger
                    saved = engine.disk.stats
                    engine.disk.stats = stats
                    try:
                        entry = self.cache.find_subsuming(
                            scope, normalize_query(query),
                            lambda dim: adapter.dim_key_set(
                                query, session, dim, dim_cache),
                            dimensions=frozenset(query.joins.values()))
                    finally:
                        engine.disk.stats = saved
                    if entry is None:
                        stats.cache_misses += 1
            if result is not None:
                request.run = self._finish(request, result, "cache-exact",
                                           shared)
                return False
            if entry is not None:
                saved = engine.disk.stats
                engine.disk.stats = stats
                try:
                    with tracer.span("cache-refilter"):
                        result = adapter.refilter(query, session, entry,
                                                  dim_cache)
                    stats.cache_subsumption_hits += 1
                    request.run = self._finish(request, result,
                                               "cache-refilter", shared)
                    return True
                except ReproError:
                    # a re-filter that cannot complete (e.g. the cached
                    # projection went bad) falls back to a full run
                    self.cache.discard(entry.key)
                    stats.cache_misses += 1
                finally:
                    engine.disk.stats = saved

        # miss (or cache off): run the engine, under a shared-scan span
        # when this execution is part of a wave
        span = tracer.span("shared-scan") if shared else nullcontext()
        with span:
            before = engine.disk.stats
            try:
                if request.use_cache and adapter.recordable(session):
                    run, payload, key_sets = adapter.execute_recording(
                        query, session, warm=warm)
                else:
                    run, payload, key_sets = \
                        adapter.execute(query, session, warm=warm), \
                        None, None
            except BaseException:
                # an aborted run still burned simulated work: the engine
                # installed a fresh ledger for this query (identity
                # changed), so fold its partial counts into the request
                # ledger before the exception carries the trace out —
                # failure-path clock advances and ``error.stats`` then
                # account for the pages actually touched
                partial = engine.disk.stats
                if partial is not before and partial is not stats:
                    stats.merge(partial)
                raise
            stats.merge(run.stats)
            tracer.attach_span(run.trace.root)

        if request.use_cache and self.cache.worth_admitting(run.seconds):
            with tracer.span("cache-admit"):
                self.cache.admit_result(scope, query, run.result,
                                        run.seconds, _tables_of(query))
                if payload is not None:
                    if key_sets is None:
                        saved = engine.disk.stats
                        engine.disk.stats = stats
                        try:
                            key_sets = adapter.key_sets(query, session,
                                                        dim_cache)
                        finally:
                            engine.disk.stats = saved
                    self.cache.admit_positions(
                        scope, normalize_query(query), payload, key_sets,
                        run.seconds, payload.nbytes)
        request.run = self._finish(request, run.result, "engine", shared)
        return True

    def _serve_degraded(self, adapter, request: _Request, shared: bool,
                        breaker_scope: Tuple) -> bool:
        """Answer from the cache while ``breaker_scope`` is open.

        Honesty rules: an exact result hit always serves; a position
        entry serves only when subsumption is *symbolically proven*
        (``keyset_fn=None`` — no key-set probes, which would touch the
        fenced-off engine's dimension columns and could themselves
        fault).  Results are stamped ``degraded=True``; anything else
        raises :class:`BreakerOpenError`.  The cache entry is never
        discarded on a degraded re-filter fault — the engine is fenced
        off, not the entry, and it may still serve other variants.

        Returns True when served; False means "no cache answer" and the
        caller raises."""
        query, session = request.query, request.session
        stats, tracer = request.stats, request.tracer
        engine = adapter.engine
        scope = adapter.scope(session)
        entry = None
        with tracer.span("cache-lookup"):
            stats.cache_lookups += 1
            result = self.cache.lookup_result(scope, query)
            if result is not None:
                stats.cache_exact_hits += 1
            else:
                entry = self.cache.find_subsuming(
                    scope, normalize_query(query), None,
                    dimensions=frozenset(query.joins.values()))
                if entry is None:
                    stats.cache_misses += 1
        if result is not None:
            tracer.leaf("degraded-hit", QueryStats())
            request.run = self._finish(request, result, "cache-exact",
                                       shared, degraded=True)
            return True
        if entry is None:
            return False
        saved = engine.disk.stats
        engine.disk.stats = stats
        try:
            with tracer.span("cache-refilter"):
                result = adapter.refilter(query, session, entry, {})
        except ReproError as error:
            raise BreakerOpenError(
                breaker_scope,
                detail=f"degraded re-filter failed: {error}") from error
        finally:
            engine.disk.stats = saved
        stats.cache_subsumption_hits += 1
        tracer.leaf("degraded-hit", QueryStats())
        request.run = self._finish(request, result, "cache-refilter",
                                   shared, degraded=True)
        return True

    def _finish(self, request: _Request, result: ResultSet, source: str,
                shared: bool, degraded: bool = False) -> ServiceRun:
        trace = request.tracer.finish(request.stats)
        return ServiceRun(
            query_name=request.query.name,
            session_name=request.session.name,
            engine=request.session.engine,
            source=source,
            result=result,
            stats=request.stats,
            cost=self.cost_model.cost(request.stats),
            trace=trace,
            wall_seconds=time.perf_counter() - request.started,
            shared=shared,
            degraded=degraded,
        )


def _tables_of(query: StarQuery) -> frozenset:
    return frozenset({query.fact_table} | set(query.joins.values()))


__all__ = ["QueryService", "ServiceConfig", "ServiceRun", "ServiceStats",
           "AdmissionController", "BREAKER_FAULTS"]
