"""The query service: admission control, dispatch, semantic caching.

:class:`QueryService` fronts one :class:`~repro.colstore.engine.CStore`
and/or one :class:`~repro.rowstore.engine.SystemX`.  Clients hold
:class:`~repro.serve.session.Session` handles and submit
:class:`~repro.plan.logical.StarQuery` objects; the service

1. **admits** — a bounded number of queries run at once; the rest wait
   in a FIFO queue with an optional queue timeout and per-query
   deadline, failing fast with typed
   :class:`~repro.errors.AdmissionError` / ``DeadlineError``;
2. **looks up** — the semantic cache first (exact result hits, then
   subsumed position entries re-filtered into fresh results);
3. **executes** — on a miss, under the target engine's lock, optionally
   batching same-projection queries into one shared-scan wave;
4. **accounts** — every step runs under the requesting query's own
   :class:`~repro.simio.stats.QueryStats` ledger and span tracer
   (``admission-wait``, ``cache-lookup``, ``cache-refilter``,
   ``cache-admit``, ``shared-scan``), and the finished trace is verified
   to sum exactly to the flat ledger.  With the cache disabled, a
   service run's ledger is byte-identical to a direct engine call.

``drain()`` stops admitting and waits for in-flight queries to finish;
the service is also a context manager.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import AdmissionError, DeadlineError, PlanError, ReproError
from ..obs import Trace, Tracer
from ..plan.logical import StarQuery
from ..result import ResultSet
from ..simio.stats import CostBreakdown, CostModel, PAPER_2008, QueryStats
from .adapters import ColumnStoreAdapter, RowStoreAdapter
from .semcache import SemanticCache, normalize_query
from .session import Session
from .sharing import ScanSharing


@dataclass
class ServiceConfig:
    """Knobs of one :class:`QueryService`."""

    max_in_flight: int = 4          #: queries allowed past admission at once
    queue_limit: int = 64           #: waiters beyond which admission refuses
    queue_timeout: Optional[float] = 30.0  #: default max queue wait (wall s)
    cache: bool = True              #: semantic cache on/off
    cache_budget_bytes: int = 64 << 20
    cache_admit_seconds: float = 1e-3  #: cost-aware admission threshold
    shared_scans: bool = False      #: batch same-projection queries per wave
    wave_limit: int = 8             #: max queries served per shared wave


@dataclass
class ServiceRun:
    """Outcome of one query served by the service.

    ``stats``/``cost``/``trace`` cover everything done on the query's
    behalf — admission bookkeeping, cache probes, re-filtering, and (on
    a miss) the engine execution itself."""

    query_name: str
    session_name: str
    engine: str
    source: str                     #: "engine" | "cache-exact" | "cache-refilter"
    result: ResultSet
    stats: QueryStats
    cost: CostBreakdown
    trace: Trace
    wall_seconds: float
    shared: bool = False            #: served as part of a shared-scan wave

    @property
    def seconds(self) -> float:
        """Priced simulated seconds."""
        return self.cost.total_seconds


class AdmissionController:
    """Bounded FIFO admission with queue timeout and deadlines."""

    def __init__(self, max_in_flight: int, queue_limit: int,
                 queue_timeout: Optional[float]) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.max_in_flight = max_in_flight
        self.queue_limit = queue_limit
        self.queue_timeout = queue_timeout
        self._cond = threading.Condition()
        self._waiters: List[object] = []
        self._in_flight = 0
        self._draining = False

    @property
    def in_flight(self) -> int:
        with self._cond:
            return self._in_flight

    @property
    def queued(self) -> int:
        with self._cond:
            return len(self._waiters)

    def acquire(self, timeout: Optional[float] = None,
                deadline_at: Optional[float] = None) -> None:
        """Block until admitted (FIFO).  Raises :class:`AdmissionError`
        when the queue is full, the wait exceeds ``timeout``, or the
        service is draining; :class:`DeadlineError` when ``deadline_at``
        (a ``time.monotonic`` instant) passes first."""
        if timeout is None:
            timeout = self.queue_timeout
        token = object()
        with self._cond:
            if self._draining:
                raise AdmissionError(
                    "service is draining; not accepting new queries")
            # the limit bounds *waiting* requests; one that can start
            # immediately only passes through the list, it never queues
            would_wait = bool(self._waiters) \
                or self._in_flight >= self.max_in_flight
            if would_wait and len(self._waiters) >= self.queue_limit:
                raise AdmissionError(
                    f"admission queue is full "
                    f"({self.queue_limit} queries already waiting)")
            self._waiters.append(token)
            started = time.monotonic()
            try:
                while True:
                    if self._draining:
                        raise AdmissionError(
                            "service is draining; not accepting new queries")
                    now = time.monotonic()
                    if deadline_at is not None and now >= deadline_at:
                        raise DeadlineError(
                            f"deadline expired after {now - started:.3f}s "
                            f"in the admission queue")
                    if self._waiters[0] is token \
                            and self._in_flight < self.max_in_flight:
                        self._in_flight += 1
                        return
                    waits = []
                    if timeout is not None:
                        remaining = started + timeout - now
                        if remaining <= 0:
                            raise AdmissionError(
                                f"queue timeout: not admitted within "
                                f"{timeout:g}s "
                                f"({len(self._waiters)} waiting, "
                                f"{self._in_flight} in flight)")
                        waits.append(remaining)
                    if deadline_at is not None:
                        waits.append(deadline_at - now)
                    self._cond.wait(min(waits) if waits else None)
            finally:
                self._waiters.remove(token)
                self._cond.notify_all()

    def release(self) -> None:
        with self._cond:
            self._in_flight -= 1
            self._cond.notify_all()

    def drain(self) -> None:
        """Refuse new queries and wait for in-flight ones to finish."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()
            while self._in_flight > 0 or self._waiters:
                self._cond.wait()

    def resume(self) -> None:
        with self._cond:
            self._draining = False
            self._cond.notify_all()


@dataclass
class ServiceStats:
    """Service-wide tallies (thread-safe via :meth:`note`)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    deadline_misses: int = 0
    engine_runs: int = 0
    exact_hits: int = 0
    subsumption_hits: int = 0
    shared_waves: int = 0
    shared_followers: int = 0
    simulated_seconds: float = 0.0
    wall_seconds: float = 0.0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def note(self, **deltas) -> None:
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "deadline_misses": self.deadline_misses,
                "engine_runs": self.engine_runs,
                "exact_hits": self.exact_hits,
                "subsumption_hits": self.subsumption_hits,
                "shared_waves": self.shared_waves,
                "shared_followers": self.shared_followers,
                "simulated_seconds": self.simulated_seconds,
                "wall_seconds": self.wall_seconds,
            }


class _Request:
    """One in-flight submission's mutable state."""

    def __init__(self, query: StarQuery, session: Session, use_cache: bool,
                 stats: QueryStats, tracer: Tracer,
                 deadline_at: Optional[float]) -> None:
        self.query = query
        self.session = session
        self.use_cache = use_cache
        self.stats = stats
        self.tracer = tracer
        self.deadline_at = deadline_at
        self.done = False
        self.run: Optional[ServiceRun] = None
        self.error: Optional[BaseException] = None
        self.shared = False
        self.started = time.perf_counter()


class QueryService:
    """A concurrent query service over one or both engines."""

    def __init__(
        self,
        cstore=None,
        system_x=None,
        config: Optional[ServiceConfig] = None,
        cost_model: CostModel = PAPER_2008,
    ) -> None:
        if cstore is None and system_x is None:
            raise ValueError("QueryService needs at least one engine")
        self.config = config if config is not None else ServiceConfig()
        self.cost_model = cost_model
        self._adapters: Dict[str, object] = {}
        self._engine_locks: Dict[str, threading.Lock] = {}
        if cstore is not None:
            self._adapters["cs"] = ColumnStoreAdapter(cstore)
            self._engine_locks["cs"] = threading.Lock()
        if system_x is not None:
            self._adapters["rs"] = RowStoreAdapter(system_x)
            self._engine_locks["rs"] = threading.Lock()
        self.cache = SemanticCache(
            budget_bytes=self.config.cache_budget_bytes,
            admit_seconds=self.config.cache_admit_seconds)
        self.admission = AdmissionController(
            self.config.max_in_flight, self.config.queue_limit,
            self.config.queue_timeout)
        self.sharing = ScanSharing()
        self.stats = ServiceStats()
        self.sessions: Dict[str, Session] = {}
        self._session_seq = 0
        self._session_lock = threading.Lock()
        self._closed = False

    # -------------------------------------------------------------- #
    # sessions
    # -------------------------------------------------------------- #
    def session(self, name: Optional[str] = None, engine: Optional[str] = None,
                **kwargs) -> Session:
        """Open a logical client session (see :class:`Session`)."""
        if engine is None:
            engine = "cs" if "cs" in self._adapters else "rs"
        if engine not in self._adapters:
            raise PlanError(
                f"engine {engine!r} is not attached to this service")
        with self._session_lock:
            if name is None:
                self._session_seq += 1
                name = f"s{self._session_seq}"
            session = Session(self, name, engine=engine, **kwargs)
            self.sessions[name] = session
            return session

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #
    def drain(self) -> None:
        """Stop admitting and wait for in-flight queries to finish."""
        self.admission.drain()

    def close(self) -> None:
        self._closed = True
        self.drain()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def invalidate(self, table: Optional[str] = None) -> int:
        """Invalidate cached entries (all, or those touching ``table``)."""
        return self.cache.invalidate(table)

    def serve_stats(self) -> Dict:
        """One dict for dashboards: service, cache, admission, sessions."""
        return {
            "service": self.stats.snapshot(),
            "cache": self.cache.snapshot(),
            "admission": {
                "max_in_flight": self.admission.max_in_flight,
                "queue_limit": self.admission.queue_limit,
                "in_flight": self.admission.in_flight,
                "queued": self.admission.queued,
            },
            "sessions": {
                name: vars(s.stats).copy()
                for name, s in sorted(self.sessions.items())
            },
        }

    # -------------------------------------------------------------- #
    # submission
    # -------------------------------------------------------------- #
    def submit(self, query: StarQuery, session: Optional[Session] = None,
               cached: Optional[bool] = None,
               timeout: Optional[float] = None,
               deadline: Optional[float] = None) -> ServiceRun:
        """Serve one query for ``session`` (blocking).

        ``cached=False`` bypasses the cache for this call (the honest-
        accounting escape hatch); ``timeout`` caps the admission-queue
        wait; ``deadline`` caps total wall time before execution starts.
        """
        if self._closed:
            raise AdmissionError("service is closed")
        if session is None:
            session = self.session()
        adapter = self._adapters.get(session.engine)
        if adapter is None:
            raise PlanError(
                f"engine {session.engine!r} is not attached to this service")
        use_cache = self.config.cache and session.cached \
            if cached is None else bool(cached) and self.config.cache
        session.note_submitted()
        self.stats.note(submitted=1)

        stats = QueryStats()
        tracer = Tracer(stats, self.cost_model, root_name="service")
        deadline_at = None if deadline is None \
            else time.monotonic() + deadline
        request = _Request(query, session, use_cache, stats, tracer,
                           deadline_at)
        try:
            with tracer.span("admission-wait"):
                self.admission.acquire(timeout=timeout,
                                       deadline_at=deadline_at)
        except DeadlineError:
            self.stats.note(rejected=1, deadline_misses=1)
            session.note_error()
            raise
        except AdmissionError:
            self.stats.note(rejected=1)
            session.note_error()
            raise

        share_key = None
        try:
            if self.config.shared_scans:
                share_key = adapter.share_key(query, session)
                self.sharing.enqueue(share_key, request)
            with self._engine_locks[session.engine]:
                if not request.done:
                    if share_key is not None:
                        wave = self.sharing.take(share_key, request,
                                                 self.config.wave_limit)
                    else:
                        wave = [request]
                    self._serve_wave(adapter, wave)
        finally:
            if share_key is not None:
                self.sharing.discard(request)
            self.admission.release()

        if request.error is not None:
            self.stats.note(failed=1, deadline_misses=int(
                isinstance(request.error, DeadlineError)))
            session.note_error()
            raise request.error
        run = request.run
        self.stats.note(completed=1, simulated_seconds=run.seconds,
                        wall_seconds=run.wall_seconds,
                        **{{"engine": "engine_runs",
                            "cache-exact": "exact_hits",
                            "cache-refilter": "subsumption_hits",
                            }[run.source]: 1})
        session.note_result(run.source, run.seconds, run.wall_seconds)
        return run

    # -------------------------------------------------------------- #
    # the serving path (engine lock held)
    # -------------------------------------------------------------- #
    def _serve_wave(self, adapter, wave: List[_Request]) -> None:
        shared = len(wave) > 1
        if shared:
            self.stats.note(shared_waves=1, shared_followers=len(wave) - 1)
        for i, request in enumerate(wave):
            try:
                now = time.monotonic()
                if request.deadline_at is not None \
                        and now >= request.deadline_at:
                    raise DeadlineError(
                        "deadline expired before execution started")
                self._serve_one(adapter, request, shared=shared,
                                warm=shared and i > 0)
            except BaseException as error:  # noqa: BLE001 — relayed to waiter
                request.error = error
            finally:
                request.done = True

    def _serve_one(self, adapter, request: _Request, shared: bool,
                   warm: bool) -> None:
        query, session = request.query, request.session
        stats, tracer = request.stats, request.tracer
        engine = adapter.engine
        dim_cache: Dict = {}
        entry = None
        scope = None
        if request.use_cache:
            scope = adapter.scope(session)
            with tracer.span("cache-lookup"):
                stats.cache_lookups += 1
                result = self.cache.lookup_result(scope, query)
                if result is not None:
                    stats.cache_exact_hits += 1
                else:
                    # key-set probes read dimension columns: charge them
                    # to this query's ledger
                    saved = engine.disk.stats
                    engine.disk.stats = stats
                    try:
                        entry = self.cache.find_subsuming(
                            scope, normalize_query(query),
                            lambda dim: adapter.dim_key_set(
                                query, session, dim, dim_cache),
                            dimensions=frozenset(query.joins.values()))
                    finally:
                        engine.disk.stats = saved
                    if entry is None:
                        stats.cache_misses += 1
            if result is not None:
                request.run = self._finish(request, result, "cache-exact",
                                           shared)
                return
            if entry is not None:
                saved = engine.disk.stats
                engine.disk.stats = stats
                try:
                    with tracer.span("cache-refilter"):
                        result = adapter.refilter(query, session, entry,
                                                  dim_cache)
                    stats.cache_subsumption_hits += 1
                    request.run = self._finish(request, result,
                                               "cache-refilter", shared)
                    return
                except ReproError:
                    # a re-filter that cannot complete (e.g. the cached
                    # projection went bad) falls back to a full run
                    self.cache.discard(entry.key)
                    stats.cache_misses += 1
                finally:
                    engine.disk.stats = saved

        # miss (or cache off): run the engine, under a shared-scan span
        # when this execution is part of a wave
        span = tracer.span("shared-scan") if shared else nullcontext()
        with span:
            if request.use_cache and adapter.recordable(session):
                run, payload, key_sets = adapter.execute_recording(
                    query, session, warm=warm)
            else:
                run, payload, key_sets = \
                    adapter.execute(query, session, warm=warm), None, None
            stats.merge(run.stats)
            tracer.attach_span(run.trace.root)

        if request.use_cache and self.cache.worth_admitting(run.seconds):
            with tracer.span("cache-admit"):
                self.cache.admit_result(scope, query, run.result,
                                        run.seconds, _tables_of(query))
                if payload is not None:
                    if key_sets is None:
                        saved = engine.disk.stats
                        engine.disk.stats = stats
                        try:
                            key_sets = adapter.key_sets(query, session,
                                                        dim_cache)
                        finally:
                            engine.disk.stats = saved
                    self.cache.admit_positions(
                        scope, normalize_query(query), payload, key_sets,
                        run.seconds, payload.nbytes)
        request.run = self._finish(request, run.result, "engine", shared)

    def _finish(self, request: _Request, result: ResultSet, source: str,
                shared: bool) -> ServiceRun:
        trace = request.tracer.finish(request.stats)
        return ServiceRun(
            query_name=request.query.name,
            session_name=request.session.name,
            engine=request.session.engine,
            source=source,
            result=result,
            stats=request.stats,
            cost=self.cost_model.cost(request.stats),
            trace=trace,
            wall_seconds=time.perf_counter() - request.started,
            shared=shared,
        )


def _tables_of(query: StarQuery) -> frozenset:
    return frozenset({query.fact_table} | set(query.joins.values()))


__all__ = ["QueryService", "ServiceConfig", "ServiceRun", "ServiceStats",
           "AdmissionController"]
