"""Predicate normalization, subsumption, and the semantic cache.

The cache stores two kinds of entries, both keyed on *normalized*
predicates rather than query text:

* **result entries** — the final :class:`~repro.result.ResultSet` of a
  query, keyed on the query's full structural identity (predicates,
  group-by, aggregates, ordering).  Served verbatim on an exact repeat.
* **position entries** — the surviving fact-table positions of a query,
  keyed on its :class:`PredicateSignature` within one engine scope.  A
  later query whose predicates are *implied* by a cached entry's
  (``d.year BETWEEN 1992 AND 1997`` covers ``d.year = 1993``) is served
  by re-filtering the cached positions instead of rescanning the fact
  table — the paper's Section 5.4 between-predicate rewriting lifted
  from one query to a whole workload.

Normalization folds each table's conjunctive predicates into one
constraint per column: an :class:`Interval` (possibly half-bounded) or a
:class:`ValueSet`.  Implication between two constraints on the same
column is decided symbolically; when a cached dimension constraint names
a *different column* than the requested one (``s.nation = 'UNITED
STATES'`` under a cached ``s.region = 'AMERICA'``), symbolic reasoning
cannot decide, and the service falls back to comparing the dimensions'
surviving *key sets* — cached entries carry them — which is exact.

Admission is cost-aware (only queries whose priced simulated-seconds
exceed a threshold are worth remembering) and eviction is byte-budget
LRU.  The cache itself never touches the simulated disk; all lookup-time
I/O (key-set probes, re-filters) is charged by the service to the
requesting query's ledger.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple, Union

import numpy as np

from ..plan.logical import (
    BinOp,
    ColumnRef,
    CompareOp,
    Comparison,
    Expr,
    InSet,
    Literal,
    Predicate,
    RangePredicate,
    StarQuery,
)
from ..result import ResultSet


# ---------------------------------------------------------------------- #
# constraints
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Interval:
    """A contiguous constraint ``low .. high`` on one column.

    ``None`` bounds are unbounded; ``*_open`` excludes the endpoint.
    """

    low: Optional[object] = None
    high: Optional[object] = None
    low_open: bool = False
    high_open: bool = False

    def contains(self, value: object) -> bool:
        if self.low is not None:
            if value < self.low or (value == self.low and self.low_open):
                return False
        if self.high is not None:
            if value > self.high or (value == self.high and self.high_open):
                return False
        return True

    def is_empty(self) -> bool:
        if self.low is None or self.high is None:
            return False
        if self.low > self.high:
            return True
        return self.low == self.high and (self.low_open or self.high_open)


@dataclass(frozen=True)
class ValueSet:
    """An explicit, sorted set of admissible values for one column."""

    values: Tuple[object, ...]

    def is_empty(self) -> bool:
        return not self.values


Constraint = Union[Interval, ValueSet]

#: matches every value; folding a column's predicates starts from here
TOP = Interval()


def constraint_of(pred: Predicate) -> Constraint:
    """The single-column constraint a predicate expresses."""
    if isinstance(pred, Comparison):
        if pred.op is CompareOp.EQ:
            return ValueSet((pred.value,))
        if pred.op is CompareOp.LT:
            return Interval(high=pred.value, high_open=True)
        if pred.op is CompareOp.LE:
            return Interval(high=pred.value)
        if pred.op is CompareOp.GT:
            return Interval(low=pred.value, low_open=True)
        return Interval(low=pred.value)  # GE
    if isinstance(pred, RangePredicate):
        return Interval(low=pred.low, high=pred.high)
    if isinstance(pred, InSet):
        return ValueSet(tuple(sorted(set(pred.values))))
    raise TypeError(f"unknown predicate type {type(pred).__name__}")


def intersect(a: Constraint, b: Constraint) -> Constraint:
    """The conjunction of two constraints on the same column."""
    if isinstance(a, ValueSet) and isinstance(b, ValueSet):
        return ValueSet(tuple(sorted(set(a.values) & set(b.values))))
    if isinstance(a, ValueSet):
        return ValueSet(tuple(v for v in a.values if b.contains(v)))
    if isinstance(b, ValueSet):
        return ValueSet(tuple(v for v in b.values if a.contains(v)))
    low, low_open = a.low, a.low_open
    if b.low is not None and (low is None or b.low > low or
                              (b.low == low and b.low_open)):
        low, low_open = b.low, b.low_open
    high, high_open = a.high, a.high_open
    if b.high is not None and (high is None or b.high < high or
                               (b.high == high and b.high_open)):
        high, high_open = b.high, b.high_open
    merged = Interval(low, high, low_open, high_open)
    if merged.is_empty():
        return ValueSet(())
    return merged


def implies(a: Constraint, b: Constraint) -> bool:
    """True when every value satisfying ``a`` also satisfies ``b``
    (both constraints are on the same column).  Conservative: value
    types that do not compare cleanly yield ``False``, never a wrong
    ``True``."""
    try:
        return _implies(a, b)
    except TypeError:
        return False


def _implies(a: Constraint, b: Constraint) -> bool:
    if isinstance(a, ValueSet):
        if a.is_empty():
            return True
        if isinstance(b, ValueSet):
            return set(a.values) <= set(b.values)
        return all(b.contains(v) for v in a.values)
    if a.is_empty():
        return True
    if isinstance(b, ValueSet):
        # an interval only fits inside an explicit set when it is a
        # single closed point (wider membership cannot be proven
        # without knowing the column's value domain)
        return (a.low is not None and a.low == a.high
                and not a.low_open and not a.high_open
                and a.low in set(b.values))
    if b.low is not None:
        if a.low is None:
            return False
        if a.low < b.low:
            return False
        if a.low == b.low and b.low_open and not a.low_open:
            return False
    if b.high is not None:
        if a.high is None:
            return False
        if a.high > b.high:
            return False
        if a.high == b.high and b.high_open and not a.high_open:
            return False
    return True


# ---------------------------------------------------------------------- #
# query signatures
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class PredicateSignature:
    """A query's normalized predicates: one constraint per (table,
    column), sorted — the canonical key the position cache matches on."""

    fact_table: str
    constraints: Tuple[Tuple[str, str, Constraint], ...]

    def by_column(self) -> Dict[Tuple[str, str], Constraint]:
        return {(t, c): k for t, c, k in self.constraints}

    def tables(self) -> FrozenSet[str]:
        return frozenset({self.fact_table}
                         | {t for t, _c, _k in self.constraints})


def normalize_query(query: StarQuery) -> PredicateSignature:
    """Fold the query's conjunctive predicates into one constraint per
    (table, column)."""
    folded: Dict[Tuple[str, str], Constraint] = {}
    for pred in query.predicates:
        key = (pred.table, pred.column)
        constraint = constraint_of(pred)
        if key in folded:
            constraint = intersect(folded[key], constraint)
        folded[key] = constraint
    return PredicateSignature(
        fact_table=query.fact_table,
        constraints=tuple((t, c, folded[(t, c)])
                          for t, c in sorted(folded)),
    )


def _expr_key(expr: Expr) -> Tuple:
    if isinstance(expr, ColumnRef):
        return ("col", expr.table, expr.column)
    if isinstance(expr, Literal):
        return ("lit", expr.value)
    if isinstance(expr, BinOp):
        return ("bin", expr.op, _expr_key(expr.left), _expr_key(expr.right))
    raise TypeError(f"unknown expression type {type(expr).__name__}")


def query_key(query: StarQuery) -> Tuple:
    """The query's full structural identity — predicates (normalized),
    grouping, aggregates, ordering, limit — independent of its name."""
    return (
        query.fact_table,
        tuple(sorted(query.joins.items())),
        tuple(sorted(query.dim_keys.items())),
        normalize_query(query).constraints,
        tuple((g.table, g.column) for g in query.group_by),
        tuple((a.func, _expr_key(a.expr), a.alias)
              for a in query.aggregates),
        tuple((o.key, o.ascending) for o in query.order_by),
        query.limit,
    )


def subsumption_gaps(requested: PredicateSignature,
                     cached: PredicateSignature) -> Optional[List[str]]:
    """Decide symbolically whether ``cached``'s positions can serve
    ``requested``.

    Returns ``None`` when they definitely cannot (a cached *fact*
    constraint is not implied, or the fact tables differ); otherwise the
    list of dimension tables whose cached constraints could not be
    proven symbolically and need the exact key-set containment check
    (empty list: fully proven, every requested row is among the cached
    positions)."""
    if requested.fact_table != cached.fact_table:
        return None
    req = requested.by_column()
    gaps: List[str] = []
    for table, column, cached_constraint in cached.constraints:
        mine = req.get((table, column))
        if mine is not None and implies(mine, cached_constraint):
            continue
        if table == cached.fact_table:
            return None
        if table not in gaps:
            gaps.append(table)
    return gaps


# ---------------------------------------------------------------------- #
# entries
# ---------------------------------------------------------------------- #
@dataclass
class ResultEntry:
    """A cached final result table."""

    key: Tuple
    result: ResultSet
    seconds: float
    tables: FrozenSet[str]
    nbytes: int


@dataclass
class PositionEntry:
    """A cached set of surviving fact positions within one engine scope.

    ``payload`` is engine-specific (column-store position lists naming
    their projection, row-store rid arrays); ``key_sets`` holds each
    predicated dimension's surviving keys, sorted, for the exact
    containment fallback."""

    key: Tuple
    scope: Tuple
    signature: PredicateSignature
    payload: object
    key_sets: Dict[str, np.ndarray]
    seconds: float
    tables: FrozenSet[str]
    nbytes: int


@dataclass
class CacheCounters:
    """Storage-side tallies (hit/miss counters live on each query's
    :class:`~repro.simio.stats.QueryStats` and in the service stats)."""

    admitted: int = 0
    rejected_cheap: int = 0
    evictions: int = 0
    invalidations: int = 0


class SemanticCache:
    """Thread-safe byte-budget LRU over result and position entries."""

    def __init__(self, budget_bytes: int = 64 << 20,
                 admit_seconds: float = 1e-3) -> None:
        self.budget_bytes = budget_bytes
        self.admit_seconds = admit_seconds
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self._bytes = 0
        self.counters = CacheCounters()

    # -------------------------------------------------------------- #
    # lookup
    # -------------------------------------------------------------- #
    def lookup_result(self, scope: Tuple, query: StarQuery
                      ) -> Optional[ResultSet]:
        """The cached result for an exact structural repeat, if any."""
        key = ("result", scope, query_key(query))
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            return ResultSet(list(entry.result.columns),
                             list(entry.result.rows))

    def find_subsuming(
        self,
        scope: Tuple,
        requested: PredicateSignature,
        keyset_fn: Optional[Callable[[str], np.ndarray]],
        dimensions: Optional[FrozenSet[str]] = None,
    ) -> Optional[PositionEntry]:
        """The first position entry in ``scope`` whose predicates imply
        ``requested``'s.

        ``keyset_fn(dim)`` must return the *requested* query's surviving
        keys for dimension ``dim`` (sorted int64); it is only called for
        dimensions symbolic reasoning could not decide, and any I/O it
        performs is the caller's to charge.  ``keyset_fn=None`` forbids
        key-set probes entirely: only *symbolically proven* entries (no
        gaps) match — degraded-mode serving uses this so a cache answer
        never depends on reading possibly-corrupt dimension columns.
        ``dimensions`` names the dimensions the requested query joins: a
        key-set check against a dimension outside it cannot be
        evaluated, so those candidates are skipped."""
        with self._lock:
            candidates = [e for e in self._entries.values()
                          if isinstance(e, PositionEntry)
                          and e.scope == scope]
        # prefer an exact signature match: its re-filter is a no-op scan
        candidates.sort(key=lambda e: e.signature != requested)
        for entry in candidates:
            gaps = subsumption_gaps(requested, entry.signature)
            if gaps is None:
                continue
            if keyset_fn is None and gaps:
                continue
            if dimensions is not None \
                    and not set(gaps) <= set(dimensions):
                continue
            if all(self._keyset_contained(entry, dim, keyset_fn)
                   for dim in gaps):
                with self._lock:
                    if entry.key in self._entries:
                        self._entries.move_to_end(entry.key)
                return entry
        return None

    @staticmethod
    def _keyset_contained(entry: PositionEntry, dim: str,
                          keyset_fn: Callable[[str], np.ndarray]) -> bool:
        cached_keys = entry.key_sets.get(dim)
        if cached_keys is None:
            return False
        requested_keys = keyset_fn(dim)
        if requested_keys.size == 0:
            return True
        if cached_keys.size == 0:
            return False
        return bool(np.isin(requested_keys, cached_keys).all())

    # -------------------------------------------------------------- #
    # admission / eviction
    # -------------------------------------------------------------- #
    def worth_admitting(self, seconds: float) -> bool:
        """The cost-aware admission policy: cheap queries are not worth
        the bytes (re-running them costs less than a cache slot)."""
        return seconds >= self.admit_seconds

    def admit_result(self, scope: Tuple, query: StarQuery,
                     result: ResultSet, seconds: float,
                     tables: FrozenSet[str]) -> bool:
        if not self.worth_admitting(seconds):
            with self._lock:
                self.counters.rejected_cheap += 1
            return False
        key = ("result", scope, query_key(query))
        entry = ResultEntry(
            key=key,
            result=ResultSet(list(result.columns), list(result.rows)),
            seconds=seconds,
            tables=tables,
            nbytes=_result_nbytes(result),
        )
        self._insert(entry)
        return True

    def admit_positions(self, scope: Tuple, signature: PredicateSignature,
                        payload: object, key_sets: Dict[str, np.ndarray],
                        seconds: float, nbytes: int) -> bool:
        if not self.worth_admitting(seconds):
            with self._lock:
                self.counters.rejected_cheap += 1
            return False
        entry = PositionEntry(
            key=("positions", scope, signature),
            scope=scope,
            signature=signature,
            payload=payload,
            key_sets=key_sets,
            seconds=seconds,
            tables=signature.tables(),
            nbytes=nbytes + sum(int(a.nbytes) for a in key_sets.values()),
        )
        self._insert(entry)
        return True

    def _insert(self, entry) -> None:
        with self._lock:
            old = self._entries.pop(entry.key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[entry.key] = entry
            self._bytes += entry.nbytes
            self.counters.admitted += 1
            while self._bytes > self.budget_bytes and len(self._entries) > 1:
                _key, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.counters.evictions += 1
            self._check_bytes()

    def _check_bytes(self) -> None:
        """Assert the byte gauge against ground truth (caller holds the
        lock).  Runs after every mutation: the gauge drives eviction and
        the ``snapshot()`` numbers, so silent drift would corrupt both
        long before anything visibly failed."""
        actual = sum(e.nbytes for e in self._entries.values())
        if self._bytes != actual or self._bytes < 0:
            raise AssertionError(
                f"semantic-cache byte accounting drifted: gauge "
                f"{self._bytes}, entries sum to {actual}")

    # -------------------------------------------------------------- #
    # invalidation
    # -------------------------------------------------------------- #
    def discard(self, key: Tuple) -> None:
        """Drop one entry (e.g. after its projection went bad)."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._bytes -= entry.nbytes
            self._check_bytes()

    def invalidate(self, table: Optional[str] = None) -> int:
        """Drop every entry touching ``table`` (all entries when
        ``None``) — the hook a data mutation would call.  Returns the
        number of entries dropped.  Victims are collected *before* any
        pop so the gauge is decremented against a stable view of
        ``_entries``."""
        with self._lock:
            if table is None:
                dropped = len(self._entries)
                self._entries.clear()
                self._bytes = 0
            else:
                victims = [k for k, e in self._entries.items()
                           if table in e.tables]
                for key in victims:
                    self._bytes -= self._entries.pop(key).nbytes
                dropped = len(victims)
            self.counters.invalidations += dropped
            self._check_bytes()
            return dropped

    def clear(self) -> int:
        return self.invalidate(None)

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #
    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            results = sum(isinstance(e, ResultEntry)
                          for e in self._entries.values())
            return {
                "entries": len(self._entries),
                "result_entries": results,
                "position_entries": len(self._entries) - results,
                "bytes": self._bytes,
                "budget_bytes": self.budget_bytes,
                "admitted": self.counters.admitted,
                "rejected_cheap": self.counters.rejected_cheap,
                "evictions": self.counters.evictions,
                "invalidations": self.counters.invalidations,
            }


def _result_nbytes(result: ResultSet) -> int:
    """A small, honest estimate of a result table's memory footprint."""
    total = 64 + 16 * len(result.columns)
    for row in result.rows:
        total += 48
        for cell in row:
            total += 8 + (len(cell) if isinstance(cell, str) else 8)
    return total


__all__ = [
    "Interval",
    "ValueSet",
    "Constraint",
    "constraint_of",
    "intersect",
    "implies",
    "PredicateSignature",
    "normalize_query",
    "query_key",
    "subsumption_gaps",
    "ResultEntry",
    "PositionEntry",
    "SemanticCache",
]
