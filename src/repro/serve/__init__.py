"""Concurrent query serving: sessions, admission control, semantic cache.

The ROADMAP's target workload is many clients replaying overlapping SSBM
flights.  This package puts a service in front of both engines:

* :class:`~repro.serve.service.QueryService` — owns the engines, admits a
  bounded number of in-flight queries (FIFO queue, per-query deadlines),
  and drains gracefully;
* :class:`~repro.serve.session.Session` — one logical client's engine
  choice, execution config, and running tallies;
* :class:`~repro.serve.semcache.SemanticCache` — normalizes each query's
  predicates and caches result tables plus surviving fact-position sets,
  serving exact hits verbatim and *subsumed* hits (a cached predicate
  implies the requested one) by re-filtering cached positions instead of
  rescanning;
* :class:`~repro.serve.sharing.ScanSharing` — batches queries aimed at
  the same projection into one scan per admission wave;
* :mod:`~repro.serve.resilience` — per-scope circuit breakers on a
  deterministic simulated clock, cooperative cancellation tokens for
  deadline propagation, and the primitives behind priority-aware load
  shedding and degraded (cache-only) serving.

See ``docs/serving.md`` for the admission, keying, and subsumption
rules, and ``docs/robustness.md`` ("service resilience") for breakers,
shedding, and degraded-mode honesty.
"""

from ..errors import (
    AdmissionError,
    BreakerOpenError,
    DeadlineError,
    QueryCancelledError,
    ServeError,
    ServiceError,
    ShedError,
)
from .resilience import BreakerBoard, CancellationToken, ServiceClock
from .semcache import SemanticCache
from .service import QueryService, ServiceConfig, ServiceRun
from .session import Session

__all__ = [
    "QueryService",
    "ServiceConfig",
    "ServiceRun",
    "Session",
    "SemanticCache",
    "ServiceClock",
    "CancellationToken",
    "BreakerBoard",
    "ServeError",
    "ServiceError",
    "AdmissionError",
    "DeadlineError",
    "ShedError",
    "QueryCancelledError",
    "BreakerOpenError",
]
