"""Concurrent query serving: sessions, admission control, semantic cache.

The ROADMAP's target workload is many clients replaying overlapping SSBM
flights.  This package puts a service in front of both engines:

* :class:`~repro.serve.service.QueryService` — owns the engines, admits a
  bounded number of in-flight queries (FIFO queue, per-query deadlines),
  and drains gracefully;
* :class:`~repro.serve.session.Session` — one logical client's engine
  choice, execution config, and running tallies;
* :class:`~repro.serve.semcache.SemanticCache` — normalizes each query's
  predicates and caches result tables plus surviving fact-position sets,
  serving exact hits verbatim and *subsumed* hits (a cached predicate
  implies the requested one) by re-filtering cached positions instead of
  rescanning;
* :class:`~repro.serve.sharing.ScanSharing` — batches queries aimed at
  the same projection into one scan per admission wave.

See ``docs/serving.md`` for the admission, keying, and subsumption rules.
"""

from ..errors import AdmissionError, DeadlineError, ServiceError
from .semcache import SemanticCache
from .service import QueryService, ServiceConfig, ServiceRun
from .session import Session

__all__ = [
    "QueryService",
    "ServiceConfig",
    "ServiceRun",
    "Session",
    "SemanticCache",
    "ServiceError",
    "AdmissionError",
    "DeadlineError",
]
