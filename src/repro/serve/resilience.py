"""Service-level resilience primitives: clock, cancellation, breakers.

Everything here is deterministic under the *simulated* clock: the
:class:`ServiceClock` advances only by the priced simulated seconds of
finished queries, so breaker cooldowns and half-open transitions depend
on the submission order and the cost model — never on wall time, thread
scheduling, or host speed.

* :class:`ServiceClock` — a logical clock in simulated seconds.
* :class:`CancellationToken` — cooperative cancellation checked at page
  and morsel boundaries.  Carries an optional wall deadline and an
  optional simulated-seconds budget; either (or an explicit
  :meth:`~CancellationToken.cancel`) turns the next boundary check into
  a typed :class:`~repro.errors.QueryCancelledError`.
* :class:`BreakerBoard` — per-scope circuit breakers keyed on
  ``(engine, fact table)``.  A breaker opens after ``threshold``
  consecutive qualifying failures, rejects (or degrades) queries while
  open, half-opens after ``cooldown`` simulated seconds, and closes
  again on one successful trial.

See ``docs/robustness.md`` ("service resilience") for the state machine
and the honesty rules of degraded serving.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import QueryCancelledError


class ServiceClock:
    """A logical clock measured in accumulated simulated seconds.

    The service advances it once per finished submission (success or
    failure), so "time" passes exactly as fast as the workload burns
    simulated seconds — reproducible for a given submission order.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward (negative deltas are ignored)."""
        with self._lock:
            if seconds > 0:
                self._now += seconds
            return self._now


class CancellationToken:
    """Cooperative cancellation for one query execution.

    The service installs the token on the engine's simulated disk for
    the duration of the query (engine executions are serialized per
    engine, so the slot is single-writer); the disk and buffer pool call
    :meth:`check` before every page access, and the morsel engine calls
    it at every morsel barrier.  Checks never touch the ledger they are
    given — cancellation is observable only as the typed error.
    """

    def __init__(self, deadline_at: Optional[float] = None,
                 sim_budget: Optional[float] = None,
                 cost_model=None) -> None:
        if sim_budget is not None and cost_model is None:
            raise ValueError("a simulated-seconds budget needs a cost model")
        self.deadline_at = deadline_at          # time.monotonic() instant
        self.sim_budget = sim_budget            # simulated seconds
        self.cost_model = cost_model
        self._cancelled: Optional[str] = None

    def cancel(self, reason: str = "cancelled by the service") -> None:
        self._cancelled = reason

    @property
    def cancelled(self) -> bool:
        return self._cancelled is not None

    def check(self, stats=None) -> None:
        """Raise :class:`QueryCancelledError` if the query must stop.

        ``stats`` is the ledger priced against the simulated-seconds
        budget; ``None`` skips that check (wall deadline and explicit
        cancellation still apply).
        """
        if self._cancelled is not None:
            raise QueryCancelledError(self._cancelled)
        if self.deadline_at is not None \
                and time.monotonic() >= self.deadline_at:
            raise QueryCancelledError("wall deadline expired mid-execution")
        if self.sim_budget is not None and stats is not None:
            spent = self.cost_model.cost(stats).total_seconds
            if spent > self.sim_budget:
                raise QueryCancelledError(
                    f"simulated-seconds budget exhausted "
                    f"({spent:.6f}s > {self.sim_budget:.6f}s)")


#: breaker states (exposed in ``serve_stats()`` / ``\serve stats``)
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class _Breaker:
    """One scope's breaker state (mutated under the board's lock)."""

    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    trial_in_flight: bool = False


class BreakerBoard:
    """Per-scope circuit breakers on a deterministic clock.

    ``admit`` is called before an engine touch, ``record_failure`` /
    ``record_success`` after it; all transitions are counted through the
    ``counter`` callback (the service aims it at its
    :class:`~repro.serve.service.ServiceStats`).
    """

    def __init__(self, threshold: int, cooldown: float,
                 counter=None) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self._counter = counter or (lambda **kw: None)
        self._lock = threading.Lock()
        self._breakers: Dict[Tuple, _Breaker] = {}

    def _get(self, scope: Tuple) -> _Breaker:
        breaker = self._breakers.get(scope)
        if breaker is None:
            breaker = self._breakers[scope] = _Breaker()
        return breaker

    def admit(self, scope: Tuple, now: float) -> str:
        """Gate one engine touch for ``scope``.

        Returns the effective state: ``CLOSED`` (go ahead), ``HALF_OPEN``
        (go ahead — this call holds the single trial slot), or ``OPEN``
        (do not touch the engine; serve degraded or reject).
        """
        with self._lock:
            breaker = self._get(scope)
            if breaker.state == OPEN \
                    and now - breaker.opened_at >= self.cooldown:
                breaker.state = HALF_OPEN
                breaker.trial_in_flight = False
                self._counter(breaker_half_opens=1)
            if breaker.state == CLOSED:
                return CLOSED
            if breaker.state == HALF_OPEN and not breaker.trial_in_flight:
                breaker.trial_in_flight = True
                return HALF_OPEN
            return OPEN

    def abandon_trial(self, scope: Tuple) -> None:
        """Return a half-open trial slot that never touched the engine
        (e.g. the query was answered from the result cache)."""
        with self._lock:
            breaker = self._breakers.get(scope)
            if breaker is not None and breaker.state == HALF_OPEN:
                breaker.trial_in_flight = False

    def record_failure(self, scope: Tuple, now: float) -> None:
        """One qualifying engine failure for ``scope``."""
        with self._lock:
            breaker = self._get(scope)
            if breaker.state == HALF_OPEN:
                # the trial failed: straight back to open, cooldown anew
                breaker.state = OPEN
                breaker.opened_at = now
                breaker.trial_in_flight = False
                breaker.consecutive_failures = self.threshold
                self._counter(breaker_opens=1)
                return
            breaker.consecutive_failures += 1
            if breaker.state == CLOSED \
                    and breaker.consecutive_failures >= self.threshold:
                breaker.state = OPEN
                breaker.opened_at = now
                self._counter(breaker_opens=1)

    def record_success(self, scope: Tuple) -> None:
        """One successful engine touch for ``scope``."""
        with self._lock:
            breaker = self._breakers.get(scope)
            if breaker is None:
                return
            if breaker.state == HALF_OPEN:
                self._counter(breaker_closes=1)
            breaker.state = CLOSED
            breaker.consecutive_failures = 0
            breaker.trial_in_flight = False

    def state_of(self, scope: Tuple) -> str:
        with self._lock:
            breaker = self._breakers.get(scope)
            return breaker.state if breaker is not None else CLOSED

    def states(self) -> Dict[str, str]:
        """Every scope's state, keyed by a printable scope string."""
        with self._lock:
            return {"/".join(str(part) for part in scope): b.state
                    for scope, b in sorted(self._breakers.items())}

    def open_scopes(self) -> List[Tuple]:
        with self._lock:
            return sorted(scope for scope, b in self._breakers.items()
                          if b.state != CLOSED)


__all__ = ["ServiceClock", "CancellationToken", "BreakerBoard",
           "CLOSED", "OPEN", "HALF_OPEN"]
