"""Engine adapters: one uniform surface the service drives both engines
through.

Each adapter knows how to (a) execute a query for a session, (b) record
the surviving fact positions of a run so the cache can keep them, (c)
compute a dimension's surviving key set for the subsumption fallback,
and (d) *re-filter* a cached position set under a new (subsumed) query —
re-applying only the predicates that differ from the cached entry's and
re-running the cheap aggregation tail, instead of rescanning the fact
table.

All work these methods do is charged to whatever ledger the engine's
simulated disk currently points at; the service aims it at the
requesting query's ledger before calling in, so re-filters and key-set
probes are priced as honestly as full scans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..colstore.engine import ColumnStoreRun, CStore
from ..colstore.operators.aggregate import (
    eval_fact_expr,
    grouped_aggregate,
    scalar_aggregate,
)
from ..colstore.operators.fetch import fetch_values
from ..colstore.operators.scan import stored_bounds
from ..colstore.planner import ColumnPlanner
from ..colstore.positions import (
    ArrayPositions,
    BitmapPositions,
    RangePositions,
)
from ..errors import ChecksumError, CorruptPageError, PlanError
from ..obs import Tracer
from ..plan.aggregates import needs_expr_values
from ..plan.logical import StarQuery, expr_columns
from ..result import ResultSet
from ..rowstore.designs import DesignBuilder, DesignKind
from ..rowstore.engine import RowStoreRun, SystemX
from ..rowstore.operators import (
    SpillAccountant,
    hash_join,
    heap_fetch,
    qualified,
    seq_scan,
)
from ..rowstore.planner import RowPlanner
from ..simio.stats import QueryStats
from ..storage.colfile import CompressionLevel
from .semcache import PositionEntry, normalize_query
from .session import Session


# ---------------------------------------------------------------------- #
# cached payloads
# ---------------------------------------------------------------------- #
@dataclass
class CsPositions:
    """Column-store payload: surviving positions of one fact projection."""

    projection: str
    level: CompressionLevel
    positions: object  # RangePositions | BitmapPositions | ArrayPositions

    @property
    def nbytes(self) -> int:
        pos = self.positions
        if isinstance(pos, RangePositions):
            return 32
        if isinstance(pos, BitmapPositions):
            return 32 + int(pos.bits.nbytes)
        if isinstance(pos, ArrayPositions):
            return 32 + int(pos.positions.nbytes)
        return 32 + 8 * pos.count


@dataclass
class RsRids:
    """Row-store payload: surviving rids of the unpartitioned fact heap."""

    rids: np.ndarray

    @property
    def nbytes(self) -> int:
        return 32 + int(self.rids.nbytes)


def _domain_mask(values: np.ndarray, domain, stats: QueryStats
                 ) -> np.ndarray:
    """Apply one stored-domain predicate to a fetched value vector."""
    if isinstance(domain, list):
        stats.hash_probes += len(values)
        return np.isin(values, domain)
    low, high = domain
    stats.range_checks += len(values)
    return (values >= low) & (values <= high)


def _member_mask(keys: np.ndarray, sorted_keys: np.ndarray,
                 stats: QueryStats) -> np.ndarray:
    """Membership of ``keys`` in an ascending key array."""
    stats.hash_probes += len(keys)
    if sorted_keys.size == 0:
        return np.zeros(len(keys), dtype=bool)
    idx = np.searchsorted(sorted_keys, keys)
    idx = np.clip(idx, 0, sorted_keys.size - 1)
    return sorted_keys[idx] == keys


# ---------------------------------------------------------------------- #
# column store
# ---------------------------------------------------------------------- #
class ColumnStoreAdapter:
    """Drives a :class:`CStore` for the service."""

    kind = "cs"

    def __init__(self, engine: CStore) -> None:
        self.engine = engine

    def level(self, session: Session) -> CompressionLevel:
        if session.level is not None:
            return session.level
        return (CompressionLevel.MAX if session.config.compression
                else CompressionLevel.NONE)

    def scope(self, session: Session) -> Tuple:
        # zone maps and sharding never change results, but scoping on
        # them keeps cached ledgers/traces comparable within one
        # setting (and isolates each shard set's cache)
        return ("cs", session.config.label, self.level(session).value,
                "zm" if session.config.zone_maps else "",
                f"sh{session.config.shards}")

    def shard_count(self, session: Session) -> int:
        return session.config.shards

    def share_key(self, query: StarQuery, session: Session) -> Tuple:
        level = self.level(session)
        projection = self.engine._context().best_projection(
            query.fact_table, level, query)
        return ("cs", level.value, projection.name)

    def recordable(self, session: Session) -> bool:
        # early-materialization plans have no surviving-position set;
        # sharded runs have none either (positions would be shard-local
        # and the gather discards them) — both still get the result
        # cache
        return (session.config.late_materialization
                and session.config.shards == 1)

    def execute(self, query: StarQuery, session: Session,
                warm: bool = False, cancellation=None):
        return self.engine.execute(query, session.config, session.level,
                                   cold_pool=not warm,
                                   cancellation=cancellation)

    def execute_recording(self, query: StarQuery, session: Session,
                          warm: bool = False, cancellation=None):
        run = self.execute(query, session, warm=warm,
                           cancellation=cancellation)
        payload = None
        if run.survivors is not None and run.projection_name is not None:
            payload = CsPositions(run.projection_name, self.level(session),
                                  run.survivors)
        return run, payload, None  # key sets are computed on admission

    # -------------------------------------------------------------- #
    def _planner(self, session: Session) -> ColumnPlanner:
        return ColumnPlanner(self.engine._context(), session.config,
                             session.level)

    def _dim_rows(self, planner: ColumnPlanner, query: StarQuery,
                  dim: str, dim_cache: Dict):
        rows = dim_cache.get(dim)
        if rows is None:
            rows = planner._dimension_rows_early(query, dim)
            dim_cache[dim] = rows
        return rows

    def dim_key_set(self, query: StarQuery, session: Session, dim: str,
                    dim_cache: Dict) -> np.ndarray:
        """The requested query's surviving keys for ``dim``, sorted."""
        return self._dim_rows(self._planner(session), query, dim,
                              dim_cache).keys

    def key_sets(self, query: StarQuery, session: Session,
                 dim_cache: Dict) -> Dict[str, np.ndarray]:
        """Surviving key sets of every predicated dimension (recorded
        alongside a position entry for the subsumption fallback)."""
        return {
            dim: np.array(self.dim_key_set(query, session, dim, dim_cache))
            for dim in query.dimensions_used()
            if query.dimension_predicates(dim)
        }

    # -------------------------------------------------------------- #
    def refilter(self, query: StarQuery, session: Session,
                 entry: PositionEntry, dim_cache: Dict) -> ResultSet:
        """Answer ``query`` from a subsuming entry's cached positions.

        Only predicates that differ from the cached entry's are
        re-applied (columns fetched at the still-alive positions only);
        the aggregation tail then mirrors the planner's
        late-materialization path exactly, so rows come out identical to
        a cold run."""
        engine = self.engine
        payload: CsPositions = entry.payload
        level = self.level(session)
        ctx = engine._context()
        candidates = ctx.candidates(query.fact_table, level)
        proj = next((p for p in candidates if p.name == payload.projection),
                    None)
        if proj is None:
            raise PlanError(
                f"cached projection {payload.projection!r} is no longer "
                f"usable")
        planner = ColumnPlanner(ctx, session.config, session.level)
        stats = planner.stats
        config = session.config
        fact = query.fact_table

        pos_arr = payload.positions.to_array()
        stats.position_ops += len(pos_arr)
        stats.cache_refiltered_positions += len(pos_arr)
        mask = np.ones(len(pos_arr), dtype=bool)

        requested = normalize_query(query).by_column()
        cached = entry.signature.by_column()

        # fact predicates the cached entry does not already guarantee
        preds_by_column: Dict[str, List] = {}
        for pred in query.fact_predicates():
            preds_by_column.setdefault(pred.column, []).append(pred)
        for column, preds in preds_by_column.items():
            if requested[(fact, column)] == cached.get((fact, column)):
                continue
            alive = np.flatnonzero(mask)
            if alive.size == 0:
                break
            values = fetch_values(proj.column_file(column), engine.pool,
                                  ArrayPositions(pos_arr[alive]), config)
            keep = np.ones(len(values), dtype=bool)
            for pred in preds:
                domain = stored_bounds(
                    pred, ctx.catalog_column(fact, column), planner.level)
                keep &= _domain_mask(values, domain, stats)
            mask[alive[~keep]] = False

        # dimension memberships that differ from the cached entry's
        for dim in query.dimensions_used():
            dim_requested = {c: k for (t, c), k in requested.items()
                             if t == dim}
            dim_cached = {c: k for (t, c), k in cached.items() if t == dim}
            if dim_requested == dim_cached:
                continue
            rows = self._dim_rows(planner, query, dim, dim_cache)
            alive = np.flatnonzero(mask)
            if alive.size == 0:
                break
            fk = fetch_values(proj.column_file(query.fk_of(dim)),
                              engine.pool, ArrayPositions(pos_arr[alive]),
                              config).astype(np.int64)
            found = _member_mask(fk, rows.keys, stats)
            mask[alive[~found]] = False

        survivors = ArrayPositions(pos_arr[mask])

        # aggregation tail, mirroring ColumnPlanner._run_late
        agg_funcs = [a.func for a in query.aggregates]
        fact_arrays: Dict[str, np.ndarray] = {}
        for agg in query.aggregates:
            if not needs_expr_values(agg.func):
                continue
            for ref in expr_columns(agg.expr):
                if ref.table == fact and ref.column not in fact_arrays:
                    fact_arrays[ref.column] = fetch_values(
                        proj.column_file(ref.column), engine.pool,
                        survivors, config)
        agg_arrays = [
            eval_fact_expr(a.expr, fact_arrays, stats, config)
            if needs_expr_values(a.func)
            else np.zeros(survivors.count, dtype=np.int64)
            for a in query.aggregates
        ]
        if not query.group_by:
            cells = scalar_aggregate(agg_arrays, stats, config,
                                     funcs=agg_funcs)
            columns = [a.alias for a in query.aggregates]
            return ResultSet(columns, [tuple(cells)]).order_by(
                query.order_by).limited(query.limit)

        group_arrays: List[np.ndarray] = []
        planner._group_lookups = []
        fk_arrays: Dict[str, np.ndarray] = {}
        for g in query.group_by:
            if g.table == fact:
                raw = fetch_values(proj.column_file(g.column), engine.pool,
                                   survivors, config)
            else:
                rows = self._dim_rows(planner, query, g.table, dim_cache)
                fk = fk_arrays.get(g.table)
                if fk is None:
                    fk = fetch_values(
                        proj.column_file(query.fk_of(g.table)), engine.pool,
                        survivors, config).astype(np.int64)
                    fk_arrays[g.table] = fk
                # every surviving FK is in the dimension's key set by
                # construction, so the sorted-key gather is exact
                idx = np.searchsorted(rows.keys, fk)
                stats.values_scanned_vector += len(fk)
                raw = rows.attrs[g.column][idx]
            codes, lookup = planner._normalize_group_array(raw)
            group_arrays.append(codes)
            planner._group_lookups.append(lookup)
        reduction = grouped_aggregate(group_arrays, agg_arrays, stats,
                                      config, funcs=agg_funcs)
        result = planner._finalize(query, group_arrays, reduction)
        del planner._group_lookups
        return result


# ---------------------------------------------------------------------- #
# row store
# ---------------------------------------------------------------------- #
class RowStoreAdapter:
    """Drives a :class:`SystemX` for the service."""

    kind = "rs"

    def __init__(self, engine: SystemX) -> None:
        self.engine = engine

    def scope(self, session: Session) -> Tuple:
        return ("rs", session.design.value,
                "zm" if self.engine.zone_maps else "",
                f"sh{self.engine.shards}")

    def shard_count(self, session: Session) -> int:
        return self.engine.shards

    def recordable(self, session: Session) -> bool:
        # positions are recorded as rids of the whole-fact heap, which
        # only the traditional plan shape maps onto cleanly — and only
        # unsharded (the recording scan would bypass the shard stacks);
        # other sessions still get the result cache
        return (session.design is DesignKind.TRADITIONAL
                and self.engine.shards == 1)

    def share_key(self, query: StarQuery, session: Session) -> Tuple:
        return ("rs", session.design.value)

    def execute(self, query: StarQuery, session: Session,
                warm: bool = False, cancellation=None):
        return self.engine.execute(query, session.design,
                                   cold_pool=not warm,
                                   cancellation=cancellation)

    # -------------------------------------------------------------- #
    def _ensure_unpartitioned_heap(self) -> None:
        engine = self.engine
        if "lineorder" in engine.artifacts.heaps:
            return
        # one-time load; its write I/O belongs to no query's ledger
        saved = engine.disk.stats
        engine.disk.stats = QueryStats()
        try:
            DesignBuilder(engine.disk, engine.data) \
                .build_fact_unpartitioned(engine.artifacts)
        finally:
            engine.disk.stats = saved

    def execute_recording(self, query: StarQuery, session: Session,
                          warm: bool = False, cancellation=None):
        """A traditional-plan run that also records surviving rids.

        Recording scans the unpartitioned fact heap (rids must address
        one global heap), so its ledger reads like a traditional run
        with partition pruning off; results are identical."""
        engine = self.engine
        self._ensure_unpartitioned_heap()
        stats = QueryStats()
        engine.disk.stats = stats
        saved_cancellation = engine.disk.cancellation
        if cancellation is not None:
            engine.disk.cancellation = cancellation
        if warm:
            engine.disk.reset_head()
        else:
            engine.pool.clear()
        spill = SpillAccountant(engine.disk, engine.join_memory_bytes)
        tracer = Tracer(stats, engine.cost_model)
        planner = RowPlanner(engine.pool, engine.artifacts, engine.data,
                             spill, statistics=engine.statistics,
                             tracer=tracer, zone_maps=engine.zone_maps)
        heap = engine.artifacts.heaps["lineorder"]
        rid_parts: List[np.ndarray] = []

        def tee(stream):
            for batch in stream:
                rid_parts.append(np.asarray(batch.column("_rid")))
                yield batch

        try:
            dim_tables = planner._dim_hash_tables(query)
            stream = seq_scan(
                heap, engine.pool, query.fact_table,
                out_columns=planner._fact_out_columns(query),
                predicates=query.fact_predicates(),
                rid_column="_rid",
                zone_maps=engine.zone_maps,
            )
            for dim, table, _sel in dim_tables:
                fk = query.fk_of(dim)
                prefixing = {qualified(dim, a): qualified(dim, a)
                             for a in query.group_by_of(dim)}
                stream = hash_join(
                    stream, qualified(query.fact_table, fk), table,
                    prefixing, stats, spill=spill, probe_row_bytes=32,
                    probe_rows_estimate=engine.data.lineorder.num_rows,
                )
            result = planner._aggregate(query, tee(stream))
        except ChecksumError as error:
            raise CorruptPageError(
                error.file, error.page_no, error.disk_no,
                detail="row-store artifacts have no redundant copy",
            ) from error
        finally:
            engine.disk.cancellation = saved_cancellation
        trace = tracer.finish(stats)
        run = RowStoreRun(result, stats, engine.cost_model.cost(stats),
                          trace=trace)
        rids = (np.concatenate(rid_parts).astype(np.int64)
                if rid_parts else np.zeros(0, dtype=np.int64))
        key_sets = {
            dim: np.asarray(table.matching_keys(), dtype=np.int64)
            for dim, table, _sel in dim_tables
            if query.dimension_predicates(dim)
        }
        return run, RsRids(rids), key_sets

    def dim_key_set(self, query: StarQuery, session: Session, dim: str,
                    dim_cache: Dict) -> np.ndarray:
        arr = dim_cache.get(dim)
        if arr is not None:
            return arr
        engine = self.engine
        heap = engine.artifacts.heaps[dim]
        key_col = query.key_of(dim)
        parts = [
            np.asarray(batch.column(qualified(dim, key_col)))
            for batch in seq_scan(heap, engine.pool, dim, [key_col],
                                  query.dimension_predicates(dim),
                                  zone_maps=engine.zone_maps)
        ]
        arr = (np.concatenate(parts).astype(np.int64)
               if parts else np.zeros(0, dtype=np.int64))
        arr.sort()
        dim_cache[dim] = arr
        return arr

    def key_sets(self, query: StarQuery, session: Session,
                 dim_cache: Dict) -> Dict[str, np.ndarray]:
        return {
            dim: np.array(self.dim_key_set(query, session, dim, dim_cache))
            for dim in query.dimensions_used()
            if query.dimension_predicates(dim)
        }

    def refilter(self, query: StarQuery, session: Session,
                 entry: PositionEntry, dim_cache: Dict) -> ResultSet:
        """Answer ``query`` by rid-fetching a subsuming entry's rows.

        Fact predicates the entry does not guarantee are post-filtered;
        the requested query's own dimension hash joins then drop any
        cached row outside its (narrower) dimension sets."""
        engine = self.engine
        payload: RsRids = entry.payload
        heap = engine.artifacts.heaps["lineorder"]
        spill = SpillAccountant(engine.disk, engine.join_memory_bytes)
        planner = RowPlanner(engine.pool, engine.artifacts, engine.data,
                             spill, statistics=engine.statistics,
                             zone_maps=engine.zone_maps)
        stats = planner.stats
        fact = query.fact_table
        rids = payload.rids
        stats.position_ops += len(rids)
        stats.cache_refiltered_positions += len(rids)

        requested = normalize_query(query).by_column()
        cached = entry.signature.by_column()
        leftover = [
            p for p in query.fact_predicates()
            if requested[(fact, p.column)] != cached.get((fact, p.column))
        ]
        fetch_cols = list(planner._fact_out_columns(query))
        for pred in leftover:
            if pred.column not in fetch_cols:
                fetch_cols.append(pred.column)
        try:
            dim_tables = planner._dim_hash_tables(query)
            stream = heap_fetch(heap, engine.pool, rids, fact, fetch_cols)
            if leftover:
                stream = planner._post_filter(stream, query, leftover, heap)
            return planner._join_and_aggregate(query, stream, dim_tables,
                                               max(len(rids), 1))
        except ChecksumError as error:
            raise CorruptPageError(
                error.file, error.page_no, error.disk_no,
                detail="row-store artifacts have no redundant copy",
            ) from error


__all__ = ["ColumnStoreAdapter", "RowStoreAdapter", "CsPositions",
           "RsRids"]
