"""Shared scans: batch same-projection queries into one wave.

Queries waiting on the engine that target the same stored object (the
same fact projection for the column store, the same design's fact heap
for the row store) are grouped into *bands*.  Whichever request reaches
the engine first becomes the wave leader: it takes every banded request
(up to a wave limit) and serves them back to back — the leader on a cold
buffer pool, followers on the pool the leader just warmed, so the fact
scan's pages are read from disk once per wave instead of once per query.

Results are unaffected (pool warmth only changes *where* reads are
served from); each follower's ledger honestly shows the buffer hits it
got for free.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple


class ScanSharing:
    """A thread-safe registry of requests banded by scan target."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._bands: Dict[Tuple, List[object]] = {}

    def enqueue(self, key: Tuple, request: object) -> None:
        """Register ``request`` under its scan band."""
        with self._lock:
            self._bands.setdefault(key, []).append(request)

    def take(self, key: Tuple, leader: object, limit: int) -> List[object]:
        """Claim a wave: ``leader`` plus up to ``limit - 1`` banded
        requests, removed from the registry.  The leader is removed even
        if another wave already served it."""
        with self._lock:
            band = self._bands.get(key, [])
            if leader in band:
                band.remove(leader)
            wave = [leader] + band[: max(0, limit - 1)]
            del band[: max(0, limit - 1)]
            if not band:
                self._bands.pop(key, None)
            return wave

    def discard(self, request: object) -> None:
        """Drop a request that will not run (admission failure)."""
        with self._lock:
            for key, band in list(self._bands.items()):
                if request in band:
                    band.remove(request)
                    if not band:
                        self._bands.pop(key, None)
                    return

    def pending(self, key: Tuple) -> int:
        with self._lock:
            return len(self._bands.get(key, []))


__all__ = ["ScanSharing"]
