"""Storage formats shared by the two engines.

In-memory representation:

* :class:`~repro.storage.column.Column` — a typed vector (numpy-backed;
  strings are dictionary-encoded with an explicit dictionary).
* :class:`~repro.storage.table.Table` — named columns plus a schema and
  optional sort-order metadata.

On the simulated disk:

* :mod:`~repro.storage.colfile` — column files: one compressed block per
  page, the C-Store side's physical format.
* :mod:`~repro.storage.rowpage` / :mod:`~repro.storage.heapfile` — slotted
  pages of full tuples with per-tuple headers, the System X side's format.
* :mod:`~repro.storage.encodings` — the compression codecs (RLE,
  dictionary, bit-packing, delta) from Abadi et al. 2006.
* :mod:`~repro.storage.projection` — C-Store projections (column groups
  stored in a chosen sort order).
"""

from .column import Column, StringDictionary
from .table import Table, SortOrder

__all__ = ["Column", "StringDictionary", "Table", "SortOrder"]
