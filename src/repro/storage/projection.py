"""C-Store projections: column groups stored in a chosen sort order.

A projection materializes some (here: all) columns of a table, sorted on a
compound key.  The paper stores one projection of the SSB fact table,
sorted on ``orderdate`` with ``quantity`` and ``discount`` as secondary
keys (Section 6.3.2), which is what makes those three columns run-length
compressible and flight 1 an order of magnitude faster under compression.

Dimension tables are stored sorted by their rollup hierarchy (e.g.
region, nation, city), which is what makes between-predicate rewriting
(Section 5.4.2) applicable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import SchemaError
from ..simio.buffer_pool import BufferPool
from ..simio.disk import SimulatedDisk
from .colfile import ColumnFile, CompressionLevel
from .table import SortOrder, Table


class Projection:
    """All columns of one table, stored sorted, one column file each."""

    def __init__(
        self,
        name: str,
        table_name: str,
        sort_order: SortOrder,
        column_files: Dict[str, ColumnFile],
        num_rows: int,
        level: CompressionLevel,
    ) -> None:
        self.name = name
        self.table_name = table_name
        self.sort_order = sort_order
        self._column_files = column_files
        self.num_rows = num_rows
        self.level = level

    @classmethod
    def create(
        cls,
        disk: SimulatedDisk,
        table: Table,
        sort_keys: Sequence[str] = (),
        level: CompressionLevel = CompressionLevel.MAX,
        name: Optional[str] = None,
    ) -> "Projection":
        """Sort ``table`` on ``sort_keys`` and write every column.

        If the table is already sorted on exactly these keys the data is
        used as-is (no re-sort).
        """
        proj_name = name or f"{table.name}_proj_{'_'.join(sort_keys) or 'unsorted'}"
        if tuple(sort_keys) and table.sort_order.keys != tuple(sort_keys):
            table = table.sort_by(list(sort_keys))
        files: Dict[str, ColumnFile] = {}
        for column in table.columns():
            file_name = f"{proj_name}.{column.name}"
            files[column.name] = ColumnFile.load(disk, file_name, column, level)
        return cls(proj_name, table.name, SortOrder(tuple(sort_keys)), files,
                   table.num_rows, level)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    @property
    def column_names(self) -> List[str]:
        return sorted(self._column_files)

    def column_file(self, name: str) -> ColumnFile:
        """The :class:`ColumnFile` for column ``name``."""
        try:
            return self._column_files[name]
        except KeyError:
            raise SchemaError(
                f"projection {self.name!r} has no column {name!r}; "
                f"columns are {self.column_names}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._column_files

    def column_for_file(self, file_name: str) -> Optional[str]:
        """Which column a disk file belongs to, or None if not ours.

        The recovery layer maps a corrupt file back to its owning
        projection/column to decide whether a redundant copy exists.
        """
        for name, colfile in self._column_files.items():
            if colfile.name == file_name:
                return name
        return None

    def size_bytes(self) -> int:
        """Occupied whole-page bytes across all column files."""
        return sum(f.size_bytes for f in self._column_files.values())

    def compressed_payload_bytes(self) -> int:
        """Encoded bytes across all column files (excludes page slack)."""
        return sum(
            f.compressed_payload_bytes for f in self._column_files.values()
        )

    def read_table(self, pool: BufferPool) -> Dict[str, np.ndarray]:
        """Decode every column fully (verification paths only)."""
        return {
            name: f.read_all(pool) for name, f in self._column_files.items()
        }

    def sorted_on(self, column: str) -> Optional[int]:
        """This column's position in the sort key (0 = primary), or None."""
        return self.sort_order.position(column)


__all__ = ["Projection"]
