"""Heap files: row-store tables on the simulated disk.

A heap file is a sequence of slotted pages in no guaranteed order (the
paper, Section 6.3.1: row-store heap order is only guaranteed through an
index).  Loading a :class:`~repro.storage.table.Table` writes real page
images; scans read them back through the buffer pool and return structured
record batches — the Volcano iterator layer above turns those into
tuple-at-a-time streams and charges per-tuple costs.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import StorageError
from ..simio.buffer_pool import BufferPool
from ..simio.disk import SimulatedDisk
from ..synopsis import heap_synopsis_blob, sidecar_name, write_sidecar
from ..types import ROW_TUPLE_HEADER_BYTES, Schema
from .rowpage import RowFormat
from .table import Table


class HeapFile:
    """A row-oriented table stored as pages on the simulated disk."""

    def __init__(self, disk: SimulatedDisk, name: str, fmt: RowFormat,
                 num_rows: int) -> None:
        self.disk = disk
        self.name = name
        self.fmt = fmt
        self.num_rows = num_rows

    # ------------------------------------------------------------------ #
    # creation
    # ------------------------------------------------------------------ #
    @classmethod
    def load(
        cls,
        disk: SimulatedDisk,
        name: str,
        table: Table,
        header_bytes: int = ROW_TUPLE_HEADER_BYTES,
    ) -> "HeapFile":
        """Serialize ``table`` into a new heap file called ``name``."""
        fmt = RowFormat(table.schema, header_bytes=header_bytes)
        disk.create(name)
        records = fmt.build_records(table)
        for payload in fmt.pages_of(records):
            disk.append_page(name, payload)
        blob = heap_synopsis_blob(records, fmt.rows_per_page)
        if blob is not None:
            write_sidecar(disk, sidecar_name(name), blob)
        return cls(disk, name, fmt, table.num_rows)

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        return self.fmt.schema

    @property
    def num_pages(self) -> int:
        return self.disk.file(self.name).num_pages

    @property
    def size_bytes(self) -> int:
        """Occupied bytes (whole pages)."""
        return self.disk.file(self.name).size_bytes

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def scan_batches(self, pool: BufferPool) -> Iterator[np.ndarray]:
        """Sequentially scan all pages, yielding one record batch per page."""
        for payload in pool.scan_pages(self.name):
            yield self.fmt.parse_page(payload)

    def read_row(self, pool: BufferPool, row_id: int) -> np.void:
        """Random access to one record by rid (page/slot arithmetic)."""
        if not 0 <= row_id < self.num_rows:
            raise StorageError(
                f"rid {row_id} out of range for {self.name!r} ({self.num_rows} rows)"
            )
        page_no, slot = divmod(row_id, self.fmt.rows_per_page)
        batch = self.fmt.parse_page(pool.read_page(self.name, page_no))
        return batch[slot]

    def page_of_rid(self, row_id: int) -> int:
        """Page number holding ``row_id``."""
        return row_id // self.fmt.rows_per_page


__all__ = ["HeapFile"]
