"""In-memory column blocks: the unit passed between column operators.

Section 5.3 of the paper: column stores hand *blocks* of values between
operators in a single call, iterating fixed-width values as an array.
Two block shapes exist here:

* :class:`ArrayBlock` — a decoded numpy vector (integer values, dictionary
  codes, or raw ``S<n>`` bytes when compression is off);
* :class:`RleBlock` — run values + run lengths, kept compressed so that
  operators can work on runs directly (Section 5.1).

Each block knows its starting position within the column, which is how
late materialization lines blocks up with position lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np


@dataclass(frozen=True)
class ArrayBlock:
    """A decoded slice of a column: ``count`` values from ``start``."""

    start: int
    data: np.ndarray

    @property
    def count(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        return self.start + len(self.data)

    @property
    def width_words(self) -> int:
        """Value width in 4-byte words — the CPU cost multiplier for
        operating on wide (e.g. uncompressed string) values."""
        return max(1, self.data.dtype.itemsize // 4)


@dataclass(frozen=True)
class RleBlock:
    """A compressed slice: run values with their lengths, from ``start``."""

    start: int
    run_values: np.ndarray
    run_lengths: np.ndarray

    @property
    def count(self) -> int:
        return int(self.run_lengths.sum())

    @property
    def end(self) -> int:
        return self.start + self.count

    @property
    def num_runs(self) -> int:
        return len(self.run_values)

    def to_array(self) -> np.ndarray:
        """Expand to a plain vector (the caller charges decompression)."""
        return np.repeat(self.run_values, self.run_lengths)

    def run_starts(self) -> np.ndarray:
        """Absolute start position of each run."""
        out = np.empty(self.num_runs, dtype=np.int64)
        out[0:1] = self.start
        if self.num_runs > 1:
            np.cumsum(self.run_lengths[:-1], out=out[1:])
            out[1:] += self.start
        return out


Block = Union[ArrayBlock, RleBlock]

__all__ = ["ArrayBlock", "RleBlock", "Block"]
