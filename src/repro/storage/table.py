"""In-memory logical tables.

A :class:`Table` is what the SSB generator produces and what the engines
load into their physical designs.  It is columnar in memory (a dict of
:class:`~repro.storage.column.Column`), carries a
:class:`~repro.types.Schema`, and records its :class:`SortOrder` — the
paper's compression results hinge on which columns are (secondarily)
sorted, so sort metadata is a first-class property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import SchemaError
from ..types import Field, Schema
from .column import Column


@dataclass(frozen=True)
class SortOrder:
    """The (possibly compound) sort order of a table.

    ``keys`` lists column names from major to minor; an empty tuple means
    unsorted.  The SSB fact table in the paper is sorted on ``orderdate``
    with ``quantity`` and ``discount`` as secondary keys.
    """

    keys: Tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.keys)

    def sorted_prefix_of(self, column: str) -> bool:
        """True when ``column`` is the primary sort key."""
        return bool(self.keys) and self.keys[0] == column

    def position(self, column: str) -> Optional[int]:
        """Sort position of ``column`` (0 = primary), or None."""
        try:
            return self.keys.index(column)
        except ValueError:
            return None


class Table:
    """Named columns + schema + sort order.

    All columns must have identical length; positions (row ordinals) are
    the implicit join key between them — exactly the property column
    stores exploit (Section 6.3.1).
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        sort_order: SortOrder = SortOrder(),
    ) -> None:
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        lengths = {len(c) for c in columns}
        if len(lengths) != 1:
            raise SchemaError(
                f"table {name!r} has ragged columns: lengths {sorted(lengths)}"
            )
        self.name = name
        self._columns: Dict[str, Column] = {}
        for col in columns:
            if col.name in self._columns:
                raise SchemaError(f"duplicate column {col.name!r} in {name!r}")
            self._columns[col.name] = col
        self.schema = Schema([Field(c.name, c.ctype) for c in columns])
        self.sort_order = sort_order
        for key in sort_order.keys:
            if key not in self._columns:
                raise SchemaError(f"sort key {key!r} is not a column of {name!r}")

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.name!r}, rows={self.num_rows}, cols={len(self.schema)})"

    @property
    def num_rows(self) -> int:
        return len(next(iter(self._columns.values())))

    @property
    def column_names(self) -> List[str]:
        return self.schema.names

    def column(self, name: str) -> Column:
        """The column called ``name``; :class:`SchemaError` if absent."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}; "
                f"columns are {self.column_names}"
            ) from None

    def columns(self) -> List[Column]:
        """All columns in schema order."""
        return [self._columns[n] for n in self.schema.names]

    def has_column(self, name: str) -> bool:
        return name in self._columns

    # ------------------------------------------------------------------ #
    # derivation
    # ------------------------------------------------------------------ #
    def project(self, names: Sequence[str], new_name: Optional[str] = None) -> "Table":
        """A table with only ``names`` (shares column data)."""
        keep = set(names)
        order = SortOrder(
            tuple(k for k in self.sort_order.keys if k in keep)
        )
        # a compound sort order is only meaningful as a prefix
        prefix: List[str] = []
        for key in self.sort_order.keys:
            if key in keep:
                prefix.append(key)
            else:
                break
        return Table(
            new_name or self.name,
            [self.column(n) for n in names],
            SortOrder(tuple(prefix)),
        )

    def take(self, positions: np.ndarray, new_name: Optional[str] = None) -> "Table":
        """A table holding only the rows at ``positions`` (in that order)."""
        return Table(
            new_name or self.name,
            [c.take(positions) for c in self.columns()],
            SortOrder(()),
        )

    def sort_by(self, keys: Sequence[str]) -> "Table":
        """A stably sorted copy of this table on ``keys`` (major first)."""
        if not keys:
            return self
        arrays = [self.column(k).data for k in reversed(keys)]
        order = np.lexsort(arrays)
        sorted_cols = [c.take(order) for c in self.columns()]
        return Table(self.name, sorted_cols, SortOrder(tuple(keys)))

    def row(self, position: int) -> Dict[str, Union[int, str]]:
        """One logical row as a dict (decoded strings); for tests/oracle."""
        return {n: self._columns[n].value_at(position) for n in self.schema.names}

    def iter_rows(self) -> Iterator[Dict[str, Union[int, str]]]:
        """Iterate logical rows (slow; reference/oracle use only)."""
        for i in range(self.num_rows):
            yield self.row(i)

    def uncompressed_bytes(self) -> int:
        """Plain storage size of all columns at declared widths."""
        return sum(c.uncompressed_bytes() for c in self.columns())

    def verify_sorted(self) -> bool:
        """Check that the data actually obeys ``sort_order`` (test helper)."""
        if not self.sort_order:
            return True
        arrays = [self.column(k).data for k in self.sort_order.keys]
        n = self.num_rows
        if n <= 1:
            return True
        keys = np.stack([a.astype(np.int64) for a in arrays])
        prev = keys[:, :-1]
        nxt = keys[:, 1:]
        for level in range(keys.shape[0]):
            higher_equal = np.ones(n - 1, dtype=bool)
            for upper in range(level):
                higher_equal &= prev[upper] == nxt[upper]
            if np.any(higher_equal & (prev[level] > nxt[level])):
                return False
        return True


__all__ = ["Table", "SortOrder"]
