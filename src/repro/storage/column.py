"""In-memory typed columns.

A :class:`Column` is the unit both engines ingest.  Integer columns wrap a
numpy array directly.  String columns are dictionary-encoded at creation:
the column holds an int32 code vector plus a :class:`StringDictionary`.
This mirrors how real column stores (and the paper's C-Store) treat text,
and it is also what makes the pure-Python reproduction feasible — all hot
loops run over integer vectors.

The *row* store is not allowed to exploit the dictionary: the heap file
format (:mod:`repro.storage.rowpage`) expands codes back to fixed-width
bytes when laying out tuples, exactly as System X stores CHAR(n) fields.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from ..errors import TypeMismatchError
from ..types import ColumnType, string as string_type, validate_int_array


class StringDictionary:
    """An ordered mapping between strings and dense int32 codes.

    Codes are assigned in **sorted string order** (code 0 is the smallest
    string).  Order-preserving dictionaries matter twice in the paper:
    range predicates can be evaluated directly on codes, and
    between-predicate rewriting (Section 5.4.2) relies on re-keyed
    dictionaries being ordered and contiguous.
    """

    def __init__(self, values: Sequence[str]) -> None:
        uniq = sorted(set(values))
        self._strings: List[str] = uniq
        self._codes: Dict[str, int] = {s: i for i, s in enumerate(uniq)}

    @classmethod
    def from_sorted_unique(cls, values: Sequence[str]) -> "StringDictionary":
        """Trusted constructor for values already sorted and unique."""
        d = cls.__new__(cls)
        d._strings = list(values)
        d._codes = {s: i for i, s in enumerate(d._strings)}
        return d

    def __len__(self) -> int:
        return len(self._strings)

    def __contains__(self, value: str) -> bool:
        return value in self._codes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StringDictionary):
            return NotImplemented
        return self._strings == other._strings

    def code(self, value: str) -> int:
        """Code of ``value``; raise KeyError if absent."""
        return self._codes[value]

    def code_or_none(self, value: str) -> Optional[int]:
        """Code of ``value`` or None if the string never occurs."""
        return self._codes.get(value)

    def value(self, code: int) -> str:
        """String for one code."""
        return self._strings[code]

    def decode(self, codes: np.ndarray) -> List[str]:
        """Strings for a vector of codes."""
        strings = self._strings
        return [strings[c] for c in codes]

    def decode_array(self, codes: np.ndarray) -> np.ndarray:
        """Vectorized decode to a numpy unicode array."""
        return np.asarray(self._strings, dtype=object)[codes]

    def encode(self, values: Iterable[str]) -> np.ndarray:
        """Codes for an iterable of strings (all must be present)."""
        codes = self._codes
        return np.fromiter((codes[v] for v in values), dtype=np.int32)

    @property
    def strings(self) -> List[str]:
        """The dictionary contents in code order (do not mutate)."""
        return self._strings

    def range_for_prefix_le(self, low: str, high: str) -> range:
        """Codes whose strings fall in [low, high] — contiguous because the
        dictionary is sorted."""
        import bisect

        lo = bisect.bisect_left(self._strings, low)
        hi = bisect.bisect_right(self._strings, high)
        return range(lo, hi)


class Column:
    """A named, typed, immutable vector of values.

    ``data`` is always an integer numpy array: the values themselves for
    integer columns, dictionary codes for string columns.
    """

    def __init__(
        self,
        name: str,
        ctype: ColumnType,
        data: np.ndarray,
        dictionary: Optional[StringDictionary] = None,
    ) -> None:
        if ctype.is_string and dictionary is None:
            raise TypeMismatchError(f"string column {name!r} requires a dictionary")
        if not ctype.is_string and dictionary is not None:
            raise TypeMismatchError(f"integer column {name!r} cannot take a dictionary")
        self.name = name
        self.ctype = ctype
        self.data = validate_int_array(data, ctype)
        self.data.setflags(write=False)
        self.dictionary = dictionary
        if dictionary is not None and len(self.data):
            top = int(self.data.max())
            if top >= len(dictionary) or int(self.data.min()) < 0:
                raise TypeMismatchError(
                    f"column {name!r} has codes outside its dictionary"
                )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_ints(cls, name: str, values: Union[Sequence[int], np.ndarray],
                  ctype: ColumnType) -> "Column":
        """Build an integer column, validating range against ``ctype``."""
        return cls(name, ctype, np.asarray(values))

    @classmethod
    def from_strings(
        cls, name: str, values: Sequence[str], width: Optional[int] = None
    ) -> "Column":
        """Build a string column, deriving the CHAR width if not given."""
        dictionary = StringDictionary(values)
        if width is None:
            width = max((len(s) for s in dictionary.strings), default=1)
        codes = dictionary.encode(values)
        return cls(name, string_type(width), codes, dictionary)

    @classmethod
    def from_codes(
        cls,
        name: str,
        codes: np.ndarray,
        dictionary: StringDictionary,
        width: int,
    ) -> "Column":
        """Build a string column from an existing dictionary and codes."""
        return cls(name, string_type(width), codes, dictionary)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Column({self.name!r}, {self.ctype!r}, n={len(self)})"

    @property
    def is_string(self) -> bool:
        return self.ctype.is_string

    def value_at(self, position: int) -> Union[int, str]:
        """The logical (decoded) value at one position."""
        raw = self.data[position]
        if self.dictionary is not None:
            return self.dictionary.value(int(raw))
        return int(raw)

    def decoded(self) -> Union[np.ndarray, List[str]]:
        """All logical values (strings decoded); intended for small outputs."""
        if self.dictionary is not None:
            return self.dictionary.decode(self.data)
        return self.data

    def take(self, positions: np.ndarray) -> "Column":
        """A new column holding the values at ``positions``."""
        return Column(self.name, self.ctype, self.data[positions], self.dictionary)

    def rename(self, name: str) -> "Column":
        """The same column under a new name (shares data)."""
        return Column(name, self.ctype, self.data, self.dictionary)

    def uncompressed_bytes(self) -> int:
        """Size of this column stored plain at its declared width."""
        return len(self.data) * self.ctype.width

    def encode_literal(self, value: Union[int, str]) -> Optional[int]:
        """Translate a query literal into this column's raw domain.

        Returns None when a string literal does not occur in the column
        (the predicate can then be constant-folded to empty/full).
        """
        if self.dictionary is not None:
            if not isinstance(value, str):
                raise TypeMismatchError(
                    f"column {self.name!r} is a string column; got {value!r}"
                )
            return self.dictionary.code_or_none(value)
        if isinstance(value, str):
            raise TypeMismatchError(
                f"column {self.name!r} is an integer column; got {value!r}"
            )
        return int(value)


__all__ = ["Column", "StringDictionary"]
