"""Codec base class, payload framing, registry, and auto-selection.

Every codec turns a 1-D numpy array into ``bytes`` and back.  Payloads are
self-describing: the first byte is the :class:`CodecId`, so a column file
can mix codecs block-by-block (a block of a mostly-sorted column may be
RLE while its neighbour is bit-packed).

Codecs are stateless singletons; per-payload parameters (dtype, bit width,
dictionary) live inside the payload itself.
"""

from __future__ import annotations

import abc
import enum
import struct
from typing import Dict, Optional, Tuple

import numpy as np

from ...errors import EncodingError

_DTYPE_CODES = {
    "i4": b"I",
    "i8": b"L",
}
_CODE_DTYPES = {v: np.dtype(k) for k, v in _DTYPE_CODES.items()}


def pack_dtype(dtype: np.dtype) -> bytes:
    """One-byte tag for a supported dtype (int32/int64/fixed bytes)."""
    if dtype.kind == "S":
        # 'S' + 2-byte width
        return b"S" + struct.pack("<H", dtype.itemsize)
    key = f"{dtype.kind}{dtype.itemsize}"
    try:
        return _DTYPE_CODES[key]
    except KeyError:
        raise EncodingError(f"unsupported dtype {dtype}") from None


def unpack_dtype(payload: bytes, offset: int) -> Tuple[np.dtype, int]:
    """Inverse of :func:`pack_dtype`; returns (dtype, new offset)."""
    tag = payload[offset:offset + 1]
    if tag == b"S":
        (width,) = struct.unpack_from("<H", payload, offset + 1)
        return np.dtype(f"S{width}"), offset + 3
    try:
        return _CODE_DTYPES[tag], offset + 1
    except KeyError:
        raise EncodingError(f"unknown dtype tag {tag!r}") from None


class CodecId(enum.IntEnum):
    """Stable on-disk identifiers for each codec."""

    PLAIN = 0
    RLE = 1
    BITPACK = 2
    DELTA = 3
    DICTIONARY = 4


class Codec(abc.ABC):
    """A compression scheme for one block of column values."""

    codec_id: CodecId
    name: str

    @abc.abstractmethod
    def encode(self, values: np.ndarray) -> bytes:
        """Encode ``values`` (excluding the codec-id framing byte)."""

    @abc.abstractmethod
    def decode(self, payload: bytes) -> np.ndarray:
        """Decode a payload produced by :meth:`encode`."""

    def can_encode(self, values: np.ndarray) -> bool:
        """Whether this codec applies to ``values`` at all."""
        return True

    def frame(self, values: np.ndarray) -> bytes:
        """Encode with the one-byte codec-id prefix used in column files."""
        return bytes([int(self.codec_id)]) + self.encode(values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<codec {self.name}>"


_REGISTRY: Dict[int, Codec] = {}


def register(codec: Codec) -> Codec:
    """Add a codec singleton to the registry (module import side effect)."""
    _REGISTRY[int(codec.codec_id)] = codec
    return codec


def codec_by_id(codec_id: int) -> Codec:
    """Look up the codec for a framed payload's first byte."""
    try:
        return _REGISTRY[codec_id]
    except KeyError:
        raise EncodingError(f"unknown codec id {codec_id}") from None


def decode_payload(framed: bytes) -> np.ndarray:
    """Decode a framed payload (codec id byte + codec payload)."""
    if not framed:
        raise EncodingError("empty payload")
    return codec_by_id(framed[0]).decode(framed[1:])


def decode_payload_runs(framed: bytes) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """If the payload is RLE, return (run_values, run_lengths) without
    expanding; otherwise None.  This is the hook for direct operation on
    compressed data."""
    if not framed:
        raise EncodingError("empty payload")
    codec = codec_by_id(framed[0])
    runs = getattr(codec, "decode_runs", None)
    if runs is None:
        return None
    return runs(framed[1:])


def encoded_size(codec: Codec, values: np.ndarray) -> int:
    """Framed byte size of ``values`` under ``codec``."""
    return len(codec.frame(values))


def choose_codec(values: np.ndarray, candidates: Optional[Tuple[Codec, ...]] = None
                 ) -> Codec:
    """Pick the codec with the smallest framed output for ``values``.

    This is the load-time greedy selection C-Store performs per column
    block.  The try-all strategy is affordable because blocks are small
    and loading is not part of any measured query.
    """
    from .plain import PLAIN
    from .rle import RLE
    from .bitpack import BITPACK
    from .delta import DELTA
    from .dictionary import DICTIONARY

    if candidates is None:
        candidates = (PLAIN, RLE, BITPACK, DELTA, DICTIONARY)
    best: Optional[Codec] = None
    best_size = None
    for codec in candidates:
        if not codec.can_encode(values):
            continue
        size = encoded_size(codec, values)
        if best_size is None or size < best_size:
            best, best_size = codec, size
    if best is None:
        raise EncodingError(f"no codec can encode dtype {values.dtype}")
    return best


__all__ = [
    "Codec",
    "CodecId",
    "register",
    "codec_by_id",
    "decode_payload",
    "decode_payload_runs",
    "encoded_size",
    "choose_codec",
    "pack_dtype",
    "unpack_dtype",
]
