"""Column compression codecs (Abadi, Madden, Ferreira; SIGMOD 2006).

The paper's compression ablation (the ``C``/``c`` flag of Figure 7) and the
denormalization study (Figure 8) depend on these "lighter-weight" schemes
that trade compression ratio for decode speed and, for RLE, support
**direct operation on compressed data**:

* :class:`~repro.storage.encodings.plain.PlainCodec` — values verbatim.
* :class:`~repro.storage.encodings.rle.RleCodec` — run-length encoding;
  dominant on sorted columns (the fact table's orderdate at SF 10
  compresses to ~64 KB in the paper).
* :class:`~repro.storage.encodings.bitpack.BitPackCodec` — fixed-width
  minimal-bit packing for low-magnitude integers.
* :class:`~repro.storage.encodings.delta.DeltaCodec` — deltas of sorted
  runs, zig-zag coded then bit-packed.
* :class:`~repro.storage.encodings.dictionary.DictionaryCodec` — per-block
  value dictionary plus packed indices, for low-cardinality columns.

:func:`~repro.storage.encodings.codec.choose_codec` performs the greedy
smallest-output selection the engines use at load time.
"""

from .codec import (
    Codec,
    CodecId,
    choose_codec,
    codec_by_id,
    decode_payload,
    decode_payload_runs,
    encoded_size,
)
from .plain import PlainCodec
from .rle import RleCodec, runs_of
from .bitpack import BitPackCodec, bits_needed
from .delta import DeltaCodec
from .dictionary import DictionaryCodec

__all__ = [
    "Codec",
    "CodecId",
    "choose_codec",
    "codec_by_id",
    "decode_payload",
    "decode_payload_runs",
    "encoded_size",
    "PlainCodec",
    "RleCodec",
    "runs_of",
    "BitPackCodec",
    "bits_needed",
    "DeltaCodec",
    "DictionaryCodec",
]
