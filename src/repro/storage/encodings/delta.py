"""Delta encoding: first value plus zig-zag-coded, bit-packed deltas.

Effective on sorted or near-sorted integer columns whose consecutive
differences are small — e.g. the position column of a sorted projection,
or a datekey column within one partition.
"""

from __future__ import annotations

import struct

import numpy as np

from ...errors import EncodingError
from .codec import Codec, CodecId, pack_dtype, register, unpack_dtype
from .bitpack import bits_needed, pack_bits, unpack_bits


def zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed to unsigned so small magnitudes stay small.

    0→0, -1→1, 1→2, -2→3, ... — the classic varint-friendly mapping.
    """
    v = values.astype(np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def unzigzag(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag`."""
    v = values.astype(np.uint64)
    return ((v >> np.uint64(1)).astype(np.int64)) ^ -(v & np.uint64(1)).astype(np.int64)


class DeltaCodec(Codec):
    """First value verbatim; remaining values as packed zig-zag deltas."""

    codec_id = CodecId.DELTA
    name = "delta"

    def can_encode(self, values: np.ndarray) -> bool:
        return values.dtype.kind == "i"

    def encode(self, values: np.ndarray) -> bytes:
        if not self.can_encode(values):
            raise EncodingError(f"delta codec cannot encode dtype {values.dtype}")
        count = len(values)
        first = int(values[0]) if count else 0
        deltas = zigzag(np.diff(values.astype(np.int64))) if count > 1 else (
            np.zeros(0, dtype=np.uint64)
        )
        max_delta = int(deltas.max()) if len(deltas) else 0
        bits = bits_needed(max_delta)
        header = (
            pack_dtype(values.dtype)
            + struct.pack("<IqB", count, first, bits)
        )
        return header + pack_bits(deltas.astype(np.int64), bits)

    def decode(self, payload: bytes) -> np.ndarray:
        dtype, offset = unpack_dtype(payload, 0)
        count, first, bits = struct.unpack_from("<IqB", payload, offset)
        offset += 13
        if count == 0:
            return np.zeros(0, dtype=dtype)
        deltas = unzigzag(unpack_bits(payload[offset:], count - 1, bits))
        out = np.empty(count, dtype=np.int64)
        out[0] = first
        if count > 1:
            np.cumsum(deltas, out=out[1:])
            out[1:] += first
        return out.astype(dtype)


DELTA = register(DeltaCodec())

__all__ = ["DeltaCodec", "DELTA", "zigzag", "unzigzag"]
