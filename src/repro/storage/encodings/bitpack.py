"""Fixed-width bit packing for non-negative integers.

Packs each value into the minimum number of bits that represents the
block's maximum — the workhorse for foreign-key and dictionary-code
columns, whose values are dense but smaller than their 4-byte container.
"""

from __future__ import annotations

import struct

import numpy as np

from ...errors import EncodingError
from .codec import Codec, CodecId, pack_dtype, register, unpack_dtype


def bits_needed(max_value: int) -> int:
    """Bits required to store values in ``[0, max_value]`` (at least 1)."""
    if max_value < 0:
        raise EncodingError("bit packing requires non-negative values")
    return max(1, int(max_value).bit_length())


def pack_bits(values: np.ndarray, bits: int) -> bytes:
    """Pack ``values`` (non-negative) at ``bits`` bits per value."""
    if len(values) == 0:
        return b""
    v = values.astype(np.uint64)
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint64)
    bit_matrix = ((v[:, None] >> shifts) & 1).astype(np.uint8)
    return np.packbits(bit_matrix.ravel()).tobytes()


def unpack_bits(payload: bytes, count: int, bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`, returning uint64 values."""
    if count == 0:
        return np.zeros(0, dtype=np.uint64)
    raw = np.frombuffer(payload, dtype=np.uint8)
    flat = np.unpackbits(raw, count=count * bits)
    bit_matrix = flat.reshape(count, bits).astype(np.uint64)
    weights = (np.uint64(1) << np.arange(bits - 1, -1, -1, dtype=np.uint64))
    return bit_matrix @ weights


class BitPackCodec(Codec):
    """Minimal-width packing of a non-negative integer block."""

    codec_id = CodecId.BITPACK
    name = "bitpack"

    def can_encode(self, values: np.ndarray) -> bool:
        if values.dtype.kind != "i":
            return False
        return len(values) == 0 or int(values.min()) >= 0

    def encode(self, values: np.ndarray) -> bytes:
        if not self.can_encode(values):
            raise EncodingError("bitpack requires non-negative integers")
        max_value = int(values.max()) if len(values) else 0
        bits = bits_needed(max_value)
        header = pack_dtype(values.dtype) + struct.pack("<IB", len(values), bits)
        return header + pack_bits(values, bits)

    def decode(self, payload: bytes) -> np.ndarray:
        dtype, offset = unpack_dtype(payload, 0)
        count, bits = struct.unpack_from("<IB", payload, offset)
        offset += 5
        return unpack_bits(payload[offset:], count, bits).astype(dtype)


BITPACK = register(BitPackCodec())

__all__ = ["BitPackCodec", "BITPACK", "bits_needed", "pack_bits", "unpack_bits"]
