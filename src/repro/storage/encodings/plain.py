"""Plain (uncompressed) codec: values verbatim at their natural width.

Also the only codec that handles fixed-width byte strings (``S<n>``
dtypes), which the column engine uses when compression is disabled and
string columns must be stored expanded, exactly as a row store would keep
CHAR(n) fields.
"""

from __future__ import annotations

import struct

import numpy as np

from ...errors import EncodingError
from .codec import Codec, CodecId, pack_dtype, register, unpack_dtype


class PlainCodec(Codec):
    """Raw little-endian array bytes, prefixed with dtype and count."""

    codec_id = CodecId.PLAIN
    name = "plain"

    def can_encode(self, values: np.ndarray) -> bool:
        return values.dtype.kind in ("i", "S")

    def encode(self, values: np.ndarray) -> bytes:
        if not self.can_encode(values):
            raise EncodingError(f"plain codec cannot encode dtype {values.dtype}")
        header = pack_dtype(values.dtype) + struct.pack("<I", len(values))
        return header + np.ascontiguousarray(values).tobytes()

    def decode(self, payload: bytes) -> np.ndarray:
        dtype, offset = unpack_dtype(payload, 0)
        (count,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        expected = count * dtype.itemsize
        body = payload[offset:offset + expected]
        if len(body) != expected:
            raise EncodingError(
                f"plain payload truncated: want {expected} bytes, have {len(body)}"
            )
        return np.frombuffer(body, dtype=dtype, count=count)


PLAIN = register(PlainCodec())

__all__ = ["PlainCodec", "PLAIN"]
