"""Per-block dictionary encoding: distinct values + packed indices.

Complementary to the table-level string dictionaries in
:mod:`repro.storage.column`: this codec works on any integer block with
few distinct values (e.g. a nation-code column inside the denormalized
fact table of Figure 8), storing the distinct values once and bit-packing
an index per row.
"""

from __future__ import annotations

import struct

import numpy as np

from ...errors import EncodingError
from .codec import Codec, CodecId, pack_dtype, register, unpack_dtype
from .bitpack import bits_needed, pack_bits, unpack_bits


class DictionaryCodec(Codec):
    """Distinct-value table plus bit-packed per-row indices."""

    codec_id = CodecId.DICTIONARY
    name = "dictionary"

    def can_encode(self, values: np.ndarray) -> bool:
        return values.dtype.kind == "i"

    def encode(self, values: np.ndarray) -> bytes:
        if not self.can_encode(values):
            raise EncodingError(
                f"dictionary codec cannot encode dtype {values.dtype}"
            )
        distinct, indices = np.unique(values, return_inverse=True)
        bits = bits_needed(max(len(distinct) - 1, 0))
        header = (
            pack_dtype(values.dtype)
            + struct.pack("<IIB", len(values), len(distinct), bits)
        )
        return (
            header
            + np.ascontiguousarray(distinct).tobytes()
            + pack_bits(indices.astype(np.int64), bits)
        )

    def decode(self, payload: bytes) -> np.ndarray:
        dtype, offset = unpack_dtype(payload, 0)
        count, ndistinct, bits = struct.unpack_from("<IIB", payload, offset)
        offset += 9
        distinct_end = offset + ndistinct * dtype.itemsize
        distinct = np.frombuffer(payload[offset:distinct_end], dtype=dtype,
                                 count=ndistinct)
        indices = unpack_bits(payload[distinct_end:], count, bits).astype(np.intp)
        if count and ndistinct == 0:
            raise EncodingError("dictionary payload corrupt: no distinct values")
        return distinct[indices] if count else np.zeros(0, dtype=dtype)


DICTIONARY = register(DictionaryCodec())

__all__ = ["DictionaryCodec", "DICTIONARY"]
