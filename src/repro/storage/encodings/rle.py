"""Run-length encoding with direct-operation support.

RLE replaces a run of equal values with ``(value, length)``.  On the SSB
fact table's sort column the paper reports an average run length near
25,000 — the source of the order-of-magnitude flight-1 speedup — because a
predicate or aggregate can be applied to an entire run at once
(Section 5.1, "operating directly on compressed data").

:meth:`RleCodec.decode_runs` returns the run arrays without expansion;
the column scan operators use it to process runs instead of values.
"""

from __future__ import annotations

import struct
from typing import Tuple

import numpy as np

from ...errors import EncodingError
from .codec import Codec, CodecId, pack_dtype, register, unpack_dtype


def runs_of(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``values`` into (run_values, run_lengths).

    >>> runs_of(np.array([1, 1, 1, 2, 2]))
    (array([1, 2]), array([3, 2], dtype=uint32))
    """
    n = len(values)
    if n == 0:
        return values[:0], np.zeros(0, dtype=np.uint32)
    boundaries = np.flatnonzero(values[1:] != values[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [n]))
    return values[starts], (ends - starts).astype(np.uint32)


class RleCodec(Codec):
    """``(value, length)`` pairs stored as two packed arrays."""

    codec_id = CodecId.RLE
    name = "rle"

    def can_encode(self, values: np.ndarray) -> bool:
        return values.dtype.kind == "i"

    def encode(self, values: np.ndarray) -> bytes:
        if not self.can_encode(values):
            raise EncodingError(f"rle codec cannot encode dtype {values.dtype}")
        run_values, run_lengths = runs_of(values)
        header = (
            pack_dtype(values.dtype)
            + struct.pack("<II", len(values), len(run_values))
        )
        return (
            header
            + np.ascontiguousarray(run_values).tobytes()
            + np.ascontiguousarray(run_lengths).tobytes()
        )

    def _parse(self, payload: bytes) -> Tuple[np.ndarray, np.ndarray, int]:
        dtype, offset = unpack_dtype(payload, 0)
        count, nruns = struct.unpack_from("<II", payload, offset)
        offset += 8
        values_end = offset + nruns * dtype.itemsize
        run_values = np.frombuffer(payload[offset:values_end], dtype=dtype,
                                   count=nruns)
        lengths_end = values_end + nruns * 4
        run_lengths = np.frombuffer(payload[values_end:lengths_end],
                                    dtype=np.uint32, count=nruns)
        if int(run_lengths.sum()) != count:
            raise EncodingError("rle payload corrupt: run lengths do not sum")
        return run_values, run_lengths, count

    def decode(self, payload: bytes) -> np.ndarray:
        run_values, run_lengths, _count = self._parse(payload)
        return np.repeat(run_values, run_lengths)

    def decode_runs(self, payload: bytes) -> Tuple[np.ndarray, np.ndarray]:
        """The runs themselves, for direct operation on compressed data."""
        run_values, run_lengths, _count = self._parse(payload)
        return run_values, run_lengths


RLE = register(RleCodec())

__all__ = ["RleCodec", "RLE", "runs_of"]
