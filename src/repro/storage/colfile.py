"""Column files: one column stored as compressed blocks on the disk.

C-Store's physical format, reduced to the essentials that matter for the
paper's experiments:

* values live in **position order** (the i-th value belongs to the i-th
  tuple — Section 6.3.1), so positions never need to be stored;
* each 32 KB page holds as many encoded values as fit.  Blocks are
  variable-length in positions: a plain int32 page holds ~8 K values, but
  an RLE page over a sorted column can cover millions of positions — this
  is precisely how the paper's orderdate column shrinks to ~64 KB and why
  flight 1 sees an order-of-magnitude compression win;
* no per-tuple headers — headers would live in their own column.

Reads go through the buffer pool and yield
:class:`~repro.storage.blocks.ArrayBlock` / ``RleBlock`` objects.  When a
block was stored RLE and the caller asks for direct operation, the runs
are returned unexpanded; otherwise decoding charges
``values_decompressed`` for every value expanded from a non-plain codec.
"""

from __future__ import annotations

import enum
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..errors import StorageError
from ..simio.buffer_pool import BufferPool
from ..simio.disk import PAGE_SIZE, SimulatedDisk
from ..synopsis import ColumnSynopsisBuilder
from .blocks import ArrayBlock, Block, RleBlock
from .column import Column, StringDictionary
from .encodings import choose_codec, decode_payload, decode_payload_runs
from .encodings.codec import Codec, CodecId
from .encodings.plain import PLAIN

#: Per-page overhead this module writes before the framed codec payload.
_PAGE_HEADER_BYTES = 8
#: Maximum framed payload per page.
_PAGE_CAPACITY = PAGE_SIZE - _PAGE_HEADER_BYTES


class CompressionLevel(enum.Enum):
    """How aggressively a column file compresses its blocks.

    * ``NONE`` — everything plain; string columns are expanded to their
      full CHAR width (Figure 8's "PJ, No C").
    * ``INT`` — string columns stay as int32 dictionary codes but no
      further compression is applied (Figure 8's "PJ, Int C").
    * ``MAX`` — per-block greedy codec selection over all codecs
      (the C-Store default; Figure 8's "PJ, Max C").
    """

    NONE = "none"
    INT = "int"
    MAX = "max"


class ColumnFile:
    """One column persisted as a sequence of encoded page-blocks."""

    def __init__(
        self,
        disk: SimulatedDisk,
        name: str,
        num_values: int,
        block_starts: np.ndarray,
        dtype: np.dtype,
        dictionary: Optional[StringDictionary],
        level: CompressionLevel,
    ) -> None:
        self.disk = disk
        self.name = name
        self.num_values = num_values
        self.block_starts = block_starts
        self.dtype = dtype
        self.dictionary = dictionary
        self.level = level

    # ------------------------------------------------------------------ #
    # creation
    # ------------------------------------------------------------------ #
    @classmethod
    def load(
        cls,
        disk: SimulatedDisk,
        name: str,
        column: Column,
        level: CompressionLevel = CompressionLevel.MAX,
    ) -> "ColumnFile":
        """Write ``column`` to a new file ``name`` at ``level``."""
        values, dtype, dictionary = cls._physical_values(column, level)
        disk.create(name)
        starts: List[int] = []
        pos = 0
        n = len(values)
        # reserve room for the largest codec framing header (16 bytes)
        max_plain = max(1, (_PAGE_CAPACITY - 16) // dtype.itemsize)
        synopsis = ColumnSynopsisBuilder()
        while pos < n:
            chunk, framed = cls._fill_page(values, pos, max_plain, level)
            starts.append(pos)
            count = len(chunk).to_bytes(_PAGE_HEADER_BYTES, "little")
            disk.append_page(name, count + framed)
            synopsis.add_block(chunk)
            pos += len(chunk)
        synopsis.write(disk, name)
        if n == 0:
            starts.append(0)
            framed = PLAIN.frame(values)
            disk.append_page(name, (0).to_bytes(_PAGE_HEADER_BYTES, "little")
                             + framed)
        return cls(disk, name, n, np.asarray(starts, dtype=np.int64), dtype,
                   dictionary, level)

    @staticmethod
    def _fill_page(
        values: np.ndarray, pos: int, max_plain: int, level: CompressionLevel
    ) -> Tuple[np.ndarray, bytes]:
        """Choose the largest chunk starting at ``pos`` whose encoding fits
        one page, and return (chunk, framed payload)."""
        n = len(values)
        size = min(max_plain, n - pos)
        chunk = values[pos:pos + size]
        codec = ColumnFile._codec_for(chunk, level)
        framed = codec.frame(chunk)
        if len(framed) > _PAGE_CAPACITY:
            raise StorageError(
                f"worst-case block of {len(framed)} bytes exceeds page capacity"
            )
        if level is not CompressionLevel.MAX:
            return chunk, framed
        # grow greedily while the encoding keeps fitting (RLE/dictionary
        # blocks can cover far more positions than the plain worst case)
        while pos + len(chunk) < n:
            grown = values[pos:pos + len(chunk) * 2]
            grown_codec = ColumnFile._codec_for(grown, level)
            grown_framed = grown_codec.frame(grown)
            if len(grown_framed) > _PAGE_CAPACITY:
                break
            chunk, framed = grown, grown_framed
        return chunk, framed

    @staticmethod
    def _codec_for(chunk: np.ndarray, level: CompressionLevel) -> Codec:
        if level is CompressionLevel.MAX and chunk.dtype.kind == "i":
            return choose_codec(chunk)
        return PLAIN

    @staticmethod
    def _physical_values(
        column: Column, level: CompressionLevel
    ) -> Tuple[np.ndarray, np.dtype, Optional[StringDictionary]]:
        """The array actually stored, its dtype, and the dictionary kept
        beside it (None when values are self-describing)."""
        if column.dictionary is None:
            return column.data, column.ctype.numpy_dtype, None
        if level is CompressionLevel.NONE:
            width = column.ctype.width
            decoded = np.asarray(column.dictionary.strings, dtype=f"S{width}")
            return decoded[column.data], np.dtype(f"S{width}"), None
        return column.data, np.dtype(np.int32), column.dictionary

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    @property
    def num_blocks(self) -> int:
        return len(self.block_starts)

    @property
    def size_bytes(self) -> int:
        """Occupied whole-page bytes."""
        return self.disk.file(self.name).size_bytes

    @property
    def compressed_payload_bytes(self) -> int:
        """Actual encoded bytes (excluding page slack); the honest number
        for storage-size comparisons like Section 6.2's."""
        return sum(len(p) for p in self.disk.file(self.name).pages)

    def block_for_position(self, position: int) -> int:
        """Block number whose range contains ``position``."""
        if not 0 <= position < max(self.num_values, 1):
            raise StorageError(
                f"position {position} out of range for {self.name!r}"
            )
        return int(np.searchsorted(self.block_starts, position, side="right") - 1)

    def blocks_for_positions(self, positions: np.ndarray) -> np.ndarray:
        """Block number for each position (positions need not be sorted)."""
        return np.searchsorted(self.block_starts, positions, side="right") - 1

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def _parse_page(self, payload: bytes, block_no: int, direct: bool,
                    pool: BufferPool) -> Block:
        count = int.from_bytes(payload[:_PAGE_HEADER_BYTES], "little")
        framed = payload[_PAGE_HEADER_BYTES:]
        start = int(self.block_starts[block_no])
        if direct and framed and framed[0] == int(CodecId.RLE):
            run_values, run_lengths = decode_payload_runs(framed)
            return RleBlock(start, run_values, run_lengths)
        data = decode_payload(framed)
        if framed and framed[0] != int(CodecId.PLAIN):
            pool.stats.values_decompressed += len(data)
        if len(data) != count:
            raise StorageError(
                f"block {block_no} of {self.name!r} decoded {len(data)} values,"
                f" expected {count}"
            )
        return ArrayBlock(start, data)

    def iter_blocks(
        self,
        pool: BufferPool,
        direct: bool = False,
        first_block: int = 0,
        last_block: Optional[int] = None,
    ) -> Iterator[Block]:
        """Sequentially read blocks ``first_block..last_block`` inclusive."""
        stop = self.num_blocks if last_block is None else last_block + 1
        block_no = first_block
        for payload in pool.scan_pages(self.name, first_block, stop):
            yield self._parse_page(payload, block_no, direct, pool)
            block_no += 1

    def read_block(self, pool: BufferPool, block_no: int,
                   direct: bool = False) -> Block:
        """Random access to one block."""
        payload = pool.read_page(self.name, block_no)
        return self._parse_page(payload, block_no, direct, pool)

    def read_all(self, pool: BufferPool) -> np.ndarray:
        """Decode the whole column into one array (load/verify paths)."""
        parts: List[np.ndarray] = []
        for block in self.iter_blocks(pool):
            parts.append(block.to_array() if isinstance(block, RleBlock)
                         else block.data)
        if not parts:
            return np.zeros(0, dtype=self.dtype)
        return np.concatenate(parts)

    def fetch(self, pool: BufferPool, positions: np.ndarray) -> np.ndarray:
        """Values at ``positions`` (sorted ascending), reading only the
        blocks that contain them — the late-materialization fetch.

        Position-ordered block skipping is what makes selective plans
        cheap: a query that survives 0.01% of positions touches a handful
        of pages instead of the whole column.
        """
        if len(positions) == 0:
            return np.zeros(0, dtype=self.dtype)
        blocks = self.blocks_for_positions(positions)
        out: List[np.ndarray] = []
        for block_no in np.unique(blocks):
            block = self.read_block(pool, int(block_no))
            data = block.data
            local = positions[blocks == block_no] - block.start
            out.append(data[local])
        return np.concatenate(out)


__all__ = ["ColumnFile", "CompressionLevel"]
