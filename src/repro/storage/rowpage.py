"""Row-store page format: fixed-width tuples with per-tuple headers.

System X (like any commercial row store) stores each tuple with a header —
the paper measures "about 8 bytes of overhead per row" (Section 6.2) — and
stores CHAR(n) fields expanded to their full width.  This module lays
tables out exactly that way:

* each record is ``8-byte header | field bytes...`` at the schema's
  declared widths (string dictionary codes are expanded back to bytes);
* records are packed densely into 32 KB pages, ``rows_per_page`` per page;
* pages deserialize back to numpy structured arrays, so scans recover the
  real stored values.

The header is not decorative: it is real bytes on the simulated disk, so
the tuple-overhead penalty of the vertical-partitioning design (Figure 6)
emerges from honest byte counts.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple, Union

import numpy as np

from ..errors import PageFormatError
from ..simio.disk import PAGE_SIZE
from ..types import ROW_TUPLE_HEADER_BYTES, Schema, TypeKind
from .table import Table

#: Name of the synthetic header field inside the structured dtype.
HEADER_FIELD = "_header"


class RowFormat:
    """The physical record layout for one schema.

    Exposes the numpy structured dtype used to (de)serialize pages and the
    derived geometry (record width, rows per page).
    """

    def __init__(self, schema: Schema, header_bytes: int = ROW_TUPLE_HEADER_BYTES
                 ) -> None:
        if header_bytes not in (0, 4, 8):
            raise PageFormatError(f"unsupported header size {header_bytes}")
        self.schema = schema
        self.header_bytes = header_bytes
        parts: List[Tuple[str, str]] = []
        if header_bytes:
            parts.append((HEADER_FIELD, f"V{header_bytes}"))
        for field in schema:
            if field.ctype.kind is TypeKind.INT32:
                parts.append((field.name, "<i4"))
            elif field.ctype.kind is TypeKind.INT64:
                parts.append((field.name, "<i8"))
            else:
                parts.append((field.name, f"S{field.ctype.width}"))
        self.dtype = np.dtype(parts)
        self.record_width = self.dtype.itemsize
        self.rows_per_page = PAGE_SIZE // self.record_width
        if self.rows_per_page == 0:
            raise PageFormatError(
                f"record of {self.record_width} bytes does not fit a page"
            )

    def build_records(self, table: Table) -> np.ndarray:
        """Serialize a whole table into one structured array (load path)."""
        n = table.num_rows
        records = np.zeros(n, dtype=self.dtype)
        for field in self.schema:
            col = table.column(field.name)
            if col.dictionary is not None:
                decoded = np.asarray(col.dictionary.strings, dtype=f"S{field.ctype.width}")
                records[field.name] = decoded[col.data]
            else:
                records[field.name] = col.data
        return records

    def pages_of(self, records: np.ndarray) -> Iterator[bytes]:
        """Split a record array into page payloads."""
        for start in range(0, len(records), self.rows_per_page):
            chunk = records[start:start + self.rows_per_page]
            yield np.ascontiguousarray(chunk).tobytes()

    def parse_page(self, payload: bytes) -> np.ndarray:
        """Deserialize a page payload back into a structured array."""
        if len(payload) % self.record_width != 0:
            raise PageFormatError(
                f"page of {len(payload)} bytes is not a multiple of the "
                f"record width {self.record_width}"
            )
        return np.frombuffer(payload, dtype=self.dtype)

    def num_pages_for(self, num_rows: int) -> int:
        """Pages needed for ``num_rows`` records."""
        return -(-num_rows // self.rows_per_page) if num_rows else 0

    def stored_bytes(self, num_rows: int) -> int:
        """Whole-page bytes occupied by ``num_rows`` records."""
        return self.num_pages_for(num_rows) * PAGE_SIZE


def decode_field(value: Union[int, bytes, np.generic]) -> Union[int, str]:
    """Convert one raw structured-array field to its logical value."""
    if isinstance(value, bytes):
        return value.decode("ascii")
    return int(value)


__all__ = ["RowFormat", "HEADER_FIELD", "decode_field"]
