"""An interactive SQL shell over both engines.

Run::

    python -m repro.shell [--sf 0.02]

Type SQL in the SSB dialect (or an SSB query name like ``Q3.1``) and the
shell executes it on the selected engine(s), printing results and the
simulated cost on the paper's 2008 hardware.  Backslash commands switch
engines, designs, and configurations, and ``\\explain`` shows plans.

The :class:`Shell` class separates command handling from terminal I/O so
the whole surface is unit-testable.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Callable, List, Optional

from .colstore.engine import CStore
from .core.config import CONFIG_LADDER, ExecutionConfig
from .errors import ReproError
from .plan.logical import StarQuery
from .reference import execute as reference_execute
from .rowstore.designs import DesignKind
from .rowstore.engine import SystemX
from .serve import QueryService, ServiceConfig
from .sql import parse_query
from .ssb.generator import SsbData, generate
from .ssb.queries import ALL_QUERIES, query_by_name
from .ssb.sql_text import SQL_TEXT

HELP = """\
Enter SQL (SSB dialect — SELECT, INSERT, or DELETE), an SSB query name
(Q1.1 .. Q4.3), or a command:
  \\help                this help
  \\queries             list the 13 SSB queries
  \\sql Qx.y            show an SSB query's SQL text
  \\engine cs|rs|both   which engine(s) run queries (default: both)
  \\design T|T(B)|MV|VP|AI   row-store physical design (default: T)
  \\config tICL..Ticl   column-store configuration (default: tICL)
  \\explain <query>     show both engines' plans for SQL or Qx.y
  \\move                drain pending writes into the base pages
  \\recover             cold-start crash recovery: replay the redo
                       journal on every engine (see docs/writes.md)
  \\verify on|off       cross-check results against the oracle
  \\cache on|off|clear  semantic result cache (default: off)
  \\serve stats         service, cache, and resilience counters
                       (per-scope breaker states, sheds, degraded hits)
  \\quit                exit"""

_DESIGNS = {d.value: d for d in DesignKind}


class Shell:
    """Shell state + command dispatch (I/O-free; returns strings)."""

    def __init__(self, scale_factor: float = 0.02,
                 data: Optional[SsbData] = None) -> None:
        self.data = data if data is not None else generate(scale_factor)
        self.cstore = CStore(self.data)
        # writes=True arms the row store's snapshot-merge read path for
        # shell DML; with no delta pending it is byte-identical to a
        # read-only engine (test-asserted), so read workloads see nothing
        self.system_x = SystemX(self.data, designs=[DesignKind.TRADITIONAL],
                                writes=True)
        self.engine_mode = "both"
        self.design = DesignKind.TRADITIONAL
        self.config = ExecutionConfig.baseline()
        self.verify = True
        self.done = False
        # every query goes through one long-lived service; the semantic
        # cache starts OFF so repeated queries re-read storage (and
        # re-trip injected faults) unless the user opts in with \cache on
        self.service = QueryService(
            cstore=self.cstore, system_x=self.system_x,
            config=ServiceConfig(max_in_flight=2))
        self._cs_session = self.service.session(
            name="shell-cs", engine="cs", cached=False)
        self._rs_session = self.service.session(
            name="shell-rs", engine="rs", cached=False)

    # ------------------------------------------------------------------ #
    def handle(self, line: str) -> str:
        """Process one input line and return the text to display."""
        line = line.strip()
        if not line:
            return ""
        try:
            if line.startswith("\\"):
                return self._command(line)
            head = line.split(None, 1)[0].upper()
            if head in ("INSERT", "DELETE"):
                return self._run_dml(line, head)
            return self._run(self._to_query(line))
        except ReproError as error:
            # one structured line — class + first message line — instead
            # of a raw traceback; every engine error is a ReproError
            message = str(error).splitlines()[0] if str(error) else ""
            return f"error: {type(error).__name__}: {message}"

    # ------------------------------------------------------------------ #
    def _to_query(self, text: str) -> StarQuery:
        name = text.rstrip(";").strip()
        if name.upper().startswith("Q") and name.upper() in SQL_TEXT:
            return query_by_name(name.upper())
        return parse_query(text, name="adhoc")

    def _command(self, line: str) -> str:
        parts = line.split(None, 1)
        command = parts[0].lower()
        argument = parts[1].strip() if len(parts) > 1 else ""
        if command in ("\\q", "\\quit", "\\exit"):
            self.done = True
            return "bye"
        if command == "\\help":
            return HELP
        if command == "\\queries":
            return "\n".join(
                f"  {q.name}: {len(q.predicates)} predicate(s), "
                f"{len(q.group_by)} group column(s)"
                for q in ALL_QUERIES)
        if command == "\\sql":
            name = argument.upper()
            if name not in SQL_TEXT:
                return f"error: unknown SSB query {argument!r}"
            return SQL_TEXT[name].strip()
        if command == "\\engine":
            if argument not in ("cs", "rs", "both"):
                return "error: \\engine takes cs, rs, or both"
            self.engine_mode = argument
            return f"engine set to {argument}"
        if command == "\\design":
            design = _DESIGNS.get(argument.upper().replace("(B)", "(B)"))
            if design is None:
                design = _DESIGNS.get(argument)
            if design is None:
                return ("error: \\design takes one of "
                        + ", ".join(sorted(_DESIGNS)))
            self.system_x.add_design(design)
            self.design = design
            return f"row-store design set to {design.value}"
        if command == "\\config":
            try:
                self.config = ExecutionConfig.from_label(argument)
            except ReproError:
                return ("error: \\config takes a four-letter code like "
                        + ", ".join(c.label for c in CONFIG_LADDER))
            return f"column-store config set to {self.config.label}"
        if command == "\\verify":
            if argument not in ("on", "off"):
                return "error: \\verify takes on or off"
            self.verify = argument == "on"
            return f"verification {argument}"
        if command == "\\explain":
            query = self._to_query(argument)
            return (self.cstore.explain(
                        query, replace(self.config, writes=True)) + "\n\n"
                    + self.system_x.explain(query, self.design))
        if command == "\\cache":
            if argument == "clear":
                self.service.invalidate()
                return "cache cleared"
            if argument not in ("on", "off"):
                return "error: \\cache takes on, off, or clear"
            enabled = argument == "on"
            self._cs_session.cached = enabled
            self._rs_session.cached = enabled
            return f"cache {argument}"
        if command == "\\serve":
            if argument != "stats":
                return "error: \\serve takes stats"
            return self._serve_stats()
        if command == "\\move":
            moved = self.service.move()
            return (f"tuple mover drained {moved} row(s) into the base "
                    f"pages" if moved else "nothing pending; no-op")
        if command == "\\recover":
            reports = self.service.recover()
            return "\n".join(f"  {name}: {report.render()}"
                             for name, report in sorted(reports.items()))
        return f"error: unknown command {command!r} (try \\help)"

    def _serve_stats(self) -> str:
        stats = self.service.serve_stats()
        lines: List[str] = []
        for section in ("service", "cache", "admission", "resilience"):
            body = ", ".join(f"{key}={value}"
                             for key, value in sorted(
                                 stats[section].items())
                             if not isinstance(value, dict))
            lines.append(f"{section}: {body}")
        breakers = stats["resilience"]["breakers"]
        body = ", ".join(f"{scope}={state}"
                         for scope, state in sorted(breakers.items())) \
            or "(no scopes touched)"
        lines.append(f"breakers: {body}")
        for name, session in sorted(stats["sessions"].items()):
            body = ", ".join(f"{key}={value}"
                             for key, value in sorted(session.items()))
            lines.append(f"session {name}: {body}")
        return "\n".join(lines)

    def _run_dml(self, sql: str, verb: str) -> str:
        affected = self.service.execute_sql(sql)
        pending = self.cstore.pending_writes()
        past = "inserted" if verb == "INSERT" else "deleted"
        return (f"{affected} row(s) {past}; {pending} row(s) pending in "
                f"the write store (\\move drains them)")

    def _run(self, query: StarQuery) -> str:
        lines: List[str] = []
        # the oracle replays against the *effective* tables, so verified
        # reads stay honest across shell DML and tuple moves
        oracle = (reference_execute(self.cstore.snapshot_tables(), query)
                  if self.verify else None)
        shown = False
        if self.engine_mode in ("cs", "both"):
            # writes=True arms the snapshot-merge path; with no pending
            # delta the execution is byte-identical to the plain config
            self._cs_session.config = replace(self.config, writes=True)
            run = self._cs_session.execute(query)
            if oracle is not None and not run.result.same_rows(oracle):
                return "INTERNAL ERROR: column store deviates from oracle"
            lines.append(run.result.pretty(limit=15))
            shown = True
            lines.append(
                f"column store [{self.config.label}]: "
                f"{run.seconds * 1000:8.2f} ms simulated "
                f"({len(run.result)} rows)")
        if self.engine_mode in ("rs", "both"):
            self._rs_session.design = self.design
            run = self._rs_session.execute(query)
            if oracle is not None and not run.result.same_rows(oracle):
                return "INTERNAL ERROR: row store deviates from oracle"
            if not shown:
                lines.append(run.result.pretty(limit=15))
            lines.append(
                f"row store [{self.design.value}]:    "
                f"{run.seconds * 1000:8.2f} ms simulated "
                f"({len(run.result)} rows)")
        return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.shell")
    parser.add_argument("--sf", type=float, default=0.02,
                        help="scale factor (default 0.02)")
    args = parser.parse_args(argv)
    print(f"repro shell — SSB at scale factor {args.sf}; \\help for help")
    print("loading engines ...")
    shell = Shell(scale_factor=args.sf)
    buffer: List[str] = []
    while not shell.done:
        try:
            prompt = "repro> " if not buffer else "   ... "
            line = input(prompt)
        except EOFError:
            print()
            break
        # SQL may span lines; commands and query names never do
        if buffer or (line.strip() and not line.startswith("\\")
                      and not line.strip().rstrip(";").upper() in SQL_TEXT
                      and not line.strip().endswith(";")):
            buffer.append(line)
            if not line.strip().endswith(";"):
                continue
            line = "\n".join(buffer)
            buffer = []
        output = shell.handle(line)
        if output:
            print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
