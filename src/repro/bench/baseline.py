"""Committed baseline artifacts and the regression check against them.

A baseline is one figure's :class:`~repro.bench.harness.RunGrid` frozen
to JSON — **simulated** seconds, so the artifact is machine-independent
and byte-stable across hosts (unlike wall clock).  The workflow:

    python -m repro.bench figure7 --write-baseline baseline.json
    # ... later, after changes ...
    python -m repro.bench --check-baseline baseline.json

``check`` re-runs the figure at the artifact's scale factor and worker
count and fails (exit 1) if any cell regresses by more than the
tolerance (default 2 %).  Coverage mismatches — a series or query in one
side but not the other — are a typed :class:`BenchmarkError`, never a
silent skip.
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..errors import BenchmarkError
from .harness import RunGrid

#: Schema tag written into every baseline artifact.
BASELINE_SCHEMA = "repro-baseline-v1"

#: Allowed relative growth per cell before the check fails.
DEFAULT_TOLERANCE = 0.02


def baseline_record(grid: RunGrid, *, figure: str, scale_factor: float,
                    workers: int, zone_maps: bool = False,
                    shards: int = 1, writes: bool = False) -> Dict:
    """The grid as a JSON-ready dict (stable key order)."""
    grid.validate_aligned()
    return {
        "schema": BASELINE_SCHEMA,
        "figure": figure,
        "scale_factor": scale_factor,
        "workers": workers,
        "zone_maps": zone_maps,
        "shards": shards,
        "writes": writes,
        "series": {
            label: {q: seconds for q, seconds in sorted(values.items())}
            for label, values in grid.series.items()
        },
    }


def write_baseline(path: str, grid: RunGrid, *, figure: str,
                   scale_factor: float, workers: int,
                   zone_maps: bool = False, shards: int = 1,
                   writes: bool = False) -> None:
    record = baseline_record(grid, figure=figure,
                             scale_factor=scale_factor, workers=workers,
                             zone_maps=zone_maps, shards=shards,
                             writes=writes)
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")


def load_baseline(path: str) -> Dict:
    try:
        with open(path) as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise BenchmarkError(f"cannot read baseline {path!r}: {error}")
    if not isinstance(record, dict) or \
            record.get("schema") != BASELINE_SCHEMA:
        raise BenchmarkError(
            f"{path!r} is not a {BASELINE_SCHEMA} artifact "
            f"(schema tag: {record.get('schema') if isinstance(record, dict) else None!r})")
    for key in ("figure", "scale_factor", "workers", "series"):
        if key not in record:
            raise BenchmarkError(f"baseline {path!r} is missing {key!r}")
    # "zone_maps" is optional — pre-synopsis artifacts omit it and are
    # interpreted as zone-maps-off (which is what they measured).
    # "shards" likewise: pre-sharding artifacts read as shards=1, and
    # pre-write-store artifacts as writes-off (read-only, byte-identical
    # to a writes-enabled engine with no pending delta).
    return record


def check_against_baseline(grid: RunGrid, baseline: Dict,
                           tolerance: float = DEFAULT_TOLERANCE
                           ) -> List[str]:
    """Compare a fresh grid to a loaded baseline.

    Returns one message per regressed cell (empty list = pass).  A
    coverage mismatch raises :class:`BenchmarkError` — an absent
    measurement must never read as an improvement.
    """
    grid.validate_aligned()
    base_series = baseline["series"]
    if set(grid.series) != set(base_series):
        missing = sorted(set(base_series) - set(grid.series))
        extra = sorted(set(grid.series) - set(base_series))
        raise BenchmarkError(
            f"series mismatch vs baseline: missing {missing}, "
            f"extra {extra}")
    regressions: List[str] = []
    for label, base_values in base_series.items():
        fresh_values = grid.series[label]
        if set(fresh_values) != set(base_values):
            missing = sorted(set(base_values) - set(fresh_values))
            extra = sorted(set(fresh_values) - set(base_values))
            raise BenchmarkError(
                f"series {label!r}: query mismatch vs baseline "
                f"(missing {missing}, extra {extra})")
        for query, old in sorted(base_values.items()):
            new = fresh_values[query]
            if new > old * (1.0 + tolerance) + 1e-12:
                grew = (new - old) / old if old else float("inf")
                regressions.append(
                    f"{label}/{query}: {new:.6f}s vs baseline "
                    f"{old:.6f}s (+{grew:.1%}, tolerance "
                    f"{tolerance:.0%})")
    return regressions


__all__ = [
    "BASELINE_SCHEMA",
    "DEFAULT_TOLERANCE",
    "baseline_record",
    "write_baseline",
    "load_baseline",
    "check_against_baseline",
]
