"""Markdown report generation: a machine-written EXPERIMENTS section.

``python -m repro.bench report --out results.md`` runs every figure and
the storage report at the active scale factor and writes a self-contained
markdown document with measured tables, paper numbers, and shape ratios —
so a rerun at any scale factor documents itself.
"""

from __future__ import annotations

import io
from typing import Dict, List

from . import figures
from .harness import Harness, RunGrid
from .paper_data import (
    PAPER_FIGURE5,
    PAPER_FIGURE6,
    PAPER_FIGURE7,
    PAPER_FIGURE8,
    QUERY_ORDER,
    average,
)
from .report import normalized_averages


def _grid_markdown(grid: RunGrid, paper: Dict[str, Dict[str, float]]) -> str:
    out = io.StringIO()
    out.write(f"### {grid.title}\n\n")
    header = "| series | " + " | ".join(QUERY_ORDER) + " | AVG |\n"
    out.write(header)
    out.write("|" + "---|" * (len(QUERY_ORDER) + 2) + "\n")
    for label, series in grid.series.items():
        cells = [f"{series[q]:.4f}" for q in QUERY_ORDER]
        avg = sum(series.values()) / len(series)
        out.write(f"| {label} | " + " | ".join(cells) + f" | {avg:.4f} |\n")
    out.write("\nShape comparison (each series / the figure's baseline):\n\n")
    ours = normalized_averages(grid.series)
    theirs = normalized_averages(paper)
    out.write("| series | measured | paper |\n|---|---|---|\n")
    for label in grid.series:
        paper_text = f"{theirs[label]:.2f}" if label in theirs else "-"
        out.write(f"| {label} | {ours[label]:.2f} | {paper_text} |\n")
    out.write("\n")
    return out.getvalue()


def _storage_markdown(report: Dict[str, float]) -> str:
    out = io.StringIO()
    out.write("### Storage report\n\n| metric | value |\n|---|---|\n")
    for key, value in report.items():
        out.write(f"| {key} | {value:.2f} |\n")
    out.write("\n")
    return out.getvalue()


def write_report(harness: Harness) -> str:
    """Run all experiments and return the markdown document."""
    out = io.StringIO()
    out.write("# Measured results\n\n")
    out.write(
        f"Scale factor **{harness.scale_factor}** "
        f"({int(6_000_000 * harness.scale_factor):,} fact rows), seed "
        f"{harness.seed}.  Values are simulated seconds on the paper's "
        f"2008 hardware; paper columns are its published SF-10 "
        f"wall-clock numbers, compared via per-figure baselines.\n\n")
    for driver, paper in (
        (figures.figure5, PAPER_FIGURE5),
        (figures.figure6, PAPER_FIGURE6),
        (figures.figure7, PAPER_FIGURE7),
        (figures.figure8, PAPER_FIGURE8),
    ):
        grid = driver(harness)
        out.write(_grid_markdown(grid, paper))
    out.write(_storage_markdown(figures.storage_report(harness)))
    return out.getvalue()


__all__ = ["write_report"]
