"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.bench all
    python -m repro.bench figure7 --sf 0.1
    python -m repro.bench storage
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from . import figures
from .harness import Harness
from .paper_data import (
    PAPER_FIGURE5,
    PAPER_FIGURE6,
    PAPER_FIGURE7,
    PAPER_FIGURE8,
)
from .report import (
    render_bars,
    render_comparison,
    render_cost_breakdown,
    render_grid,
    render_storage,
)

_FIGURES: Dict[str, tuple] = {
    "figure5": (figures.figure5, PAPER_FIGURE5),
    "figure6": (figures.figure6, PAPER_FIGURE6),
    "figure7": (figures.figure7, PAPER_FIGURE7),
    "figure8": (figures.figure8, PAPER_FIGURE8),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the tables/figures of Abadi et al., "
                    "SIGMOD 2008.",
    )
    parser.add_argument(
        "target",
        choices=sorted(_FIGURES) + ["storage", "all", "report",
                                    "breakdown"],
        help="which experiment to run ('report' writes markdown; "
             "'breakdown' prices one query's ledger)",
    )
    parser.add_argument("--query", default="Q2.1",
                        help="query for 'breakdown' (default Q2.1)")
    parser.add_argument("--config", default="tICL",
                        help="column-store config for 'breakdown'")
    parser.add_argument("--design", default="T",
                        help="row-store design for 'breakdown'")
    parser.add_argument("--sf", type=float, default=None,
                        help="scale factor (default: REPRO_SF env or 0.05)")
    parser.add_argument("--verify", action="store_true",
                        help="check every result against the oracle")
    parser.add_argument("--workers", type=int, default=1,
                        help="morsel workers for column-store runs "
                             "(default 1 = serial; simulated seconds are "
                             "identical either way, only wall-clock moves)")
    parser.add_argument("--out", default=None,
                        help="output path for the 'report' target "
                             "(default: stdout)")
    parser.add_argument("--fault-profile", default=None,
                        help="inject faults from this seeded profile "
                             "(transient|bitflip|torn|mixed); queries "
                             "retry, recover, or fail with typed errors")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for --fault-profile (default 0)")
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")

    harness = Harness(scale_factor=args.sf,
                      verify_against_reference=args.verify,
                      workers=args.workers,
                      fault_profile=args.fault_profile,
                      fault_seed=args.fault_seed)
    print(f"scale factor {harness.scale_factor} "
          f"({int(6_000_000 * harness.scale_factor)} fact rows), "
          f"seed {harness.seed}")

    if args.target == "breakdown":
        from ..core.config import ExecutionConfig
        from ..rowstore.designs import DesignKind
        from ..ssb import query_by_name

        query = query_by_name(args.query)
        config = ExecutionConfig.from_label(args.config)
        design = next(d for d in DesignKind if d.value == args.design)
        col_run = harness.cstore().execute(query, config)
        row_run = harness.system_x([design]).execute(query, design)
        print()
        print(render_cost_breakdown(
            col_run.stats, harness.cstore().cost_model,
            f"{args.query} on the column store [{config.label}]"))
        print()
        print(render_cost_breakdown(
            row_run.stats, harness.cstore().cost_model,
            f"{args.query} on the row store [{design.value}]"))
        return 0

    if args.target == "report":
        from .markdown import write_report

        document = write_report(harness)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(document)
            print(f"wrote {args.out}")
        else:
            print(document)
        return 0

    targets = sorted(_FIGURES) + ["storage"] if args.target == "all" \
        else [args.target]
    for target in targets:
        started = time.time()
        if target == "storage":
            print()
            print(render_storage(figures.storage_report(harness)))
        else:
            driver, paper = _FIGURES[target]
            grid = driver(harness)
            print()
            print(render_grid(grid))
            print()
            print(render_bars(grid))
            print()
            print(render_comparison(grid, paper))
        print(f"\n[{target} regenerated in {time.time() - started:.1f}s "
              f"wall clock]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
