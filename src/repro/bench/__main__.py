"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.bench all
    python -m repro.bench figure7 --sf 0.1
    python -m repro.bench storage
    python -m repro.bench figure7 --trace-json traces.jsonl
    python -m repro.bench figure7 --write-baseline baseline.json
    python -m repro.bench --check-baseline baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict

from . import figures
from .harness import Harness
from .paper_data import (
    PAPER_FIGURE5,
    PAPER_FIGURE6,
    PAPER_FIGURE7,
    PAPER_FIGURE8,
)
from .report import (
    render_bars,
    render_comparison,
    render_cost_breakdown,
    render_grid,
    render_storage,
)

_FIGURES: Dict[str, tuple] = {
    "figure5": (figures.figure5, PAPER_FIGURE5),
    "figure6": (figures.figure6, PAPER_FIGURE6),
    "figure7": (figures.figure7, PAPER_FIGURE7),
    "figure8": (figures.figure8, PAPER_FIGURE8),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the tables/figures of Abadi et al., "
                    "SIGMOD 2008.",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        choices=sorted(_FIGURES) + ["storage", "all", "report",
                                    "breakdown"],
        help="which experiment to run ('report' writes markdown; "
             "'breakdown' prices one query's ledger); optional with "
             "--check-baseline, which reads the figure from the artifact",
    )
    parser.add_argument("--query", default="Q2.1",
                        help="query for 'breakdown' (default Q2.1)")
    parser.add_argument("--config", default="tICL",
                        help="column-store config for 'breakdown'")
    parser.add_argument("--design", default="T",
                        help="row-store design for 'breakdown'")
    parser.add_argument("--sf", type=float, default=None,
                        help="scale factor (default: REPRO_SF env or 0.05)")
    parser.add_argument("--verify", action="store_true",
                        help="check every result against the oracle")
    parser.add_argument("--workers", type=int, default=1,
                        help="morsel workers for column-store runs "
                             "(default 1 = serial; simulated seconds are "
                             "identical either way, only wall-clock moves)")
    parser.add_argument("--zone-maps", default=None, choices=["on", "off"],
                        help="consult per-block min/max synopses before "
                             "scans on both engines (default off; results "
                             "never change, only pages read — see "
                             "docs/synopses.md)")
    parser.add_argument("--shards", type=int, default=1,
                        help="scatter-gather shard count on both engines "
                             "(default 1 = single stack; results never "
                             "change, only how work is partitioned and "
                             "eliminated — see docs/sharding.md)")
    parser.add_argument("--writes", default=None, choices=["on", "off"],
                        help="build write-capable engines with MVCC "
                             "snapshot reads opted in (default off; with "
                             "no pending delta the ledgers are "
                             "byte-identical — see docs/writes.md)")
    parser.add_argument("--out", default=None,
                        help="output path for the 'report' target "
                             "(default: stdout)")
    parser.add_argument("--fault-profile", default=None,
                        help="inject faults from this seeded profile "
                             "(transient|bitflip|torn|mixed|persistent, "
                             "or 'list' to print them all); queries "
                             "retry, recover, or fail with typed errors")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for --fault-profile (default 0)")
    parser.add_argument("--trace-json", default=None, metavar="PATH",
                        help="write one JSON-lines trace record (per-phase "
                             "span tree, simulated seconds) per measured "
                             "query; schema in docs/observability.md")
    parser.add_argument("--serve", action="store_true",
                        help="run the closed-loop serving benchmark "
                             "instead of a figure: N clients replay "
                             "shuffled SSBM flights through the query "
                             "service and its semantic cache")
    parser.add_argument("--clients", type=int, default=8,
                        help="closed-loop clients for --serve (default 8)")
    parser.add_argument("--serve-engine", default="cs",
                        choices=["cs", "rs", "both"],
                        help="engine(s) the serving clients target "
                             "(default cs; 'both' alternates per client)")
    parser.add_argument("--serve-flights", type=int, default=2,
                        help="SSBM replays per client for --serve "
                             "(default 2 — the second flight exercises "
                             "the cache)")
    parser.add_argument("--serve-concurrency", type=int, default=8,
                        help="service admission limit for --serve "
                             "(default 8)")
    parser.add_argument("--no-serve-cache", action="store_true",
                        help="disable the semantic cache for --serve")
    parser.add_argument("--write-baseline", default=None, metavar="PATH",
                        help="after a single-figure run, freeze the grid "
                             "as a repro-baseline-v1 artifact")
    parser.add_argument("--check-baseline", default=None, metavar="PATH",
                        help="re-run the artifact's figure at its scale "
                             "factor/workers and exit 1 if any query "
                             "regresses by more than 2%% simulated seconds")
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")

    # informational exits: print to stdout, return 0 — scripts pipe these
    if args.fault_profile == "list":
        return _print_fault_profiles()

    if args.check_baseline:
        return _run_check_baseline(parser, args)
    if args.serve:
        return _run_serve(parser, args)
    if args.target is None:
        parser.error("a target is required unless --check-baseline "
                     "or --serve is given")
    if args.write_baseline and args.target not in _FIGURES:
        parser.error("--write-baseline needs a single figure target, "
                     f"got {args.target!r}")

    harness = Harness(scale_factor=args.sf,
                      verify_against_reference=args.verify,
                      workers=args.workers,
                      fault_profile=args.fault_profile,
                      fault_seed=args.fault_seed,
                      zone_maps=args.zone_maps == "on",
                      shards=args.shards,
                      writes=args.writes == "on")
    print(f"scale factor {harness.scale_factor} "
          f"({int(6_000_000 * harness.scale_factor)} fact rows), "
          f"seed {harness.seed}"
          + (", zone maps on" if harness.zone_maps else "")
          + (f", {harness.shards} shards" if harness.shards > 1 else "")
          + (", writes on" if harness.writes else ""))

    if args.target == "breakdown":
        from ..core.config import ExecutionConfig
        from ..rowstore.designs import DesignKind
        from ..ssb import query_by_name

        query = query_by_name(args.query)
        config = ExecutionConfig.from_label(args.config)
        if harness.zone_maps:
            from dataclasses import replace

            config = replace(config, zone_maps=True)
        design = next(d for d in DesignKind if d.value == args.design)
        col_run = harness.cstore().execute(query, config)
        row_run = harness.system_x([design]).execute(query, design)
        print()
        print(render_cost_breakdown(
            col_run.stats, harness.cstore().cost_model,
            f"{args.query} on the column store [{config.label}]"))
        print()
        print(render_cost_breakdown(
            row_run.stats, harness.cstore().cost_model,
            f"{args.query} on the row store [{design.value}]"))
        return 0

    if args.target == "report":
        from .markdown import write_report

        document = write_report(harness)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(document)
            print(f"wrote {args.out}")
        else:
            print(document)
        return 0

    targets = sorted(_FIGURES) + ["storage"] if args.target == "all" \
        else [args.target]
    trace_file = open(args.trace_json, "w") if args.trace_json else None
    try:
        if trace_file is not None:
            harness.trace_sink = lambda record: trace_file.write(
                json.dumps(record) + "\n")
        for target in targets:
            started = time.time()
            if target == "storage":
                print()
                print(render_storage(figures.storage_report(harness)))
            else:
                driver, paper = _FIGURES[target]
                harness.trace_figure = target
                grid = driver(harness)
                print()
                print(render_grid(grid))
                print()
                print(render_bars(grid))
                print()
                print(render_comparison(grid, paper))
                if args.write_baseline and target == args.target:
                    from .baseline import write_baseline

                    write_baseline(args.write_baseline, grid,
                                   figure=target,
                                   scale_factor=harness.scale_factor,
                                   workers=harness.workers,
                                   zone_maps=harness.zone_maps,
                                   shards=harness.shards,
                                   writes=harness.writes)
                    print(f"\nwrote baseline {args.write_baseline}")
            print(f"\n[{target} regenerated in "
                  f"{time.time() - started:.1f}s wall clock]")
    finally:
        if trace_file is not None:
            trace_file.close()
            print(f"wrote traces to {args.trace_json}")
    return 0


def _print_fault_profiles() -> int:
    """``--fault-profile list``: an informational exit — stdout, code 0."""
    from ..simio.faults import PROFILES, PROFILE_NOTES

    for name in sorted(PROFILES):
        print(f"{name:12s} {PROFILE_NOTES.get(name, '')}")
    return 0


def _run_serve(parser: argparse.ArgumentParser, args) -> int:
    from .serve_bench import render_serve, run_serve_bench, \
        write_serve_artifact

    if args.target is not None:
        parser.error(f"--serve takes no figure target, got {args.target!r}")
    harness = Harness(scale_factor=args.sf,
                      fault_profile=args.fault_profile,
                      fault_seed=args.fault_seed,
                      zone_maps=args.zone_maps == "on",
                      shards=args.shards,
                      writes=args.writes == "on")
    print(f"scale factor {harness.scale_factor} "
          f"({int(6_000_000 * harness.scale_factor)} fact rows), "
          f"seed {harness.seed}")
    started = time.time()
    record = run_serve_bench(
        harness, clients=args.clients, flights=args.serve_flights,
        engine=args.serve_engine, concurrency=args.serve_concurrency,
        cache=not args.no_serve_cache)
    print()
    print(render_serve(record))
    if args.out:
        write_serve_artifact(args.out, record)
        print(f"\nwrote {args.out}")
    print(f"\n[serve benchmark in {time.time() - started:.1f}s wall clock]")
    return 0


def _run_check_baseline(parser: argparse.ArgumentParser, args) -> int:
    from .baseline import check_against_baseline, load_baseline

    baseline = load_baseline(args.check_baseline)
    figure = baseline["figure"]
    if figure not in _FIGURES:
        parser.error(f"baseline names unknown figure {figure!r}")
    if args.target is not None and args.target != figure:
        parser.error(f"target {args.target!r} conflicts with the "
                     f"baseline's figure {figure!r}")
    if args.sf is not None and args.sf != baseline["scale_factor"]:
        parser.error(f"--sf {args.sf} conflicts with the baseline's "
                     f"scale factor {baseline['scale_factor']}")
    if args.zone_maps is not None and \
            (args.zone_maps == "on") != baseline.get("zone_maps", False):
        parser.error(f"--zone-maps {args.zone_maps} conflicts with the "
                     f"baseline's setting "
                     f"{baseline.get('zone_maps', False)}")
    # pre-sharding artifacts read as shards=1 (the PR 5 zone-map rule)
    baseline_shards = baseline.get("shards", 1)
    if args.shards != 1 and args.shards != baseline_shards:
        parser.error(f"--shards {args.shards} conflicts with the "
                     f"baseline's setting {baseline_shards}")
    # pre-write-store artifacts read as writes-off (same rule)
    baseline_writes = baseline.get("writes", False)
    if args.writes is not None and \
            (args.writes == "on") != baseline_writes:
        parser.error(f"--writes {args.writes} conflicts with the "
                     f"baseline's setting {baseline_writes}")
    harness = Harness(scale_factor=baseline["scale_factor"],
                      verify_against_reference=args.verify,
                      workers=baseline["workers"],
                      fault_profile=args.fault_profile,
                      fault_seed=args.fault_seed,
                      zone_maps=baseline.get("zone_maps", False),
                      shards=baseline_shards,
                      writes=baseline_writes)
    print(f"checking {figure} against {args.check_baseline} "
          f"(sf {harness.scale_factor}, {harness.workers} worker(s)"
          + (", zone maps on" if harness.zone_maps else "")
          + (f", {harness.shards} shards" if harness.shards > 1 else "")
          + (", writes on" if harness.writes else "")
          + ")")
    grid = _FIGURES[figure][0](harness)
    regressions = check_against_baseline(grid, baseline)
    if regressions:
        print(f"\nBASELINE CHECK FAILED — {len(regressions)} "
              f"regressed cell(s):")
        for message in regressions:
            print(f"  {message}")
        return 1
    cells = sum(len(v) for v in grid.series.values())
    print(f"baseline check passed: {cells} cell(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
