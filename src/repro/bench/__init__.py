"""Benchmark harness: regenerate every table and figure of Section 6.

* :mod:`~repro.bench.harness` — builds the engines once per scale factor
  and runs query x configuration grids on fresh ledgers.
* :mod:`~repro.bench.figures` — one driver per paper figure (5, 6, 7, 8)
  plus the Section 6.2 storage-size report.
* :mod:`~repro.bench.report` — paper-style fixed-width tables and
  side-by-side comparison against the published numbers.
* :mod:`~repro.bench.paper_data` — the numbers printed in the paper's
  figures, used for shape comparison (who wins, by what factor).

Command line::

    python -m repro.bench all --sf 0.05
    python -m repro.bench figure7
"""

from .harness import Harness, RunGrid
from .figures import (
    figure5,
    figure6,
    figure7,
    figure8,
    storage_report,
)

__all__ = [
    "Harness",
    "RunGrid",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "storage_report",
]
