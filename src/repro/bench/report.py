"""Paper-style table rendering and shape comparison.

``render_grid`` prints a figure in the paper's layout (one row per
series, one column per query, AVG last).  ``render_comparison`` prints
measured and published numbers together, normalized so shapes are
directly comparable: each series is expressed relative to the figure's
first series (the paper's baseline), which removes the absolute-scale
difference between simulated seconds at the benchmark SF and the paper's
SF-10 wall clock.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import BenchmarkError
from .harness import RunGrid
from .paper_data import QUERY_ORDER, average


def _format_cell(value: Optional[float], width: int = 8) -> str:
    if value is None:
        return f"{'-':>{width}}"
    return f"{value:{width}.4f}"


def _format_row(label: str, values: Sequence[Optional[float]],
                width: int = 8) -> str:
    cells = " ".join(_format_cell(v, width) for v in values)
    return f"{label:>12} {cells}"


def render_grid(grid: RunGrid, queries: Optional[List[str]] = None) -> str:
    """The figure as a fixed-width table (simulated seconds).

    A series missing a query renders ``-`` in that cell, and its AVG is
    taken over the cells it does have — a partial run still prints."""
    queries = queries or QUERY_ORDER
    lines = [grid.title, ""]
    header = " ".join(f"{q:>8}" for q in queries) + "      AVG"
    lines.append(f"{'':>12} {header}")
    for label, series in grid.series.items():
        values: List[Optional[float]] = [series.get(q) for q in queries]
        present = [v for v in values if v is not None]
        values.append(sum(present) / len(present) if present else None)
        lines.append(_format_row(label, values))
    return "\n".join(lines)


def normalized_averages(series: Dict[str, Dict[str, float]]
                        ) -> Dict[str, float]:
    """Average of each series divided by the first series' average."""
    labels = list(series)
    if not labels:
        raise BenchmarkError("cannot normalize an empty grid")
    base = average(series[labels[0]])
    if base == 0:
        raise BenchmarkError(
            f"baseline series {labels[0]!r} averages 0.0 seconds; the "
            f"grid cannot be normalized against it")
    return {label: average(series[label]) / base for label in labels}


def render_comparison(grid: RunGrid,
                      paper: Dict[str, Dict[str, float]]) -> str:
    """Measured vs. published, as ratios to each source's own baseline."""
    ours = normalized_averages(grid.series)
    theirs = normalized_averages(paper)
    lines = [
        f"{grid.title} — shape comparison (x the figure's baseline)",
        "",
        f"{'series':>12} {'measured':>10} {'paper':>10}",
    ]
    for label in grid.series:
        paper_value = theirs.get(label)
        paper_text = f"{paper_value:10.2f}" if paper_value is not None \
            else f"{'-':>10}"
        lines.append(f"{label:>12} {ours[label]:10.2f} {paper_text}")
    return "\n".join(lines)


def render_storage(report: Dict[str, float]) -> str:
    """The Section 6.2 storage report."""
    lines = ["Storage report (MB unless noted)", ""]
    for key, value in report.items():
        lines.append(f"  {key:<48} {value:12.2f}")
    return "\n".join(lines)


__all__ = [
    "render_grid",
    "render_comparison",
    "render_storage",
    "normalized_averages",
]


#: (ledger counter, cost-model constant attribute) pairs for breakdowns.
_CPU_TERMS = [
    ("iterator_calls", "iterator_call_seconds"),
    ("attr_extractions", "attr_extraction_seconds"),
    ("tuple_bytes_scanned", "tuple_byte_seconds"),
    ("values_scanned_scalar", "scalar_value_seconds"),
    ("values_scanned_vector", "vector_value_seconds"),
    ("block_calls", "block_call_seconds"),
    ("hash_probes", "hash_probe_seconds"),
    ("hash_inserts", "hash_insert_seconds"),
    ("range_checks", "range_check_seconds"),
    ("position_ops", "position_op_seconds"),
    ("tuples_constructed", "tuple_construct_seconds"),
    ("tuple_attrs_copied", "tuple_attr_copy_seconds"),
    ("values_decompressed", "decompress_value_seconds"),
    ("runs_processed", "run_op_seconds"),
    ("agg_updates", "agg_update_seconds"),
    ("sort_compares", "sort_compare_seconds"),
    ("dict_lookups", "dict_lookup_seconds"),
    ("cache_lookups", "cache_lookup_seconds"),
    ("synopsis_probes", "synopsis_probe_seconds"),
]


def render_cost_breakdown(stats, model, title: str = "") -> str:
    """Per-counter priced contributions for one query's ledger —
    the Section 6.3.2-style 'where did the time go' analysis."""
    lines = []
    if title:
        lines.append(title)
    io_transfer = stats.bytes_read / (model.seq_mbps * 1024 * 1024)
    io_seek = stats.seeks * model.seek_seconds
    total = model.seconds(stats)
    lines.append(f"  {'term':<24} {'count':>12} {'seconds':>10} {'share':>7}")
    rows = [
        ("bytes_read (transfer)", stats.bytes_read, io_transfer),
        ("seeks", stats.seeks, io_seek),
    ]
    if stats.retry_backoff_us:
        rows.append(("retry backoff (us)", stats.retry_backoff_us,
                     stats.retry_backoff_us * 1e-6))
    for counter, constant in _CPU_TERMS:
        count = getattr(stats, counter)
        if count:
            rows.append((counter, count,
                         count * getattr(model, constant)))
    for name, count, seconds in sorted(rows, key=lambda r: -r[2]):
        share = seconds / total if total else 0.0
        lines.append(f"  {name:<24} {count:>12,} {seconds:>10.5f} "
                     f"{share:>6.1%}")
    lines.append(f"  {'TOTAL':<24} {'':>12} {total:>10.5f}")
    return "\n".join(lines)


def render_bars(grid: RunGrid, width: int = 46) -> str:
    """The figure as an ASCII bar chart of series averages — the visual
    analogue of the paper's Figure 5/6(b)/7(b) average bars."""
    averages = grid.averages()
    peak = max(averages.values()) or 1.0
    lines = [f"{grid.title} — averages"]
    for label, value in averages.items():
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"  {label:>12} {bar} {value:.4f}s")
    return "\n".join(lines)
