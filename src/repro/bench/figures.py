"""One driver per paper figure.

Each returns a :class:`~repro.bench.harness.RunGrid` whose series labels
match the paper's, so :mod:`~repro.bench.report` can print measured and
published numbers side by side.
"""

from __future__ import annotations

from typing import Dict

from ..core.config import CONFIG_LADDER
from ..rowstore.designs import DesignKind
from ..storage.colfile import CompressionLevel
from ..types import RECORD_ID_BYTES, ROW_TUPLE_HEADER_BYTES
from .harness import Harness, RunGrid

#: Figure 6 design order with the paper's labels.
FIGURE6_DESIGNS = [
    ("T", DesignKind.TRADITIONAL),
    ("T(B)", DesignKind.TRADITIONAL_BITMAP),
    ("MV", DesignKind.MATERIALIZED_VIEWS),
    ("VP", DesignKind.VERTICAL_PARTITIONING),
    ("AI", DesignKind.INDEX_ONLY),
]

#: Figure 8 denormalization cases.
FIGURE8_LEVELS = [
    ("PJ, No C", CompressionLevel.NONE),
    ("PJ, Int C", CompressionLevel.INT),
    ("PJ, Max C", CompressionLevel.MAX),
]


def figure5(harness: Harness) -> RunGrid:
    """RS, RS (MV), CS, CS (Row-MV) baselines across all 13 queries."""
    grid = RunGrid("Figure 5: baseline comparison")
    for query in harness.queries():
        grid.add("RS", query.name,
                 harness.run_row_design(query, DesignKind.TRADITIONAL))
        grid.add("RS (MV)", query.name,
                 harness.run_row_design(query,
                                        DesignKind.MATERIALIZED_VIEWS))
        grid.add("CS", query.name,
                 harness.run_column_config(query, CONFIG_LADDER[0]))
        grid.add("CS (Row-MV)", query.name, harness.run_row_mv(query))
    return grid


def figure6(harness: Harness) -> RunGrid:
    """The five row-store physical designs."""
    grid = RunGrid("Figure 6: row-store designs")
    for label, design in FIGURE6_DESIGNS:
        for query in harness.queries():
            grid.add(label, query.name,
                     harness.run_row_design(query, design))
    return grid


def figure7(harness: Harness) -> RunGrid:
    """The C-Store ablation ladder tICL .. Ticl."""
    grid = RunGrid("Figure 7: column-store optimization ablation")
    for config in CONFIG_LADDER:
        for query in harness.queries():
            grid.add(config.label, query.name,
                     harness.run_column_config(query, config))
    return grid


def figure8(harness: Harness) -> RunGrid:
    """Invisible join vs. the three denormalized-table treatments."""
    grid = RunGrid("Figure 8: denormalization study")
    for query in harness.queries():
        grid.add("Base", query.name,
                 harness.run_column_config(query, CONFIG_LADDER[0]))
    for label, level in FIGURE8_LEVELS:
        for query in harness.queries():
            grid.add(label, query.name,
                     harness.run_denormalized(query, level))
    return grid


def storage_report(harness: Harness) -> Dict[str, float]:
    """Section 6.2's storage-size comparison, in MB.

    The paper (at SF 10): a single VP column-table takes 0.7-1.1 GB, the
    whole traditional fact table ~4 GB compressed, a C-Store integer
    column 240 MB plain, and the entire compressed C-Store table 2.3 GB.
    """
    data = harness.data
    out: Dict[str, float] = {}
    mb = 1024.0 * 1024.0

    sx = harness.system_x([DesignKind.TRADITIONAL,
                           DesignKind.VERTICAL_PARTITIONING])
    traditional = sum(h.size_bytes
                      for h in sx.artifacts.fact_partitions.values())
    out["row-store fact heap (traditional)"] = traditional / mb
    vp_sizes = {c: h.size_bytes for c, h in sx.artifacts.vp_heaps.items()}
    out["vertical partition: one int column-table"] = \
        vp_sizes["quantity"] / mb
    out["vertical partition: all 17 column-tables"] = \
        sum(vp_sizes.values()) / mb

    cs = harness.cstore()
    compressed = cs.projection("lineorder", CompressionLevel.MAX)
    plain = cs.projection("lineorder", CompressionLevel.NONE)
    out["C-Store fact projection (compressed)"] = \
        compressed.size_bytes() / mb
    out["C-Store fact projection (uncompressed)"] = plain.size_bytes() / mb
    out["C-Store one int column (uncompressed)"] = \
        plain.column_file("quantity").size_bytes / mb
    out["C-Store one int column (compressed)"] = \
        compressed.column_file("quantity").size_bytes / mb
    out["C-Store orderdate column (compressed, RLE)"] = \
        compressed.column_file("orderdate").compressed_payload_bytes / mb

    n = data.lineorder.num_rows
    out["per-row overhead bytes (row store)"] = float(
        ROW_TUPLE_HEADER_BYTES)
    out["per-value overhead bytes (VP: header + rid)"] = float(
        ROW_TUPLE_HEADER_BYTES + RECORD_ID_BYTES)
    out["fact rows"] = float(n)
    return out


__all__ = [
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "storage_report",
    "FIGURE6_DESIGNS",
    "FIGURE8_LEVELS",
]
