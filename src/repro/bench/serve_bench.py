"""Closed-loop serving benchmark: N clients replaying SSBM flights.

``python -m repro.bench --serve`` spins up one :class:`QueryService`
and ``--clients`` closed-loop client threads.  Each client owns a
session and replays the 13 SSBM queries ``--serve-flights`` times in a
per-client seeded shuffle, so later flights re-ask questions earlier
flights answered — exactly the workload the semantic cache is for.

Two kinds of numbers come out and they must not be conflated:

* **simulated seconds** — the cost model pricing each query's ledger on
  the paper's 2008 hardware; deterministic, machine-independent, and
  the basis for the per-flight speedup the cache claims;
* **wall-clock latency/throughput** — how long the Python service
  actually took under concurrency; host-dependent, reported for shape
  (p50/p95/p99), never compared against the paper.

The report is written as a ``repro-serve-v1`` JSON artifact (see
``docs/serving.md`` for the schema).
"""

from __future__ import annotations

import json
import random
import threading
import time
from typing import Dict, List, Optional

from ..errors import BenchmarkError
from ..rowstore.designs import DesignKind
from ..serve import QueryService, ServiceConfig
from ..ssb.queries import ALL_QUERIES
from .harness import Harness

#: Schema tag written into every serving artifact.
SERVE_SCHEMA = "repro-serve-v1"


def percentile(values: List[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Implemented by hand so the artifact does not depend on numpy's
    percentile flavour of the day; matches ``numpy.percentile``'s
    default 'linear' method.
    """
    if not values:
        raise BenchmarkError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise BenchmarkError(f"percentile q must be in [0, 100], got {q}")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


def _client_engine(engine: str, index: int) -> str:
    if engine in ("cs", "rs"):
        return engine
    # "both": alternate so the cache serves two scopes at once
    return "cs" if index % 2 == 0 else "rs"


def run_serve_bench(harness: Harness, *, clients: int = 8,
                    flights: int = 2, engine: str = "cs",
                    concurrency: int = 8, cache: bool = True,
                    seed: Optional[int] = None) -> Dict:
    """Run the closed-loop serving benchmark and return the artifact dict."""
    if clients < 1:
        raise BenchmarkError(f"--clients must be >= 1, got {clients}")
    if flights < 1:
        raise BenchmarkError(f"--serve-flights must be >= 1, got {flights}")
    if engine not in ("cs", "rs", "both"):
        raise BenchmarkError(f"unknown serve engine {engine!r} "
                             "(expected cs, rs, or both)")
    seed = harness.seed if seed is None else seed

    engines = {_client_engine(engine, i) for i in range(clients)}
    cstore = harness.cstore() if "cs" in engines else None
    system_x = harness.system_x([DesignKind.TRADITIONAL]) \
        if "rs" in engines else None
    service = QueryService(
        cstore=cstore, system_x=system_x,
        config=ServiceConfig(max_in_flight=concurrency, cache=cache))

    samples: List[Dict] = []
    samples_lock = threading.Lock()
    errors: List[BaseException] = []
    barrier = threading.Barrier(clients)

    def client(index: int) -> None:
        rng = random.Random(seed * 7919 + index)
        session = service.session(name=f"client-{index}",
                                 engine=_client_engine(engine, index))
        local: List[Dict] = []
        try:
            barrier.wait()
            for flight in range(flights):
                order = list(ALL_QUERIES)
                rng.shuffle(order)
                for query in order:
                    started = time.perf_counter()
                    run = session.execute(query)
                    local.append({
                        "client": index,
                        "flight": flight,
                        "query": query.name,
                        "engine": session.engine,
                        "source": run.source,
                        "simulated_seconds": run.seconds,
                        "wall_seconds": time.perf_counter() - started,
                    })
        except BaseException as exc:  # surfaced after join
            errors.append(exc)
            raise
        finally:
            with samples_lock:
                samples.extend(local)

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(clients)]
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_elapsed = time.perf_counter() - wall_started
    service.close()
    if errors:
        raise errors[0]

    return serve_record(samples, service.serve_stats(),
                        scale_factor=harness.scale_factor, clients=clients,
                        flights=flights, engine=engine,
                        concurrency=concurrency, cache=cache, seed=seed,
                        wall_elapsed=wall_elapsed)


def serve_record(samples: List[Dict], service_stats: Dict, *,
                 scale_factor: float, clients: int, flights: int,
                 engine: str, concurrency: int, cache: bool, seed: int,
                 wall_elapsed: float) -> Dict:
    """Assemble the ``repro-serve-v1`` artifact from raw samples."""
    if not samples:
        raise BenchmarkError("serving benchmark produced no samples")
    latencies = [s["wall_seconds"] for s in samples]
    per_flight = []
    for flight in range(flights):
        batch = [s for s in samples if s["flight"] == flight]
        sources = [s["source"] for s in batch]
        hits = sum(1 for s in sources if s.startswith("cache-"))
        per_flight.append({
            "flight": flight,
            "queries": len(batch),
            "simulated_seconds": sum(s["simulated_seconds"] for s in batch),
            "engine_runs": sum(1 for s in sources if s == "engine"),
            "exact_hits": sum(1 for s in sources if s == "cache-exact"),
            "subsumption_hits": sum(
                1 for s in sources if s == "cache-refilter"),
            "hit_rate": hits / len(batch) if batch else 0.0,
        })
    return {
        "schema": SERVE_SCHEMA,
        "scale_factor": scale_factor,
        "clients": clients,
        "flights": flights,
        "engine": engine,
        "concurrency": concurrency,
        "cache": cache,
        "seed": seed,
        "queries_served": len(samples),
        "wall_seconds": wall_elapsed,
        "throughput_qps": len(samples) / wall_elapsed
        if wall_elapsed > 0 else 0.0,
        "latency_wall_ms": {
            "p50": percentile(latencies, 50) * 1e3,
            "p95": percentile(latencies, 95) * 1e3,
            "p99": percentile(latencies, 99) * 1e3,
            "mean": sum(latencies) / len(latencies) * 1e3,
            "max": max(latencies) * 1e3,
        },
        "simulated_seconds_total": sum(
            s["simulated_seconds"] for s in samples),
        "flights_detail": per_flight,
        "service": service_stats,
    }


def write_serve_artifact(path: str, record: Dict) -> None:
    if record.get("schema") != SERVE_SCHEMA:
        raise BenchmarkError(
            f"refusing to write a non-{SERVE_SCHEMA} record to {path!r}")
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")


def load_serve_artifact(path: str) -> Dict:
    try:
        with open(path) as handle:
            record = json.load(handle)
    except (OSError, ValueError) as exc:
        raise BenchmarkError(f"cannot read serve artifact {path!r}: {exc}")
    if not isinstance(record, dict) or record.get("schema") != SERVE_SCHEMA:
        raise BenchmarkError(
            f"{path!r} is not a {SERVE_SCHEMA} artifact "
            f"(schema={record.get('schema')!r})"
            if isinstance(record, dict) else
            f"{path!r} is not a JSON object")
    return record


def render_serve(record: Dict) -> str:
    """A terminal summary of one serving artifact."""
    lines = [
        f"serving benchmark — {record['clients']} client(s) x "
        f"{record['flights']} flight(s), engine {record['engine']}, "
        f"concurrency {record['concurrency']}, "
        f"cache {'on' if record['cache'] else 'off'}",
        f"  {record['queries_served']} queries in "
        f"{record['wall_seconds']:.2f}s wall "
        f"({record['throughput_qps']:.1f} q/s)",
        f"  wall latency ms: p50 {record['latency_wall_ms']['p50']:.1f}  "
        f"p95 {record['latency_wall_ms']['p95']:.1f}  "
        f"p99 {record['latency_wall_ms']['p99']:.1f}",
        f"  simulated seconds total "
        f"{record['simulated_seconds_total']:.3f}",
    ]
    for flight in record["flights_detail"]:
        lines.append(
            f"  flight {flight['flight']}: "
            f"{flight['simulated_seconds']:.3f} simulated s, "
            f"{flight['engine_runs']} engine run(s), "
            f"{flight['exact_hits']} exact + "
            f"{flight['subsumption_hits']} subsumption hit(s) "
            f"(hit rate {flight['hit_rate']:.0%})")
    return "\n".join(lines)


__all__ = [
    "SERVE_SCHEMA",
    "percentile",
    "run_serve_bench",
    "serve_record",
    "write_serve_artifact",
    "load_serve_artifact",
    "render_serve",
]
