"""The benchmark harness: engines built once, queries run on demand.

The scale factor defaults to 0.05 (300 k fact rows) and can be overridden
with the ``REPRO_SF`` environment variable or the ``--sf`` CLI flag.
Engines are constructed lazily so that, e.g., a Figure 7 run never builds
the row store's index-only design.

All reported numbers are **simulated seconds on the paper's 2008
hardware**, computed by the shared cost model from the work each query
actually performed (see DESIGN.md).  Wall-clock time of the Python
execution is measured separately by the pytest-benchmark suites.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from ..core.config import ExecutionConfig
from ..colstore.engine import CStore
from ..plan.logical import StarQuery
from ..reference import execute as reference_execute
from ..result import ResultSet
from ..rowstore.designs import DesignKind
from ..rowstore.engine import SystemX
from ..ssb.denormalize import denormalize, rewrite_query
from ..ssb.cache import load_or_generate
from ..ssb.generator import DEFAULT_SEED, SsbData
from ..ssb.queries import ALL_QUERIES
from ..ssb.schema import FACT_SORT_KEYS
from ..storage.colfile import CompressionLevel
from ..errors import BenchmarkError

DEFAULT_SCALE_FACTOR = 0.05


def scale_factor_from_env() -> float:
    """The benchmark scale factor (``REPRO_SF`` env var or default)."""
    raw = os.environ.get("REPRO_SF")
    if raw is None:
        return DEFAULT_SCALE_FACTOR
    try:
        value = float(raw)
    except ValueError:
        raise BenchmarkError(f"REPRO_SF must be a number, got {raw!r}")
    if value <= 0:
        raise BenchmarkError(f"REPRO_SF must be positive, got {value}")
    return value


@dataclass
class RunGrid:
    """A figure's worth of measurements: series label -> query -> seconds."""

    title: str
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def add(self, label: str, query: str, seconds: float) -> None:
        self.series.setdefault(label, {})[query] = seconds

    def validate_aligned(self) -> None:
        """Every series must cover the same query set — averaging ragged
        series silently skews a figure, so mismatches are a typed error."""
        labels = list(self.series)
        if not labels:
            return
        reference = set(self.series[labels[0]])
        for label in labels[1:]:
            got = set(self.series[label])
            if got == reference:
                continue
            missing = sorted(reference - got)
            extra = sorted(got - reference)
            detail = []
            if missing:
                detail.append(f"missing {missing}")
            if extra:
                detail.append(f"extra {extra}")
            raise BenchmarkError(
                f"grid {self.title!r}: series {label!r} does not cover "
                f"the same queries as {labels[0]!r} ({'; '.join(detail)})")

    def averages(self) -> Dict[str, float]:
        self.validate_aligned()
        for label, values in self.series.items():
            if not values:
                raise BenchmarkError(
                    f"grid {self.title!r}: series {label!r} has no "
                    f"measurements to average")
        return {
            label: sum(values.values()) / len(values)
            for label, values in self.series.items()
        }

    def query_names(self) -> List[str]:
        if not self.series:
            raise BenchmarkError(
                f"grid {self.title!r} has no series; nothing was measured")
        first = next(iter(self.series.values()))
        return list(first)


class Harness:
    """Builds engines lazily and runs the paper's experiment grids."""

    def __init__(self, scale_factor: Optional[float] = None,
                 seed: int = DEFAULT_SEED,
                 verify_against_reference: bool = False,
                 workers: int = 1,
                 fault_profile: Optional[str] = None,
                 fault_seed: int = 0,
                 zone_maps: bool = False,
                 shards: int = 1,
                 writes: bool = False) -> None:
        self.scale_factor = (scale_factor if scale_factor is not None
                             else scale_factor_from_env())
        self.seed = seed
        self.verify = verify_against_reference
        #: morsel workers for column-store runs (1 = serial).  Parallel
        #: runs charge the same simulated ledger — only wall-clock moves.
        self.workers = workers
        #: consult zone-map synopses on both engines' scan paths (results
        #: are invariant; only pages touched and the skip counters move)
        self.zone_maps = zone_maps
        #: scatter-gather shard count on both engines (1 = the unchanged
        #: single-stack path; results are invariant, see docs/sharding.md)
        self.shards = shards
        #: build write-capable engines and run column-store queries with
        #: MVCC snapshot reads opted in (see docs/writes.md).  With no
        #: pending delta, on/off ledgers are byte-identical.
        self.writes = writes
        #: optional seeded fault schedule installed on each engine's disk
        #: right after it is built (see :mod:`repro.simio.faults`);
        #: tables loaded later (e.g. denormalized ones) are not corrupted
        self.fault_profile = fault_profile
        self.fault_seed = fault_seed
        #: when set, every measured run emits one trace record (a span
        #: tree rendered to a plain dict, see :mod:`repro.obs`) to this
        #: callable — the CLI points it at a JSON-lines file
        self.trace_sink: Optional[Callable[[Dict], None]] = None
        #: stamped into trace records; drivers set it per figure
        self.trace_figure: str = ""
        self._data: Optional[SsbData] = None
        self._system_x: Optional[SystemX] = None
        self._built_designs: set = set()
        self._cstore: Optional[CStore] = None
        self._cstore_row_mv = False
        self._denorm_loaded = False

    # ------------------------------------------------------------------ #
    # lazy construction
    # ------------------------------------------------------------------ #
    @property
    def data(self) -> SsbData:
        if self._data is None:
            # honours REPRO_CACHE_DIR for instant reloads at large scales
            self._data = load_or_generate(self.scale_factor, self.seed)
        return self._data

    def _install_faults(self, disk) -> None:
        if self.fault_profile is None:
            return
        from ..simio.faults import injector_from_profile

        injector_from_profile(self.fault_profile, self.fault_seed) \
            .install(disk)

    def system_x(self, designs: Sequence[DesignKind]) -> SystemX:
        if self._system_x is None:
            self._system_x = SystemX(self.data, designs=list(designs),
                                     zone_maps=self.zone_maps,
                                     shards=self.shards,
                                     writes=self.writes)
            self._built_designs = set(designs)
            self._install_faults(self._system_x.disk)
        else:
            for design in designs:
                if design not in self._built_designs:
                    self._system_x.add_design(design)
                    self._built_designs.add(design)
        return self._system_x

    def cstore(self, row_mv: bool = False) -> CStore:
        if self._cstore is None:
            self._cstore = CStore(self.data, row_mv=row_mv)
            self._cstore_row_mv = row_mv
            self._install_faults(self._cstore.disk)
        elif row_mv and not self._cstore_row_mv:
            for flight in (1, 2, 3, 4):
                self._cstore.load_row_mv(flight)
            self._cstore_row_mv = True
        return self._cstore

    def cstore_with_denorm(self) -> CStore:
        store = self.cstore()
        if not self._denorm_loaded:
            wide = denormalize(self.data)
            for level in CompressionLevel:
                store.load_table(wide, FACT_SORT_KEYS, level)
            self._denorm_loaded = True
        return store

    # ------------------------------------------------------------------ #
    # measured runs
    # ------------------------------------------------------------------ #
    def _check(self, query: StarQuery, result: ResultSet,
               tables: Optional[Dict] = None) -> None:
        if not self.verify:
            return
        oracle = reference_execute(tables or self.data.tables, query)
        if not result.same_rows(oracle):
            raise BenchmarkError(
                f"engine result for {query.name} deviates from the oracle"
            )

    def _emit_trace(self, run, engine: str, series: str,
                    query: str) -> None:
        if self.trace_sink is None or run.trace is None:
            return
        from ..obs import trace_record

        self.trace_sink(trace_record(
            run.trace, figure=self.trace_figure, series=series,
            query=query, engine=engine, scale_factor=self.scale_factor,
            workers=self.workers))

    def run_row_design(self, query: StarQuery, design: DesignKind,
                       prune_partitions: bool = True) -> float:
        engine = self.system_x([design])
        run = engine.execute(query, design, prune_partitions=prune_partitions)
        self._check(query, run.result)
        self._emit_trace(run, "rowstore", design.value, query.name)
        return run.seconds

    def run_column_config(self, query: StarQuery,
                          config: ExecutionConfig) -> float:
        if self.workers > 1 and config.workers != self.workers:
            config = replace(config, workers=self.workers)
        if self.zone_maps and not config.zone_maps:
            config = replace(config, zone_maps=True)
        if self.shards > 1 and config.shards != self.shards:
            config = replace(config, shards=self.shards)
        if self.writes and not config.writes:
            config = replace(config, writes=True)
        run = self.cstore().execute(query, config)
        self._check(query, run.result)
        self._emit_trace(run, "colstore", config.label, query.name)
        return run.seconds

    def run_row_mv(self, query: StarQuery) -> float:
        run = self.cstore(row_mv=True).execute_row_mv(query)
        self._check(query, run.result)
        self._emit_trace(run, "colstore", "row-mv", query.name)
        return run.seconds

    def run_denormalized(self, query: StarQuery,
                         level: CompressionLevel) -> float:
        store = self.cstore_with_denorm()
        rewritten = rewrite_query(query)
        config = ExecutionConfig.baseline()
        if self.zone_maps:
            config = replace(config, zone_maps=True)
        run = store.execute(rewritten, config, level=level)
        if self.verify:
            wide_tables = dict(self.data.tables)
            wide_tables[rewritten.fact_table] = denormalize(self.data)
            self._check(rewritten, run.result, tables=wide_tables)
        self._emit_trace(run, "colstore", f"denorm:{level.value}",
                         query.name)
        return run.seconds

    def queries(self) -> List[StarQuery]:
        return list(ALL_QUERIES)


__all__ = ["Harness", "RunGrid", "DEFAULT_SCALE_FACTOR",
           "scale_factor_from_env"]
