"""The numbers printed in the paper's figures (seconds at SF 10).

Transcribed from Figures 5, 6(a), 7(a) and 8.  Used only for
side-by-side shape comparison in reports and EXPERIMENTS.md — the
reproduction never calibrates against per-query values, only the shared
hardware constants in :mod:`repro.simio.stats`.
"""

from __future__ import annotations

from typing import Dict, List

QUERY_ORDER: List[str] = [
    "Q1.1", "Q1.2", "Q1.3",
    "Q2.1", "Q2.2", "Q2.3",
    "Q3.1", "Q3.2", "Q3.3", "Q3.4",
    "Q4.1", "Q4.2", "Q4.3",
]


def _series(*values: float) -> Dict[str, float]:
    assert len(values) == len(QUERY_ORDER)
    return dict(zip(QUERY_ORDER, values))


#: Figure 5 — baseline comparison.
PAPER_FIGURE5: Dict[str, Dict[str, float]] = {
    "RS": _series(2.7, 2.0, 1.5, 43.8, 44.1, 46.0, 43.0, 42.8, 31.2, 6.5,
                  44.4, 14.1, 12.2),
    "RS (MV)": _series(1.0, 1.0, 0.2, 15.5, 13.5, 11.8, 16.1, 6.9, 6.4, 3.0,
                       29.2, 22.4, 6.4),
    "CS": _series(0.4, 0.1, 0.1, 5.7, 4.2, 3.9, 11.0, 4.4, 7.6, 0.6,
                  8.2, 3.7, 2.6),
    "CS (Row-MV)": _series(16.0, 9.1, 8.4, 33.5, 23.5, 22.3, 48.5, 21.5,
                           17.6, 17.4, 48.6, 38.4, 32.1),
}

#: Figure 6(a) — row-store designs.
PAPER_FIGURE6: Dict[str, Dict[str, float]] = {
    "T": _series(2.7, 2.0, 1.5, 43.8, 44.1, 46.0, 43.0, 42.8, 31.2, 6.5,
                 44.4, 14.1, 12.2),
    "T(B)": _series(9.9, 11.0, 1.5, 91.9, 78.4, 304.1, 91.4, 65.3, 31.2, 6.5,
                    94.4, 25.3, 21.2),
    "MV": _series(1.0, 1.0, 0.2, 15.5, 13.5, 11.8, 16.1, 6.9, 6.4, 3.0,
                  29.2, 22.4, 6.4),
    "VP": _series(69.7, 36.0, 36.0, 65.1, 48.8, 39.0, 139.1, 63.9, 48.2,
                  47.0, 208.6, 150.4, 86.3),
    "AI": _series(107.2, 50.8, 48.5, 359.8, 46.4, 43.9, 413.8, 40.7, 531.4,
                  65.5, 623.9, 280.1, 263.9),
}

#: Figure 7(a) — C-Store optimization ablation.
PAPER_FIGURE7: Dict[str, Dict[str, float]] = {
    "tICL": _series(0.4, 0.1, 0.1, 5.7, 4.2, 3.9, 11.0, 4.4, 7.6, 0.6,
                    8.2, 3.7, 2.6),
    "TICL": _series(0.4, 0.1, 0.1, 7.4, 6.7, 6.5, 17.3, 11.2, 12.6, 0.7,
                    10.7, 5.5, 4.3),
    "tiCL": _series(0.3, 0.1, 0.1, 13.6, 12.6, 12.2, 16.0, 9.0, 7.5, 0.6,
                    15.8, 5.5, 4.1),
    "TiCL": _series(0.4, 0.1, 0.1, 14.8, 13.8, 13.4, 21.4, 14.1, 12.6, 0.7,
                    17.0, 6.9, 5.4),
    "ticL": _series(3.8, 2.1, 2.1, 15.0, 13.9, 13.6, 31.9, 15.5, 13.5, 13.5,
                    30.1, 20.4, 15.8),
    "TicL": _series(7.1, 6.1, 6.0, 16.1, 14.9, 14.7, 31.9, 15.5, 13.6, 13.6,
                    30.0, 21.4, 16.9),
    "Ticl": _series(33.4, 28.2, 27.4, 40.5, 36.0, 35.0, 56.5, 34.0, 30.3,
                    30.2, 66.3, 60.8, 54.4),
}

#: Figure 8 — invisible join vs. denormalization.
PAPER_FIGURE8: Dict[str, Dict[str, float]] = {
    "Base": _series(0.4, 0.1, 0.1, 5.7, 4.2, 3.9, 11.0, 4.4, 7.6, 0.6,
                    8.2, 3.7, 2.6),
    "PJ, No C": _series(0.4, 0.1, 0.2, 32.9, 25.4, 12.1, 42.7, 43.1, 31.6,
                        28.4, 46.8, 9.3, 6.8),
    "PJ, Int C": _series(0.3, 0.1, 0.1, 11.8, 3.0, 2.6, 11.7, 8.3, 5.5, 4.1,
                         10.0, 2.2, 1.5),
    "PJ, Max C": _series(0.7, 0.2, 0.2, 6.1, 2.3, 1.9, 7.3, 3.6, 3.9, 3.2,
                         6.8, 1.8, 1.1),
}


def average(series: Dict[str, float]) -> float:
    """The AVG column the paper appends to each figure."""
    return sum(series.values()) / len(series)


__all__ = [
    "QUERY_ORDER",
    "PAPER_FIGURE5",
    "PAPER_FIGURE6",
    "PAPER_FIGURE7",
    "PAPER_FIGURE8",
    "average",
]
