"""The write-optimized store (WOS): deltas, epochs, and MVCC visibility.

Both engines stay read-optimized; accepted writes land here first, in a
row-format in-memory buffer per table, after schema and foreign-key
validation and a priced append to the redo journal.  Every accepted
batch bumps a global **epoch**; every row remembers the epoch it was
inserted and (if deleted while still in the WOS) the epoch it was
deleted.  Deletes against rows already in the read-optimized base mark
the base *position* with the deleting epoch instead of touching pages.

A reader pins an epoch and gets a :class:`Visibility`: which base fact
rows are deleted as of that epoch and which WOS fact rows are visible.
The foreign-key rules below are what keep visibility *fact-only*:

* a fact insert must reference dimension keys that exist (base or WOS);
* a dimension insert must use a fresh key;
* a dimension delete is RESTRICTed while any live fact row references it.

Consequently a dimension row reachable from a live base fact row can
never disappear, and a WOS-inserted dimension row can only be referenced
by WOS fact rows — so base-page scans need only a fact deleted-mask, and
WOS fact rows are evaluated against *effective* dimensions by the delta
evaluator (:mod:`repro.write.delta`).

The tuple mover (driven by the engines) drains the WOS: it asks for the
:meth:`WriteStore.effective_tables`, rebuilds base pages from them, and
calls :meth:`WriteStore.complete_move`, which advances the merge horizon.
Pinned epochs older than the horizon can no longer be reconstructed and
raise :class:`~repro.errors.SnapshotTooOldError`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import (IntegrityError, SnapshotTooOldError,
                      WriteContentionError, WriteError)
from ..obs import Tracer
from ..plan.logical import (
    Comparison,
    CompareOp,
    InSet,
    Predicate,
    RangePredicate,
    Value,
)
from ..reference.predicates import eval_predicate
from ..simio.stats import QueryStats
from ..ssb.schema import FACT_SORT_KEYS, FOREIGN_KEYS
from ..storage.column import Column
from ..storage.table import SortOrder, Table
from .journal import RedoJournal

#: The one fact table of the star schema.
FACT_TABLE = "lineorder"

#: Foreign keys the write path enforces.  ``commitdate`` is exempt: SSB
#: queries never join through it, and the generator itself emits commit
#: dates with no referential guarantee the reader relies on.
VALIDATED_FOREIGN_KEYS: Dict[str, Tuple[str, str]] = {
    fk: ref for fk, ref in FOREIGN_KEYS.items() if fk != "commitdate"
}


@dataclass
class WosRow:
    """One buffered row: logical values plus its MVCC interval."""

    values: Dict[str, Value]
    insert_epoch: int
    delete_epoch: Optional[int] = None

    def visible_at(self, epoch: int) -> bool:
        if self.insert_epoch > epoch:
            return False
        return self.delete_epoch is None or self.delete_epoch > epoch


@dataclass
class Visibility:
    """What one pinned epoch sees, reduced to the fact table.

    ``fact_deleted`` is a boolean mask over the *base* fact rows (in
    generation order) or ``None`` when no base fact row is deleted as of
    the epoch; ``fact_wos`` is a :class:`Table` of the visible WOS fact
    rows or ``None`` when there are none.  Dimension changes never
    appear here — see the module docstring for why that is sound.
    """

    epoch: int
    store: "WriteStore"
    fact_deleted: Optional[np.ndarray] = None
    fact_wos: Optional[Table] = None

    @property
    def needs_merge(self) -> bool:
        """True when visible WOS fact rows force a gather-style merge."""
        return self.fact_wos is not None

    @property
    def needs_patching(self) -> bool:
        """True when base scans must mask out deleted fact positions."""
        return self.fact_deleted is not None

    def delta_tables(self) -> Dict[str, Table]:
        """Tables for the delta evaluator: visible WOS fact rows joined
        against *effective* dimensions as of this epoch."""
        tables = {FACT_TABLE: self.fact_wos}
        for name in self.store.table_names():
            if name != FACT_TABLE:
                tables[name] = self.store.effective_table(name, self.epoch)
        return tables


class WriteStore:
    """Per-database delta store: WOS buffers, deleted maps, journal."""

    def __init__(self, tables: Dict[str, Table],
                 journal: Optional[RedoJournal] = None) -> None:
        if FACT_TABLE not in tables:
            raise WriteError(f"write store requires a {FACT_TABLE!r} table")
        self._base: Dict[str, Table] = dict(tables)
        self.epoch = 0
        #: epochs below this can no longer be reconstructed (tuple mover)
        self.horizon = 0
        self._wos: Dict[str, List[WosRow]] = {n: [] for n in tables}
        #: base position -> epoch that deleted it
        self._base_deleted: Dict[str, Dict[int, int]] = {n: {} for n in tables}
        #: an existing journal may be adopted (cold-start replay re-applies
        #: a surviving journal against fresh base tables)
        self.journal = journal if journal is not None else RedoJournal()
        # projection-space deleted positions, keyed (epoch, sort keys)
        self._proj_cache: Dict[Tuple[int, Tuple[str, ...]], np.ndarray] = {}
        # batch application is not re-entrant: journal order must match
        # buffer mutation order, so a racing second writer is refused typed
        self._apply_lock = threading.Lock()

    def _enter_batch(self) -> None:
        if not self._apply_lock.acquire(blocking=False):
            raise WriteContentionError(
                "write store busy: another batch is mid-application; "
                "retry after it finishes"
            )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def table_names(self) -> List[str]:
        return sorted(self._base)

    def base_table(self, name: str) -> Table:
        try:
            return self._base[name]
        except KeyError:
            raise WriteError(f"unknown table {name!r}") from None

    def has_pending(self) -> bool:
        """Any buffered inserts or marked deletes at all?"""
        return any(self._wos.values()) or any(self._base_deleted.values())

    def pending_rows(self) -> int:
        """Rows the tuple mover would have to merge right now."""
        live = sum(
            1 for rows in self._wos.values() for r in rows
            if r.delete_epoch is None
        )
        return live + sum(len(d) for d in self._base_deleted.values())

    def pin(self) -> int:
        """Pin the current epoch for a snapshot read."""
        return self.epoch

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    def insert(self, table: str, rows: Sequence[Dict[str, Value]],
               stats: QueryStats, tracer: Optional[Tracer] = None) -> int:
        """Validate, journal, and buffer a batch of inserts.

        All-or-nothing: any :class:`IntegrityError` (or a journal
        :class:`~repro.errors.WriteFaultError`) leaves the store exactly
        as it was.  Returns the number of rows inserted.
        """
        self._enter_batch()
        try:
            base = self.base_table(table)
            if not rows:
                return 0
            checked = [self._validate_row(table, base, dict(r))
                       for r in rows]
            if table == FACT_TABLE:
                self._check_fact_references(checked)
            else:
                self._check_dimension_uniqueness(table, base, checked)
            new_epoch = self.epoch + 1
            self.journal.append(
                {"op": "insert", "table": table, "epoch": new_epoch,
                 "rows": checked},
                stats, tracer,
            )
            self.epoch = new_epoch
            self._wos[table].extend(
                WosRow(values=r, insert_epoch=new_epoch) for r in checked
            )
            return len(checked)
        finally:
            self._apply_lock.release()

    def delete(self, table: str, predicates: Sequence[Predicate],
               stats: QueryStats, tracer: Optional[Tracer] = None) -> int:
        """Mark every visible row of ``table`` matching all ``predicates``
        as deleted.  Dimension deletes are RESTRICTed while referenced.
        Returns the number of rows deleted (0 is not an error)."""
        self._enter_batch()
        try:
            return self._delete_locked(table, predicates, stats, tracer)
        finally:
            self._apply_lock.release()

    def _delete_locked(self, table: str, predicates: Sequence[Predicate],
                       stats: QueryStats, tracer: Optional[Tracer]) -> int:
        base = self.base_table(table)
        for p in predicates:
            if p.table != table:
                raise IntegrityError(
                    f"delete from {table!r} has a predicate on {p.table!r}"
                )
            base.column(p.column)  # SchemaError if absent
        deleted_map = self._base_deleted[table]
        mask = np.ones(base.num_rows, dtype=bool)
        for p in predicates:
            mask &= eval_predicate(base.column(p.column), p)
        base_hits = [int(pos) for pos in np.flatnonzero(mask)
                     if int(pos) not in deleted_map]
        wos = self._wos[table]
        wos_hits = [
            idx for idx, row in enumerate(wos)
            if row.delete_epoch is None
            and all(_row_matches(row.values, p) for p in predicates)
        ]
        if not base_hits and not wos_hits:
            return 0
        if table != FACT_TABLE:
            key_column = base.columns()[0].name
            keys = {base.column(key_column).data[pos] for pos in base_hits}
            keys |= {wos[idx].values[key_column] for idx in wos_hits}
            self._check_dimension_unreferenced(table, key_column,
                                               {int(k) for k in keys})
        new_epoch = self.epoch + 1
        # "wos" holds indices into the per-table WOS list at delete time —
        # replayable because the list only ever appends between moves, so
        # replay reconstructs the identical list and the indices land on
        # the identical rows
        self.journal.append(
            {"op": "delete", "table": table, "epoch": new_epoch,
             "predicates": [str(p) for p in predicates],
             "base_positions": base_hits, "wos": wos_hits,
             "wos_rows": len(wos_hits)},
            stats, tracer,
        )
        self.epoch = new_epoch
        for pos in base_hits:
            deleted_map[pos] = new_epoch
        for idx in wos_hits:
            wos[idx].delete_epoch = new_epoch
        return len(base_hits) + len(wos_hits)

    # ------------------------------------------------------------------ #
    # replay (cold-start recovery)
    # ------------------------------------------------------------------ #
    def apply_record(self, record: Dict) -> None:
        """Re-apply one journaled record without re-journaling it.

        Used only by :mod:`repro.write.recovery`: records are replayed in
        LSN order against the genesis base tables, so validation already
        ran when the record was first accepted and is skipped here.
        """
        op = record.get("op")
        epoch = int(record.get("epoch", -1))
        if op in ("insert", "delete") and epoch != self.epoch + 1:
            raise WriteError(
                f"journal replay out of order: record epoch {epoch} after "
                f"store epoch {self.epoch}"
            )
        if op == "insert":
            self._wos[record["table"]].extend(
                WosRow(values=dict(r), insert_epoch=epoch)
                for r in record["rows"]
            )
            self.epoch = epoch
        elif op == "delete":
            deleted_map = self._base_deleted[record["table"]]
            for pos in record["base_positions"]:
                deleted_map[int(pos)] = epoch
            wos = self._wos[record["table"]]
            for idx in record.get("wos", ()):
                wos[int(idx)].delete_epoch = epoch
            self.epoch = epoch
        elif op == "move":
            if epoch != self.epoch:
                raise WriteError(
                    f"journal replay: move record at epoch {epoch} does "
                    f"not match store epoch {self.epoch}"
                )
            self.complete_move(self.effective_tables())
        else:
            raise WriteError(f"journal replay: unknown op {op!r}")

    @classmethod
    def recover(cls, tables: Dict[str, Table], journal: RedoJournal,
                committed_lsn: Optional[int] = None,
                stats: Optional[QueryStats] = None,
                tracer: Optional[Tracer] = None) -> "WriteStore":
        """Cold-start replay: rebuild a store from genesis ``tables`` and
        a surviving ``journal`` (see :mod:`repro.write.recovery`).

        Returns the recovered store; its :class:`RecoveryReport` is left
        on ``store.last_recovery``.
        """
        from .recovery import recover_store
        store, report = recover_store(tables, journal, committed_lsn,
                                      stats, tracer)
        store.last_recovery = report
        return store

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def _validate_row(self, table: str, base: Table,
                      row: Dict[str, Value]) -> Dict[str, Value]:
        expected = set(base.column_names)
        got = set(row)
        if got != expected:
            missing, extra = expected - got, got - expected
            raise IntegrityError(
                f"insert into {table!r}: row must supply exactly the "
                f"schema columns (missing {sorted(missing)}, "
                f"unexpected {sorted(extra)})"
            )
        out: Dict[str, Value] = {}
        for col in base.columns():
            value = row[col.name]
            if col.dictionary is not None:
                if not isinstance(value, str):
                    raise IntegrityError(
                        f"insert into {table!r}.{col.name}: expected a "
                        f"string, got {value!r}"
                    )
                if value not in col.dictionary:
                    raise IntegrityError(
                        f"insert into {table!r}.{col.name}: {value!r} is "
                        f"outside the column's fixed string domain"
                    )
                out[col.name] = value
            else:
                if isinstance(value, bool) or not isinstance(value, int):
                    raise IntegrityError(
                        f"insert into {table!r}.{col.name}: expected an "
                        f"integer, got {value!r}"
                    )
                info = np.iinfo(col.data.dtype)
                if not info.min <= value <= info.max:
                    raise IntegrityError(
                        f"insert into {table!r}.{col.name}: {value} does "
                        f"not fit the stored width"
                    )
                out[col.name] = int(value)
        return out

    def _visible_dim_keys(self, dim: str, key_column: str) -> Set[int]:
        base = self._base[dim]
        data = base.column(key_column).data
        deleted = self._base_deleted[dim]
        if deleted:
            live = np.ones(len(data), dtype=bool)
            live[np.fromiter(deleted, dtype=np.int64)] = False
            keys = {int(k) for k in data[live]}
        else:
            keys = {int(k) for k in data}
        for row in self._wos[dim]:
            if row.delete_epoch is None:
                keys.add(int(row.values[key_column]))
        return keys

    def _check_fact_references(self, rows: Sequence[Dict[str, Value]]
                               ) -> None:
        for fk, (dim, key_column) in VALIDATED_FOREIGN_KEYS.items():
            known = self._visible_dim_keys(dim, key_column)
            for row in rows:
                if int(row[fk]) not in known:
                    raise IntegrityError(
                        f"insert into {FACT_TABLE!r}: {fk}={row[fk]} "
                        f"references no live {dim!r} row"
                    )

    def _check_dimension_uniqueness(self, table: str, base: Table,
                                    rows: Sequence[Dict[str, Value]]
                                    ) -> None:
        key_column = base.columns()[0].name
        known = self._visible_dim_keys(table, key_column)
        batch: Set[int] = set()
        for row in rows:
            key = int(row[key_column])
            if key in known or key in batch:
                raise IntegrityError(
                    f"insert into {table!r}: duplicate key "
                    f"{key_column}={key}"
                )
            batch.add(key)

    def _check_dimension_unreferenced(self, dim: str, key_column: str,
                                      keys: Set[int]) -> None:
        fact = self._base[FACT_TABLE]
        deleted = self._base_deleted[FACT_TABLE]
        keys_arr = np.fromiter(sorted(keys), dtype=np.int64)
        for fk, (ref_dim, _key) in VALIDATED_FOREIGN_KEYS.items():
            if ref_dim != dim:
                continue
            hits = np.isin(fact.column(fk).data.astype(np.int64), keys_arr)
            if deleted:
                hits[np.fromiter(deleted, dtype=np.int64)] = False
            if bool(hits.any()):
                pos = int(np.flatnonzero(hits)[0])
                raise IntegrityError(
                    f"delete from {dim!r} RESTRICTed: live "
                    f"{FACT_TABLE!r} row {pos} references "
                    f"{fk}={int(fact.column(fk).data[pos])}"
                )
            for row in self._wos[FACT_TABLE]:
                if row.delete_epoch is None and int(row.values[fk]) in keys:
                    raise IntegrityError(
                        f"delete from {dim!r} RESTRICTed: buffered "
                        f"{FACT_TABLE!r} row references {fk}="
                        f"{row.values[fk]}"
                    )

    # ------------------------------------------------------------------ #
    # snapshot reads
    # ------------------------------------------------------------------ #
    def visibility(self, epoch: Optional[int] = None) -> Visibility:
        """What a reader pinned at ``epoch`` (default: now) may see."""
        if epoch is None:
            epoch = self.epoch
        if epoch < self.horizon:
            raise SnapshotTooOldError(
                f"epoch {epoch} predates the merge horizon {self.horizon}; "
                f"pin a fresh epoch and retry"
            )
        fact = self._base[FACT_TABLE]
        deleted = [pos for pos, ep in self._base_deleted[FACT_TABLE].items()
                   if ep <= epoch]
        mask: Optional[np.ndarray] = None
        if deleted:
            mask = np.zeros(fact.num_rows, dtype=bool)
            mask[np.asarray(deleted, dtype=np.int64)] = True
        visible = [r for r in self._wos[FACT_TABLE] if r.visible_at(epoch)]
        wos_table = self._rows_as_table(FACT_TABLE, visible)
        return Visibility(epoch=epoch, store=self, fact_deleted=mask,
                          fact_wos=wos_table)

    def effective_table(self, name: str, epoch: Optional[int] = None
                        ) -> Table:
        """``name`` as of ``epoch`` with all deltas applied.

        A table with no visible changes is returned as the *same* base
        object (preserving its original sort metadata); a changed fact
        table is re-sorted on :data:`FACT_SORT_KEYS`, a changed dimension
        ascending on its key — the orders a cold rebuild would produce.
        """
        if epoch is None:
            epoch = self.epoch
        if epoch < self.horizon:
            raise SnapshotTooOldError(
                f"epoch {epoch} predates the merge horizon {self.horizon}"
            )
        base = self.base_table(name)
        deleted = [pos for pos, ep in self._base_deleted[name].items()
                   if ep <= epoch]
        visible = [r for r in self._wos[name] if r.visible_at(epoch)]
        if not deleted and not visible:
            return base
        if deleted:
            live = np.ones(base.num_rows, dtype=bool)
            live[np.asarray(deleted, dtype=np.int64)] = False
            kept = base.take(np.flatnonzero(live))
        else:
            kept = base
        wos_table = self._rows_as_table(name, visible)
        merged = _concat_tables(name, base, kept, wos_table)
        if name == FACT_TABLE:
            return merged.sort_by(FACT_SORT_KEYS)
        return merged.sort_by((base.columns()[0].name,))

    def effective_tables(self, epoch: Optional[int] = None
                         ) -> Dict[str, Table]:
        """Every table as of ``epoch`` (the tuple mover's input)."""
        return {n: self.effective_table(n, epoch) for n in self._base}

    def deleted_fact_positions_sorted(
        self, sort_keys: Tuple[str, ...], epoch: int
    ) -> np.ndarray:
        """Deleted base fact rows as positions in the projection whose
        sort order is ``sort_keys`` (cached per (epoch, keys)).

        The default fact projection shares the base order, so positions
        are the base row numbers; other projections permute by lexsort
        exactly as :meth:`Table.sort_by` does.
        """
        key = (epoch, tuple(sort_keys))
        cached = self._proj_cache.get(key)
        if cached is not None:
            return cached
        base = self._base[FACT_TABLE]
        deleted = np.asarray(
            sorted(pos for pos, ep in self._base_deleted[FACT_TABLE].items()
                   if ep <= epoch),
            dtype=np.int64,
        )
        if len(deleted) and tuple(sort_keys) not in ((), base.sort_order.keys):
            perm = np.lexsort(
                [base.column(k).data for k in reversed(sort_keys)]
            )
            inverse = np.empty(base.num_rows, dtype=np.int64)
            inverse[perm] = np.arange(base.num_rows, dtype=np.int64)
            deleted = np.sort(inverse[deleted])
        self._proj_cache[key] = deleted
        return deleted

    # ------------------------------------------------------------------ #
    # tuple mover hand-off
    # ------------------------------------------------------------------ #
    def complete_move(self, tables: Dict[str, Table]) -> None:
        """Adopt the rebuilt base tables; advance the merge horizon.

        Called by an engine's tuple mover *after* its shadow rebuild
        succeeded and was swapped in.  Epochs below the new horizon are
        gone; the journal (its own disk) is untouched.
        """
        if set(tables) != set(self._base):
            raise WriteError(
                f"tuple move must cover every table; got {sorted(tables)}"
            )
        self._base = dict(tables)
        self._wos = {n: [] for n in tables}
        self._base_deleted = {n: {} for n in tables}
        self._proj_cache.clear()
        self.horizon = self.epoch

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _rows_as_table(self, name: str, rows: Sequence[WosRow]
                       ) -> Optional[Table]:
        """Materialize WOS rows columnar, borrowing the base's types and
        (fixed-domain) dictionaries.  None when ``rows`` is empty."""
        if not rows:
            return None
        base = self._base[name]
        columns: List[Column] = []
        for col in base.columns():
            if col.dictionary is not None:
                data = np.asarray(
                    [col.dictionary.code(r.values[col.name]) for r in rows],
                    dtype=col.data.dtype,
                )
            else:
                data = np.asarray([r.values[col.name] for r in rows],
                                  dtype=col.data.dtype)
            columns.append(Column(col.name, col.ctype, data, col.dictionary))
        return Table(name, columns, SortOrder(()))


def _concat_tables(name: str, base: Table, kept: Table,
                   wos: Optional[Table]) -> Table:
    """Surviving base rows followed by WOS rows, column by column."""
    if wos is None:
        return kept
    columns: List[Column] = []
    for col in base.columns():
        data = np.concatenate(
            [kept.column(col.name).data, wos.column(col.name).data]
        )
        columns.append(Column(col.name, col.ctype, data, col.dictionary))
    return Table(name, columns, SortOrder(()))


def projection_deleted_positions(table: Table, sort_keys: Sequence[str],
                                 deleted_mask: np.ndarray) -> np.ndarray:
    """Deleted row numbers of ``table`` mapped into the position space of
    a projection sorted on ``sort_keys``.

    The default fact projection keeps the table's own order, so positions
    are the row numbers themselves; any other projection permutes by the
    same stable lexsort :meth:`Table.sort_by` (and projection creation)
    uses, so the mapping is exact.
    """
    deleted = np.flatnonzero(deleted_mask).astype(np.int64)
    keys = tuple(sort_keys)
    if len(deleted) == 0 or not keys or table.sort_order.keys == keys:
        return deleted
    perm = np.lexsort([table.column(k).data for k in reversed(keys)])
    inverse = np.empty(table.num_rows, dtype=np.int64)
    inverse[perm] = np.arange(table.num_rows, dtype=np.int64)
    return np.sort(inverse[deleted])


def _row_matches(values: Dict[str, Value], pred: Predicate) -> bool:
    """Evaluate one conjunct against a logical row (WOS side).

    String comparisons are plain lexicographic — sound because the
    column dictionaries are order-preserving, so this agrees exactly
    with the code-domain evaluation used on base columns.
    """
    v = values[pred.column]
    if isinstance(pred, Comparison):
        return {
            CompareOp.EQ: v == pred.value,
            CompareOp.LT: v < pred.value,
            CompareOp.LE: v <= pred.value,
            CompareOp.GT: v > pred.value,
            CompareOp.GE: v >= pred.value,
        }[pred.op]
    if isinstance(pred, RangePredicate):
        return pred.low <= v <= pred.high
    if isinstance(pred, InSet):
        return v in pred.values
    raise WriteError(f"unknown predicate type {type(pred).__name__}")


__all__ = [
    "WriteStore",
    "Visibility",
    "WosRow",
    "FACT_TABLE",
    "VALIDATED_FOREIGN_KEYS",
    "projection_deleted_positions",
]
