"""The durability verifier: ``python -m repro.write.verify``.

Drives both engines through a deterministic DML workload with one seeded
kill point armed, crashes, cold-starts, replays the redo journal, and
asserts the exactly-once contract:

* every **acknowledged** write is present after recovery;
* every **unacknowledged** write is absent;
* never a partial batch;
* :meth:`snapshot_tables` of the recovered engine is row-identical to an
  independent replay of exactly the acknowledged operations;
* all 13 SSB queries return rows identical to a never-crashed reference
  engine built at the same epoch.

Exit status 0 when every (engine × crash point) cycle holds, 1 with a
listing of violations otherwise.  ``--crash-profile`` picks a named
group of kill points (``journal``, ``move``, ``all``; see
``repro.simio.faults.CRASH_PROFILES``), ``--crash-point`` pins a single
one.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.config import ExecutionConfig
from ..plan.logical import ColumnRef, CompareOp, Comparison
from ..simio.faults import (CRASH_POINTS, CRASH_PROFILE_NOTES,
                            CRASH_PROFILES, CrashPolicy)
from ..simio.stats import QueryStats
from ..ssb.generator import SsbData, generate
from ..ssb.queries import all_queries
from .recovery import CrashHarness, RecoveryReport

#: Queries run row-identical against the never-crashed reference.
VERIFY_SF = 0.004


def _clone_rows(table, count: int) -> List[Dict]:
    """The first ``count`` rows of ``table`` as insert dicts (decoded
    strings), so every clone validates and every foreign key resolves."""
    rows = []
    for i in range(count):
        row = {}
        for col in table.columns():
            value = col.data[i]
            if col.dictionary is not None:
                row[col.name] = col.dictionary.decode(np.array([value]))[0]
            else:
                row[col.name] = int(value)
        rows.append(row)
    return rows


def _delete_predicates():
    return [Comparison(ColumnRef("lineorder", "quantity"),
                       CompareOp.LT, 3)]


def _drive_workload(harness: CrashHarness, rows: Sequence[Dict]) -> None:
    """Insert / delete / move / insert until done or the crash fires."""
    half = len(rows) // 2
    steps = [
        lambda: harness.insert("lineorder", rows[:half]),
        lambda: harness.insert("lineorder", rows[half:]),
        lambda: harness.delete("lineorder", _delete_predicates()),
        lambda: harness.move(),
        lambda: harness.insert("lineorder", rows[:2]),
    ]
    for step in steps:
        if step() is None and harness.crashed is not None:
            return


def _reference_engine(kind: str, data: SsbData, harness: CrashHarness):
    """A never-crashed engine at the recovered epoch: genesis data plus
    exactly the acknowledged operations, built fresh."""
    ref = harness.reference_store()
    eff = ref.effective_tables()
    ref_data = SsbData(
        scale_factor=data.scale_factor, seed=data.seed,
        lineorder=eff["lineorder"], customer=eff["customer"],
        supplier=eff["supplier"], part=eff["part"], date=eff["date"])
    if kind == "cs":
        from ..colstore.engine import CStore
        from ..storage.colfile import CompressionLevel

        return ref, CStore(ref_data, levels=(CompressionLevel.MAX,))
    from ..rowstore.designs import DesignKind
    from ..rowstore.engine import SystemX

    return ref, SystemX(ref_data, designs=(DesignKind.TRADITIONAL,))


def _execute(kind: str, engine, query):
    if kind == "cs":
        config = ExecutionConfig(writes=True)
        return engine.execute(query, config)
    from ..rowstore.designs import DesignKind

    return engine.execute(query, DesignKind.TRADITIONAL)


def verify_crash_point(kind: str, point: str, data: SsbData,
                       seed: int = 0) -> List[str]:
    """One crash → recover → verify cycle.  Returns violations (empty =
    the exactly-once contract held)."""
    problems: List[str] = []
    tag = f"[{kind} {point}]"
    # the workload passes each journal point several times (seed-drawn
    # arrival) but runs exactly one move, so move points pin arrival 1
    max_at = 1 if "move" in point else 2
    harness = CrashHarness(
        data, kind=kind, seed=seed,
        crashes=[CrashPolicy(point, at=None, max_at=max_at)])
    rows = _clone_rows(data.lineorder, 8)
    _drive_workload(harness, rows)
    if harness.crashed is None:
        problems.append(f"{tag} kill point never fired (workload too "
                        f"short for its arrival draw)")
        return problems
    report = harness.crash_and_recover()
    ref, ref_engine = _reference_engine(kind, data, harness)

    # acked present / unacked absent / never partial: the recovered
    # snapshot must equal the acked-only replay, column for column
    recovered = harness.engine.snapshot_tables()
    expected = ref.effective_tables()
    for name in sorted(expected):
        for col in expected[name].columns():
            got = recovered[name].column(col.name).data
            if not np.array_equal(col.data, got):
                problems.append(
                    f"{tag} table {name}.{col.name} diverges from the "
                    f"acked-only replay ({len(col.data)} vs "
                    f"{len(got)} rows)")
                break
    if harness.engine._writes.epoch != ref.epoch:
        problems.append(
            f"{tag} recovered epoch {harness.engine._writes.epoch} != "
            f"reference epoch {ref.epoch}")

    # all 13 queries row-identical to the never-crashed reference
    for query in all_queries():
        run = _execute(kind, harness.engine, query)
        ref_run = _execute(kind, ref_engine, query)
        if run.result.rows != ref_run.result.rows:
            problems.append(f"{tag} query {query.name} diverges after "
                            f"recovery")
    if not problems and report.records_scanned == 0 and harness.acked:
        problems.append(f"{tag} acked writes exist but replay scanned "
                        f"no records")
    return problems


def verify_clean_start(kind: str, data: SsbData) -> List[str]:
    """A never-written engine must recover as a no-op with every new
    counter zero (the byte-identity guarantee for clean ledgers)."""
    problems: List[str] = []
    harness = CrashHarness(data, kind=kind)
    stats = QueryStats()
    report = harness.engine.recover(stats=stats)
    if not report.clean:
        problems.append(f"[{kind} clean] recovery was not a no-op: "
                        f"{report.render()}")
    for counter in ("journal_replay_pages", "recovered_batches",
                    "torn_tail_records"):
        if getattr(stats, counter):
            problems.append(f"[{kind} clean] {counter} nonzero on a "
                            f"clean start")
    run = _execute(kind, harness.engine, all_queries()[0])
    for counter in ("journal_replay_pages", "recovered_batches",
                    "torn_tail_records"):
        if getattr(run.stats, counter):
            problems.append(f"[{kind} clean] query ledger carries "
                            f"{counter} on a clean start")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.write.verify",
        description="Durability verifier: crash, cold-start, replay, "
                    "and assert exactly-once effects on both engines.")
    parser.add_argument("--sf", type=float, default=VERIFY_SF,
                        help=f"scale factor (default {VERIFY_SF})")
    parser.add_argument("--seed", type=int, default=0,
                        help="crash-schedule seed (default 0)")
    parser.add_argument("--engine", choices=("cs", "rs", "both"),
                        default="both")
    parser.add_argument("--crash-point", choices=CRASH_POINTS,
                        help="verify a single kill point")
    parser.add_argument("--crash-profile", default="all",
                        help="named kill-point group (journal|move|all), "
                             "or 'list' to enumerate")
    args = parser.parse_args(argv)

    if args.crash_profile == "list":
        for name in sorted(CRASH_PROFILES):
            print(f"{name:>8}: {CRASH_PROFILE_NOTES[name]}")
        return 0
    if args.crash_point:
        points = (args.crash_point,)
    else:
        if args.crash_profile not in CRASH_PROFILES:
            print(f"unknown crash profile {args.crash_profile!r}; "
                  f"choices are {sorted(CRASH_PROFILES)}", file=sys.stderr)
            return 2
        points = CRASH_PROFILES[args.crash_profile]
    kinds = ("cs", "rs") if args.engine == "both" else (args.engine,)

    data = generate(scale_factor=args.sf, seed=7)
    problems: List[str] = []
    for kind in kinds:
        clean = verify_clean_start(kind, data)
        problems.extend(clean)
        print(f"{kind}: clean start {'OK' if not clean else 'VIOLATED'}")
        for point in points:
            found = verify_crash_point(kind, point, data, seed=args.seed)
            problems.extend(found)
            print(f"{kind}: {point} "
                  f"{'OK' if not found else 'VIOLATED'}")
    if problems:
        print(f"\n{len(problems)} durability violations:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(f"\ndurability verified: {len(kinds)} engine(s) x "
          f"{len(points)} kill point(s), acked present / unacked absent "
          f"/ 13 queries row-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
