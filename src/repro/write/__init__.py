"""repro.write — delta store, MVCC snapshots, and the tuple mover's API.

See ``docs/writes.md``.  The package makes both engines writable without
touching their read-optimized formats: writes buffer in a row-format WOS
(:class:`WriteStore`) behind a priced redo journal (:class:`RedoJournal`);
snapshot reads pin an epoch and merge base pages with the delta
(:class:`Visibility`, :func:`delta_partial`); the engines' tuple movers
drain the WOS into fresh base pages and advance the merge horizon.
"""

from .delta import delta_partial
from .journal import JOURNAL_FILE, MAX_WRITE_RETRIES, RedoJournal
from .store import (
    FACT_TABLE,
    VALIDATED_FOREIGN_KEYS,
    Visibility,
    WosRow,
    WriteStore,
    projection_deleted_positions,
)

__all__ = [
    "WriteStore",
    "Visibility",
    "WosRow",
    "RedoJournal",
    "delta_partial",
    "FACT_TABLE",
    "VALIDATED_FOREIGN_KEYS",
    "JOURNAL_FILE",
    "MAX_WRITE_RETRIES",
    "projection_deleted_positions",
]
