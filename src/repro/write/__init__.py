"""repro.write — delta store, MVCC snapshots, and the tuple mover's API.

See ``docs/writes.md``.  The package makes both engines writable without
touching their read-optimized formats: writes buffer in a row-format WOS
(:class:`WriteStore`) behind a priced redo journal (:class:`RedoJournal`);
snapshot reads pin an epoch and merge base pages with the delta
(:class:`Visibility`, :func:`delta_partial`); the engines' tuple movers
drain the WOS into fresh base pages and advance the merge horizon.
Cold-start crash recovery (:mod:`repro.write.recovery`) replays the
journal after a simulated crash — see ``docs/writes.md``, "Crash
recovery", and the durability verifier ``python -m repro.write.verify``.
"""

from .delta import delta_partial
from .journal import JOURNAL_FILE, MAX_WRITE_RETRIES, RedoJournal
from .recovery import (
    CrashHarness,
    RecoveryReport,
    recover_engine,
    recover_store,
    scan_journal,
)
from .store import (
    FACT_TABLE,
    VALIDATED_FOREIGN_KEYS,
    Visibility,
    WosRow,
    WriteStore,
    projection_deleted_positions,
)

__all__ = [
    "WriteStore",
    "Visibility",
    "WosRow",
    "RedoJournal",
    "delta_partial",
    "FACT_TABLE",
    "VALIDATED_FOREIGN_KEYS",
    "JOURNAL_FILE",
    "MAX_WRITE_RETRIES",
    "projection_deleted_positions",
    "CrashHarness",
    "RecoveryReport",
    "recover_engine",
    "recover_store",
    "scan_journal",
]
