"""The append-only redo journal behind every accepted write.

Writes are priced like everything else in the reproduction: each accepted
batch is serialized to JSON, chunked into 32 KB pages, and appended to a
journal file on a *dedicated* simulated disk — dedicated so the journal
survives the tuple mover swapping the engine's data disk underneath it,
and so journal I/O lands on the ledger of the write that caused it rather
than whichever query happens to be running.

Appends share the read path's failure model: the disk's fault injector
may fail an ``append_page`` transiently, and the journal retries with the
*same* bounded backoff schedule the buffer pool uses for reads (the
constants are imported, not copied, so the two schedules can never
drift).  A page that keeps failing past the retry bound raises
:class:`~repro.errors.WriteFaultError`; the caller is guaranteed that no
write-store state was mutated.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from ..errors import TransientIOError, WriteFaultError
from ..obs import Tracer, span_context
from ..simio.buffer_pool import MAX_READ_RETRIES, _backoff_us
from ..simio.disk import PAGE_SIZE, SimulatedDisk
from ..simio.faults import (CRASH_AFTER_JOURNAL_APPEND,
                            CRASH_BEFORE_JOURNAL_APPEND, crash_point)
from ..simio.stats import QueryStats

#: Write retries share the read path's bound — one knob, two paths.
MAX_WRITE_RETRIES = MAX_READ_RETRIES

#: The single journal file on the journal's private disk.
JOURNAL_FILE = "journal.redo"


class RedoJournal:
    """An append-only JSON record log on its own simulated disk."""

    def __init__(self) -> None:
        self.disk = SimulatedDisk()
        self.disk.create(JOURNAL_FILE)
        #: number of records appended (not pages; a record may span pages)
        self.records = 0

    @property
    def num_pages(self) -> int:
        return self.disk.file(JOURNAL_FILE).num_pages

    @property
    def lsn(self) -> int:
        """The LSN of the last appended record (1-based record ordinal)."""
        return self.records

    def append(self, record: Dict, stats: QueryStats,
               tracer: Optional[Tracer] = None) -> int:
        """Serialize ``record``, append it page by page, return page count.

        All journal I/O (including failed attempts and their backoff) is
        charged to ``stats``.  Raises :class:`WriteFaultError` after
        :data:`MAX_WRITE_RETRIES` consecutive failures on one page; pages
        already appended stay appended (a torn record tail is detectable
        and harmless — the record was never acknowledged).

        The two journal kill points bracket this method's I/O:
        ``crash:before-journal-append`` dies with nothing of the record
        durable, ``crash:after-journal-append`` dies with the record
        fully durable but the caller never acknowledged.
        """
        crash_point(self.disk.fault_injector, CRASH_BEFORE_JOURNAL_APPEND)
        payload = json.dumps(record, sort_keys=True,
                             separators=(",", ":")).encode("ascii")
        chunks = [payload[i:i + PAGE_SIZE]
                  for i in range(0, len(payload), PAGE_SIZE)]
        saved = self.disk.stats
        self.disk.stats = stats
        try:
            with span_context(tracer, "journal-append"):
                for chunk in chunks:
                    self._append_with_retry(chunk, stats)
                stats.journal_pages += len(chunks)
        finally:
            self.disk.stats = saved
        self.records += 1
        crash_point(self.disk.fault_injector, CRASH_AFTER_JOURNAL_APPEND)
        return len(chunks)

    def truncate_pages(self, keep_pages: int) -> None:
        """Physically drop every journal page past ``keep_pages``.

        Recovery uses this to erase a torn tail so that a second recovery
        of the same journal sees a clean end — truncation is what makes
        replay idempotent.
        """
        f = self.disk.file(JOURNAL_FILE)
        del f.pages[keep_pages:]
        del f.checksums[keep_pages:]

    def _append_with_retry(self, chunk: bytes, stats: QueryStats) -> None:
        for attempt in range(1, MAX_WRITE_RETRIES + 1):
            try:
                self.disk.append_page(JOURNAL_FILE, chunk)
                return
            except TransientIOError as exc:
                stats.io_retries += 1
                stats.retry_backoff_us += _backoff_us(attempt)
                if attempt == MAX_WRITE_RETRIES:
                    raise WriteFaultError(
                        f"journal append to {JOURNAL_FILE!r} failed after "
                        f"{MAX_WRITE_RETRIES} attempts: {exc}"
                    ) from exc


__all__ = ["RedoJournal", "JOURNAL_FILE", "MAX_WRITE_RETRIES"]
