"""The delta evaluator: one query over the visible WOS fact rows.

A snapshot read whose epoch sees buffered fact inserts cannot be answered
from base pages alone.  The engines run their normal (patched) plan over
the base and ask this module for a *partial* over the WOS side — the
visible WOS fact rows joined against the effective dimensions — then
merge the two partials with the scatter-gather combiner, exactly as if
the WOS were one more shard.

The WOS is in-memory by design (that is the point of a write-optimized
store), so the delta pays no I/O; it pays honest *compute*: scalar
predicate evaluation per buffered row, a hash probe per surviving row
per joined dimension, and an aggregate update per surviving row, all
recorded under the ``wos-merge`` span by the caller.  ``delta_rows_merged``
counts the buffered rows examined, so a read-only run is provably
delta-free (the counter stays zero).
"""

from __future__ import annotations

from typing import Dict

from ..plan.logical import StarQuery
from ..reference.engine import execute, selected_positions
from ..result import ResultSet
from ..simio.stats import QueryStats
from ..storage.table import Table


def delta_partial(query: StarQuery, tables: Dict[str, Table],
                  stats: QueryStats) -> ResultSet:
    """Evaluate ``query`` over the delta tables, charging ``stats``.

    ``tables`` comes from :meth:`repro.write.store.Visibility.delta_tables`:
    the visible WOS fact rows plus effective dimensions.  The result is a
    gather-ready partial (the caller passes the same rewritten shard
    query it ran over the base, so hidden aggregates line up).
    """
    fact = tables[query.fact_table]
    n = fact.num_rows
    stats.delta_rows_merged += n
    # every buffered row is checked against the fact conjuncts (at least
    # one pass even for an unpredicated query: visibility itself reads
    # the row)
    stats.values_scanned_scalar += n * max(1, len(query.fact_predicates()))
    survivors = selected_positions(tables, query)
    dims = query.dimensions_used()
    stats.hash_probes += len(survivors) * len(dims)
    stats.agg_updates += len(survivors)
    return execute(tables, query)


__all__ = ["delta_partial"]
