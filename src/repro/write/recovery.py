"""Crash recovery: cold-start redo replay and the crash/restart harness.

PR 8 made every accepted write durable-in-principle — journaled before
any buffer mutated — but nothing ever *read* the journal back.  This
module closes the loop:

* :func:`scan_journal` walks ``journal.redo`` page by page, CRC-checks
  every page, retries transient reads with the buffer pool's backoff
  schedule, and re-assembles records (a record is complete exactly when
  its accumulated pages parse as JSON — a strict JSON prefix never
  parses, so parse success delimits records without any framing bytes);
* :func:`recover_store` replays the surviving records in LSN order
  against the genesis base tables, truncates a torn/unacknowledged
  tail, rolls a durable ``move`` record forward, and raises a typed
  :class:`~repro.errors.JournalTornError` only when a *committed* LSN is
  missing — an acknowledged write would otherwise be silently lost;
* :func:`recover_engine` (reached via ``CStore.recover()`` /
  ``SystemX.recover()``) adopts the recovered write store, rebuilds the
  engine's base storage when a rolled-forward move left the serving
  pages behind the merge horizon, and re-derives zone-map sidecars whose
  epoch stamp trails the recovered epoch by reusing the scrubber's
  stale-synopsis pass;
* :class:`CrashHarness` drives the whole cycle deterministically: armed
  :class:`~repro.simio.faults.CrashPolicy` kill points "kill" the
  process mid-write, the harness discards every in-memory structure and
  re-opens the database from the simulated disk alone.

All replay I/O is priced through the cost model into three counters —
``journal_replay_pages``, ``recovered_batches``, ``torn_tail_records`` —
that stay zero on clean starts, so every pre-existing ledger and trace
remains byte-identical.

The LSN is the 1-based record ordinal in the journal.  A caller that
tracks acknowledgements (the harness, the durability verifier) passes
the last acknowledged LSN as ``committed_lsn``; records beyond it are an
unacknowledged tail and are truncated — except a durable ``move``
record, whose journal append *is* the swap's commit point and is always
rolled forward.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import JournalTornError, SimulatedCrashError, TransientIOError
from ..obs import Tracer, span_context
from ..simio.buffer_pool import MAX_READ_RETRIES, _backoff_us
from ..simio.faults import CrashPolicy, FaultInjector, FaultPolicy
from ..simio.stats import QueryStats
from ..storage.table import Table
from .journal import JOURNAL_FILE, RedoJournal
from .store import WriteStore


@dataclass
class JournalRecord:
    """One fully-recovered journal record and where it lives on disk."""

    lsn: int  #: 1-based record ordinal
    end_page: int  #: exclusive page bound of the record's last page
    record: Dict


@dataclass
class RecoveryReport:
    """What one cold-start recovery scanned, replayed, and repaired."""

    records_scanned: int = 0  #: records fully parsed from the journal
    recovered_batches: int = 0  #: DML records replayed into the WOS
    moves_rolled_forward: int = 0  #: durable move records rolled forward
    torn_tail_records: int = 0  #: tail records truncated (torn/unacked)
    replay_pages: int = 0  #: journal pages scanned by this recovery
    epoch: int = 0  #: write epoch after replay
    horizon: int = 0  #: merge horizon after replay
    stale_sidecars: int = 0  #: zone-map sidecars re-derived (scrub pass)
    behind_delta: int = 0  #: sidecars merely trailing the pending delta
    trace: object = None  #: span tree when a tracer drove the recovery

    @property
    def clean(self) -> bool:
        """True when nothing needed replaying or truncating."""
        return (self.records_scanned == 0 and self.torn_tail_records == 0
                and self.stale_sidecars == 0)

    def render(self) -> str:
        return (
            f"recovery: {self.records_scanned} records scanned, "
            f"{self.recovered_batches} batches replayed, "
            f"{self.moves_rolled_forward} moves rolled forward, "
            f"{self.torn_tail_records} torn-tail records truncated, "
            f"{self.replay_pages} journal pages read "
            f"(epoch {self.epoch}, horizon {self.horizon}, "
            f"{self.stale_sidecars} stale sidecars re-derived)"
        )


def scan_journal(journal: RedoJournal, stats: QueryStats,
                 tracer: Optional[Tracer] = None
                 ) -> Tuple[List[JournalRecord], bool]:
    """Read every journal page, CRC-validate, and re-assemble records.

    Returns ``(records, torn)`` where ``torn`` is True when the journal
    ends in bytes that never completed a record — an unreadable page, a
    CRC failure, or a parse-incomplete tail.  Transient read faults are
    retried with the buffer pool's backoff schedule (charged to
    ``io_retries``/``retry_backoff_us``); a page that stays unreadable
    is treated as the start of the torn region, not an error — whether
    that loses anything *committed* is decided by the caller against its
    ``committed_lsn``.
    """
    disk = journal.disk
    f = disk.file(JOURNAL_FILE)
    records: List[JournalRecord] = []
    torn = False
    saved = disk.stats
    disk.stats = stats
    try:
        with span_context(tracer, "journal-replay"):
            buffer = b""
            for page_no in range(f.num_pages):
                payload = None
                for attempt in range(1, MAX_READ_RETRIES + 1):
                    try:
                        payload = disk.read_page(JOURNAL_FILE, page_no)
                        break
                    except TransientIOError:
                        stats.io_retries += 1
                        stats.retry_backoff_us += _backoff_us(attempt)
                if payload is None or not disk.verify_page(
                        JOURNAL_FILE, page_no, payload):
                    torn = True
                    break
                stats.journal_replay_pages += 1
                buffer += payload
                try:
                    record = json.loads(buffer.decode("ascii"))
                except (ValueError, UnicodeDecodeError):
                    continue  # record spans further pages
                records.append(JournalRecord(lsn=len(records) + 1,
                                             end_page=page_no + 1,
                                             record=record))
                buffer = b""
            if buffer:
                torn = True
    finally:
        disk.stats = saved
    return records, torn


def recover_store(base_tables: Dict[str, Table], journal: RedoJournal,
                  committed_lsn: Optional[int] = None,
                  stats: Optional[QueryStats] = None,
                  tracer: Optional[Tracer] = None
                  ) -> Tuple[WriteStore, RecoveryReport]:
    """Rebuild a :class:`WriteStore` from genesis ``base_tables`` plus
    the surviving ``journal``.

    Records up to ``committed_lsn`` (default: every fully-parsed record)
    are replayed in order; a shorter journal raises
    :class:`~repro.errors.JournalTornError` — an acknowledged write
    would be lost.  Beyond the committed prefix, durable ``move``
    records roll forward (the move record is the swap's commit point);
    everything after the first non-move tail record is truncated from
    the journal, physically, so recovering twice is idempotent.
    """
    if stats is None:
        stats = QueryStats()
    records, torn = scan_journal(journal, stats, tracer)
    committed = len(records) if committed_lsn is None else committed_lsn
    if len(records) < committed:
        raise JournalTornError(
            f"journal holds {len(records)} valid records but LSN "
            f"{committed} was acknowledged; refusing to silently lose a "
            f"committed write"
        )
    kept = records[:committed]
    dropped = 0
    for rec in records[committed:]:
        if rec.record.get("op") == "move" and dropped == 0:
            kept.append(rec)  # durable commit point: roll forward
        else:
            dropped += 1
    stats.torn_tail_records += dropped + (1 if torn else 0)
    keep_pages = kept[-1].end_page if kept else 0
    if journal.num_pages > keep_pages:
        journal.truncate_pages(keep_pages)
    journal.records = len(kept)

    ws = WriteStore(dict(base_tables), journal=journal)
    report = RecoveryReport(records_scanned=len(records),
                            torn_tail_records=dropped + (1 if torn else 0))
    with span_context(tracer, "journal-apply"):
        for rec in kept:
            ws.apply_record(rec.record)
            if rec.record.get("op") == "move":
                report.moves_rolled_forward += 1
            else:
                report.recovered_batches += 1
                stats.recovered_batches += 1
    report.replay_pages = stats.journal_replay_pages
    report.epoch = ws.epoch
    report.horizon = ws.horizon
    return ws, report


def recover_engine(engine, journal: Optional[RedoJournal] = None,
                   committed_lsn: Optional[int] = None,
                   stats: Optional[QueryStats] = None,
                   tracer: Optional[Tracer] = None) -> RecoveryReport:
    """Cold-start recovery for one engine (CStore or SystemX).

    Replays ``journal`` (default: the engine's own, when it has ever
    written) against the engine's *genesis* tables — never the current,
    possibly-moved base, which is what makes recovering twice a no-op —
    then:

    * adopts the recovered write store (pending rows serve as ordinary
      snapshot reads);
    * when a rolled-forward move advanced the merge horizon past the
      epoch the serving pages reflect, rebuilds base storage from the
      recovered effective tables through the same shadow-build path the
      tuple mover uses (kill points disarmed: recovery never re-crashes);
    * for the column store, re-derives any zone-map sidecar whose epoch
      stamp trails the recovered epoch, reusing the scrubber's
      stale-synopsis pass.

    All I/O is charged to ``stats`` through the cost model.  A clean
    start (no journal, or an empty one) touches nothing and reports all
    zeros.
    """
    if stats is None:
        stats = QueryStats()
    if journal is None and engine._writes is not None:
        journal = engine._writes.journal
    if journal is None:
        return RecoveryReport()  # never wrote: nothing to recover
    ws, report = recover_store(dict(engine._genesis_tables), journal,
                               committed_lsn, stats, tracer)
    ws.journal.disk.fault_injector = engine.disk.fault_injector
    engine._writes = ws
    if ws.horizon > 0 and engine._zm_epoch != ws.horizon:
        # a committed move's pages died with the process: roll it
        # forward by rebuilding from the recovered effective tables
        effective = {n: ws.base_table(n) for n in ws.table_names()}
        with span_context(tracer, "recovery-rebuild"):
            shadow = engine._rebuild_from_effective(effective, ws.horizon,
                                                    stats)
            stats.merge(shadow.disk.stats)
            engine._adopt_shadow(shadow)
        engine._zm_epoch = ws.horizon
    if hasattr(engine, "_projections"):
        # column store: the scrubber's stale-synopsis pass re-derives
        # any sidecar whose stamp trails the recovered epoch (heap
        # sidecars are re-stamped wholesale by the rebuild above)
        from ..scrub import rebuild_stale_synopses

        with span_context(tracer, "stale-synopsis"):
            rebuilt, behind = rebuild_stale_synopses(engine)
        report.stale_sidecars = rebuilt
        report.behind_delta = behind
    return report


# --------------------------------------------------------------------- #
# the crash/restart harness
# --------------------------------------------------------------------- #
def _default_factory(kind: str):
    if kind == "cs":
        from ..colstore.engine import CStore
        from ..storage.colfile import CompressionLevel

        return lambda data, inj: CStore(
            data, levels=(CompressionLevel.MAX,), fault_injector=inj)
    if kind == "rs":
        from ..rowstore.engine import SystemX
        from ..rowstore.designs import DesignKind

        return lambda data, inj: SystemX(
            data, designs=(DesignKind.TRADITIONAL,), writes=True,
            fault_injector=inj)
    raise ValueError(f"unknown engine kind {kind!r}; use 'cs' or 'rs'")


class CrashHarness:
    """Deterministic crash → cold restart → recovery, one cycle.

    Drives an engine through DML with seeded kill points armed.  When
    one fires, the attempted operation reports ``None`` (never
    acknowledged) and the harness remembers the crash.  A subsequent
    :meth:`crash_and_recover` throws away the entire engine — every
    in-memory structure — and re-opens from the simulated disk alone:
    fresh engine over the genesis data, surviving redo journal, and a
    replay bounded by the last *acknowledged* LSN.

    The restart injector keeps the fault policies (so replay itself can
    hit transient reads) but drops the crash policies — a restarted
    process does not inherit its predecessor's kill schedule.
    """

    def __init__(self, data, kind: str = "cs", seed: int = 0,
                 crashes: Sequence[CrashPolicy] = (),
                 policies: Sequence[FaultPolicy] = (),
                 make_engine=None) -> None:
        self.data = data
        self.kind = kind
        self.injector = FaultInjector(seed, policies, crashes=crashes)
        self._make = make_engine or _default_factory(kind)
        self.engine = self._make(data, self.injector)
        #: last acknowledged LSN (the harness's "client-side" ledger)
        self.committed_lsn = 0
        #: the crash, once one fired
        self.crashed: Optional[SimulatedCrashError] = None
        #: acknowledged operations, for reference replay
        self.acked: List[Tuple] = []
        #: operations the crash swallowed (attempted, never acked)
        self.unacked: List[Tuple] = []

    def _journal(self) -> Optional[RedoJournal]:
        ws = self.engine._writes
        return None if ws is None else ws.journal

    def insert(self, table: str, rows) -> Optional[int]:
        """Insert; ``None`` means the crash fired and nothing was acked."""
        try:
            n = self.engine.insert(table, rows)
        except SimulatedCrashError as crash:
            self.crashed = crash
            self.unacked.append(("insert", table, rows))
            return None
        self.committed_lsn = self._journal().records
        self.acked.append(("insert", table, rows))
        return n

    def delete(self, table: str, predicates) -> Optional[int]:
        """Delete; ``None`` means the crash fired and nothing was acked."""
        try:
            n = self.engine.delete(table, predicates)
        except SimulatedCrashError as crash:
            self.crashed = crash
            self.unacked.append(("delete", table, predicates))
            return None
        self.committed_lsn = self._journal().records
        self.acked.append(("delete", table, predicates))
        return n

    def move(self) -> Optional[int]:
        """Run the tuple mover; ``None`` means the crash fired mid-move."""
        try:
            n = self.engine.move()
        except SimulatedCrashError as crash:
            self.crashed = crash
            self.unacked.append(("move",))
            return None
        j = self._journal()
        if j is not None:
            self.committed_lsn = j.records
        if n:
            self.acked.append(("move",))
        return n

    def crash_and_recover(self, stats: Optional[QueryStats] = None,
                          tracer: Optional[Tracer] = None) -> RecoveryReport:
        """Discard all in-memory state; re-open from disk and replay."""
        journal = self._journal()
        self.injector = FaultInjector(self.injector.seed,
                                      self.injector.policies)
        self.engine = self._make(self.data, self.injector)
        return self.engine.recover(journal, self.committed_lsn, stats,
                                   tracer)

    def reference_store(self) -> WriteStore:
        """An independent replay of exactly the acknowledged operations
        onto fresh genesis tables — the never-crashed oracle the
        recovered engine must be row-identical to."""
        ws = WriteStore(dict(self.data.tables))
        scratch = QueryStats()
        for op in self.acked:
            if op[0] == "insert":
                ws.insert(op[1], op[2], scratch)
            elif op[0] == "delete":
                ws.delete(op[1], op[2], scratch)
            else:  # a completed move only advances bookkeeping
                ws.complete_move(ws.effective_tables())
        return ws


__all__ = ["JournalRecord", "RecoveryReport", "scan_journal",
           "recover_store", "recover_engine", "CrashHarness"]
