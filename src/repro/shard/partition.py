"""Fact-table sharding: range/hash partitions with per-shard synopses.

A *shard* is a self-contained slice of the SSB database: the fact rows
assigned to it plus the (replicated) dimension tables.  Each engine
materializes one shard onto its **own** simulated disk array, so a
sharded deployment is N independent storage stacks — exactly the
scaling lever the paper's System X pulls with orderdate range
partitioning (Section 6.2), taken one level up.

Two partitioning schemes:

* ``RANGE`` (default): contiguous ``orderdate`` ranges.  The generated
  lineorder table is sorted on (orderdate, quantity, discount), so a
  range shard is a contiguous row slice that *keeps* the sort order —
  sorted projections and year-partitioned heaps inside each shard stay
  exactly as they would be unsharded.  Boundaries are snapped to
  orderdate run boundaries so equal dates never straddle shards, which
  makes the per-shard orderdate intervals disjoint (the property shard
  elimination relies on).
* ``HASH``: rows are assigned by ``orderkey % shards`` — the fallback
  for unsorted designs where no useful range key exists.  Hash shards
  have full-domain synopses, so elimination never fires (honest: hash
  partitioning buys parallelism, not pruning).

Alongside each shard a :class:`ShardSynopsis` records min/max bounds of
every integer fact column, computed from the in-memory arrays at
partition time.  Like the catalog statistics, the synopsis is
catalog-resident: consulting it costs no simulated I/O, which is what
lets the scatter-gather executor eliminate shards *before* touching any
disk.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import PlanError
from ..ssb.generator import SsbData
from ..ssb.schema import FACT_SORT_KEYS
from ..storage.table import SortOrder, Table


class ShardScheme(enum.Enum):
    """How fact rows are assigned to shards."""

    RANGE = "range"
    HASH = "hash"


@dataclass(frozen=True)
class ShardSynopsis:
    """Catalog-resident min/max bounds of one shard's fact columns.

    ``bounds`` covers the integer (non-dictionary) columns only; string
    columns are dictionary-coded per shard and carry no comparable
    range.  An empty shard has ``num_rows == 0`` and no bounds.
    """

    index: int
    num_rows: int
    bounds: Dict[str, Tuple[int, int]]

    def range_of(self, column: str) -> Tuple[int, int]:
        return self.bounds[column]


@dataclass(frozen=True)
class FactShard:
    """One shard: its database slice plus its synopsis.

    ``positions`` maps the shard's fact rows back to row numbers of the
    unsharded fact table (ascending for range shards).  Snapshot reads
    use it to slice a database-wide deleted-mask down to this shard.
    """

    index: int
    data: SsbData
    synopsis: ShardSynopsis
    positions: np.ndarray


def _synopsis(index: int, fact: Table) -> ShardSynopsis:
    bounds: Dict[str, Tuple[int, int]] = {}
    if fact.num_rows:
        for column in fact.columns():
            if column.dictionary is not None:
                continue
            if column.data.dtype.kind not in "iu":
                continue
            bounds[column.name] = (int(column.data.min()),
                                   int(column.data.max()))
    return ShardSynopsis(index, fact.num_rows, bounds)


def _range_boundaries(keys: np.ndarray, shards: int) -> List[int]:
    """Row boundaries of an even split, snapped to key-run boundaries so
    equal keys never straddle a shard (``keys`` must be ascending)."""
    n = len(keys)
    cuts = [0]
    for k in range(1, shards):
        target = (n * k) // shards
        if target <= cuts[-1]:
            cuts.append(cuts[-1])
            continue
        # everything equal to the key at the target stays left
        snapped = int(np.searchsorted(keys, keys[target - 1], side="right"))
        cuts.append(max(cuts[-1], min(snapped, n)))
    cuts.append(n)
    return cuts


def _fact_slice(fact: Table, positions: np.ndarray,
                keep_sort: bool) -> Table:
    taken = fact.take(positions)
    order = SortOrder(tuple(FACT_SORT_KEYS)) if keep_sort else SortOrder(())
    return Table(fact.name, taken.columns(), order)


def partition_data(data: SsbData, shards: int,
                   scheme: ShardScheme = ShardScheme.RANGE,
                   key_column: str = "orderdate") -> List[FactShard]:
    """Split ``data``'s fact table into ``shards`` shards.

    Dimension tables are shared (replicated by reference) — each shard's
    engine loads its own copy onto its own disk, mirroring how real
    shared-nothing deployments replicate small dimensions.
    """
    if shards < 1:
        raise PlanError(f"shards must be >= 1, got {shards}")
    fact = data.lineorder
    out: List[FactShard] = []
    if scheme is ShardScheme.RANGE:
        keys = fact.column(key_column).data
        if len(keys) and np.any(np.diff(keys.astype(np.int64)) < 0):
            raise PlanError(
                f"range sharding needs the fact table sorted on "
                f"{key_column!r}; use ShardScheme.HASH for unsorted "
                f"designs")
        cuts = _range_boundaries(keys, shards)
        for k in range(shards):
            positions = np.arange(cuts[k], cuts[k + 1])
            slice_ = _fact_slice(fact, positions,
                                 keep_sort=bool(fact.sort_order))
            out.append(_shard_of(data, k, slice_, positions))
    else:
        assignment = fact.column("orderkey").data.astype(np.int64) % shards
        for k in range(shards):
            positions = np.flatnonzero(assignment == k)
            slice_ = _fact_slice(fact, positions, keep_sort=False)
            out.append(_shard_of(data, k, slice_, positions))
    return out


def _shard_of(data: SsbData, index: int, fact: Table,
              positions: np.ndarray) -> FactShard:
    shard_data = SsbData(
        scale_factor=data.scale_factor,
        seed=data.seed,
        lineorder=fact,
        customer=data.customer,
        supplier=data.supplier,
        part=data.part,
        date=data.date,
    )
    return FactShard(index, shard_data, _synopsis(index, fact),
                     positions.astype(np.int64))


__all__ = ["ShardScheme", "ShardSynopsis", "FactShard", "partition_data"]
