"""Scatter-gather execution over fact-table shards.

The executor is engine-neutral: it rewrites a :class:`StarQuery` into a
per-shard query whose aggregates are *mergeable*, eliminates shards
whose synopses prove they hold no qualifying rows, runs the surviving
shards through a caller-supplied ``execute_one`` callback (each shard is
a complete engine stack — its own disk array, buffer pool, and morsel
pool), and merges the partial results, the simulated-I/O ledgers, and
the span trees.

Three invariants, all test-enforced:

* **Row identity** — ``shards=N`` returns exactly the rows of
  ``shards=1``.  AVG is the reason the rewrite exists: averaging
  per-shard averages is wrong, so each AVG is scattered as a hidden
  (SUM, COUNT) pair and divided once at the gather.  Scalar MIN/MAX
  need a hidden row count because an *empty* shard's MIN finalizes to
  the engines' 0-normalization, which must not win the global merge.
* **Ledger additivity** — the merged :class:`QueryStats` equals the sum
  of the per-shard ledgers plus the synopsis probes charged by shard
  elimination; nothing is lost or double counted.
* **Trace attribution** — the merged trace has one ``shard:K`` span per
  shard (eliminated shards appear with a zero ledger, mirroring how
  zone maps account skipped blocks), each executed span adopting that
  shard's verified engine trace, and ``Trace.verify`` passes against
  the merged flat ledger.  Gather-side merging is charged nowhere —
  like trace construction itself, it is coordinator bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import Span, Trace
from ..plan.aggregates import empty_accumulator, finalize, merge
from ..plan.logical import (
    AggExpr,
    CompareOp,
    Comparison,
    InSet,
    Literal,
    Predicate,
    RangePredicate,
    StarQuery,
)
from ..reference.predicates import eval_predicate
from ..result import ResultSet
from ..simio.stats import CostModel, QueryStats
from ..storage.table import Table
from .partition import ShardSynopsis

#: alias of the hidden per-shard row count behind scalar MIN/MAX
ROWS_ALIAS = "__shard_rows"


@dataclass(frozen=True)
class GatherSpec:
    """How to scatter a query and merge its partial results.

    ``cells`` has one entry per *original* aggregate: ``("avg", i, j)``
    points at the hidden SUM and COUNT result positions, ``(func, i)``
    at a passthrough position.  Positions index the shard result row
    *after* the group-by prefix.
    """

    shard_query: StarQuery
    cells: Tuple[Tuple, ...]
    rows_pos: Optional[int]


def shard_plan(query: StarQuery) -> GatherSpec:
    """Rewrite ``query`` for per-shard execution.

    ORDER BY and LIMIT move to the gather (a shard cannot know the
    global order or cut-off); AVG scatters as SUM+COUNT; scalar queries
    containing MIN/MAX grow a hidden ``count(1)`` so empty shards can be
    told apart from shards whose true extreme is 0.
    """
    shard_aggs: List[AggExpr] = []
    cells: List[Tuple] = []
    for i, agg in enumerate(query.aggregates):
        if agg.func == "avg":
            cells.append(("avg", len(shard_aggs), len(shard_aggs) + 1))
            shard_aggs.append(AggExpr("sum", agg.expr, f"__shard_{i}_sum"))
            shard_aggs.append(AggExpr("count", agg.expr, f"__shard_{i}_cnt"))
        else:
            cells.append((agg.func, len(shard_aggs)))
            shard_aggs.append(agg)
    rows_pos: Optional[int] = None
    if not query.group_by and any(
        a.func in ("min", "max") for a in query.aggregates
    ):
        # idempotent under re-planning: the WOS merge path plans the
        # already-rewritten shard query again, so reuse a hidden row
        # count that is already present instead of stacking another
        for i, agg in enumerate(shard_aggs):
            if agg.alias == ROWS_ALIAS:
                rows_pos = i
                break
        else:
            rows_pos = len(shard_aggs)
            shard_aggs.append(AggExpr("count", Literal(1), ROWS_ALIAS))
    shard_query = replace(
        query,
        aggregates=tuple(shard_aggs),
        order_by=(),
        limit=None,
    )
    return GatherSpec(shard_query, tuple(cells), rows_pos)


# ---------------------------------------------------------------------- #
# shard elimination
# ---------------------------------------------------------------------- #
def _predicate_interval(pred: Predicate) -> Optional[Tuple[int, int]]:
    """The inclusive int interval a row must fall in to satisfy ``pred``
    (None when the predicate is not interval-describable)."""
    if isinstance(pred, Comparison):
        if isinstance(pred.value, str):
            return None
        v = int(pred.value)
        lo, hi = -(2 ** 63), 2 ** 63 - 1
        return {
            CompareOp.EQ: (v, v),
            CompareOp.LT: (lo, v - 1),
            CompareOp.LE: (lo, v),
            CompareOp.GT: (v + 1, hi),
            CompareOp.GE: (v, hi),
        }[pred.op]
    if isinstance(pred, RangePredicate):
        if isinstance(pred.low, str) or isinstance(pred.high, str):
            return None
        return int(pred.low), int(pred.high)
    return None


def _inset_survives(pred: InSet, bounds: Tuple[int, int]) -> bool:
    """Can any IN-list value fall inside the shard's [min, max]?"""
    values = [v for v in pred.values if not isinstance(v, str)]
    if len(values) != len(pred.values):
        return True  # string list: no comparable bounds, keep the shard
    return any(bounds[0] <= int(v) <= bounds[1] for v in values)


def _date_envelope(query: StarQuery,
                   date_table: Table) -> Optional[Tuple[int, int]]:
    """The [min, max] datekey envelope qualifying the query's date
    predicates: None when unconstrained, ``(1, 0)`` (empty) when no date
    qualifies.  Conservative in between — sound for elimination."""
    if "date" not in query.joins.values():
        return None
    preds = query.dimension_predicates("date")
    if not preds:
        return None
    mask = np.ones(date_table.num_rows, dtype=bool)
    for pred in preds:
        mask &= eval_predicate(date_table.column(pred.column), pred)
    keys = date_table.column(query.key_of("date")).data[mask]
    if len(keys) == 0:
        return (1, 0)
    return int(keys.min()), int(keys.max())


def qualifying_shards(
    query: StarQuery,
    synopses: Sequence[ShardSynopsis],
    date_table: Table,
) -> Tuple[List[bool], int]:
    """Which shards can hold qualifying rows, plus the synopsis probes
    spent deciding.

    A shard survives unless (a) it is empty, (b) a fact predicate's
    interval misses the shard's column bounds, or (c) the query's date
    predicates qualify a datekey envelope disjoint from the shard's
    range on the date FK column.  Every check is against catalog-resident
    metadata — no simulated I/O happens here.
    """
    envelope = _date_envelope(query, date_table)
    date_fk = query.fk_of("date") if envelope is not None else None
    flags: List[bool] = []
    probes = 0
    for syn in synopses:
        if syn.num_rows == 0:
            flags.append(False)
            continue
        keep = True
        if envelope is not None and date_fk in syn.bounds:
            probes += 1
            lo, hi = syn.bounds[date_fk]
            if envelope[0] > hi or envelope[1] < lo:
                keep = False
        if keep:
            for pred in query.fact_predicates():
                if pred.column not in syn.bounds:
                    continue
                probes += 1
                bounds = syn.bounds[pred.column]
                if isinstance(pred, InSet):
                    if not _inset_survives(pred, bounds):
                        keep = False
                        break
                    continue
                interval = _predicate_interval(pred)
                if interval is None:
                    continue
                if interval[0] > bounds[1] or interval[1] < bounds[0]:
                    keep = False
                    break
        flags.append(keep)
    return flags, probes


# ---------------------------------------------------------------------- #
# gather
# ---------------------------------------------------------------------- #
def gather(query: StarQuery, spec: GatherSpec,
           shard_results: Sequence[ResultSet]) -> ResultSet:
    """Merge per-shard partial results into the final result.

    Merging is positional — group-by columns may share names across
    dimensions (Q3.1 groups on two ``nation`` columns), so names cannot
    key anything.  Accumulators use the shared
    :mod:`repro.plan.aggregates` semantics, so the merge is exactly the
    cross-batch merge the engines already perform internally.
    """
    funcs = [agg.func for agg in query.aggregates]
    if not query.group_by:
        accs = [empty_accumulator(f) for f in funcs]
        for result in shard_results:
            if not result.rows:
                continue
            row = result.rows[0]
            if spec.rows_pos is not None and row[spec.rows_pos] == 0:
                empty_shard = True
            else:
                empty_shard = False
            for i, cell in enumerate(spec.cells):
                if cell[0] == "avg":
                    part = (int(row[cell[1]]), int(row[cell[2]]))
                elif cell[0] in ("min", "max") and empty_shard:
                    continue  # finalized 0 of an empty shard is not a value
                else:
                    part = (int(row[cell[1]]), None)
                accs[i] = merge(funcs[i], accs[i], part)
        out_row = tuple(
            finalize(f, acc[0], acc[1]) for f, acc in zip(funcs, accs)
        )
        merged = ResultSet([a.alias for a in query.aggregates], [out_row])
    else:
        width = len(query.group_by)
        groups: dict = {}
        for result in shard_results:
            for row in result.rows:
                key = row[:width]
                accs = groups.get(key)
                if accs is None:
                    accs = [empty_accumulator(f) for f in funcs]
                    groups[key] = accs
                for i, cell in enumerate(spec.cells):
                    if cell[0] == "avg":
                        part = (int(row[width + cell[1]]),
                                int(row[width + cell[2]]))
                    else:
                        part = (int(row[width + cell[1]]), None)
                    accs[i] = merge(funcs[i], accs[i], part)
        columns = ([g.column for g in query.group_by]
                   + [a.alias for a in query.aggregates])
        rows = [
            key + tuple(finalize(f, acc[0], acc[1])
                        for f, acc in zip(funcs, accs))
            for key, accs in sorted(groups.items(),
                                    key=lambda kv: _group_sort_key(kv[0]))
        ]
        merged = ResultSet(columns, rows)
    return merged.order_by(query.order_by).limited(query.limit)


def _group_sort_key(key: Tuple) -> Tuple:
    """Canonical group order before ORDER BY, so ties (and queries with
    no ORDER BY) come out deterministically regardless of shard count."""
    return tuple((1, v) if isinstance(v, str) else (0, v) for v in key)


# ---------------------------------------------------------------------- #
# the scatter-gather driver
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardReport:
    """Which shards ran and which the synopses eliminated."""

    executed: Tuple[int, ...]
    eliminated: Tuple[int, ...]


def scatter_gather(
    query: StarQuery,
    synopses: Sequence[ShardSynopsis],
    date_table: Table,
    execute_one: Callable[[int, StarQuery], object],
    cost_model: CostModel,
) -> Tuple[ResultSet, QueryStats, Trace, ShardReport]:
    """Run ``query`` across all shards and merge everything.

    ``execute_one(shard_index, shard_query)`` must return an engine run
    object exposing ``result``, ``stats``, ``cost``, and ``trace`` (both
    engines' run types do).  The returned trace is the merged span tree:
    ``shard-elimination`` (synopsis probes), then one ``shard:K`` span
    per shard; it is returned already :meth:`~repro.obs.Trace.verify`-ed
    against the merged flat ledger.
    """
    spec = shard_plan(query)
    flags, probes = qualifying_shards(query, synopses, date_table)
    merged = QueryStats(synopsis_probes=probes)
    spans: List[Span] = [
        Span("shard-elimination", QueryStats(synopsis_probes=probes),
             cost_model.cost(QueryStats(synopsis_probes=probes)))
    ]
    partials: List[ResultSet] = []
    executed: List[int] = []
    eliminated: List[int] = []
    for k, keep in enumerate(flags):
        if not keep:
            eliminated.append(k)
            zero = QueryStats()
            spans.append(Span(f"shard:{k}", zero, cost_model.cost(zero)))
            continue
        executed.append(k)
        run = execute_one(k, spec.shard_query)
        partials.append(run.result)
        merged.merge(run.stats)
        spans.append(
            Span(f"shard:{k}", QueryStats(**run.stats.snapshot()),
                 run.cost, children=[run.trace.root])
        )
    result = gather(query, spec, partials)
    root = Span("query", QueryStats(**merged.snapshot()),
                cost_model.cost(merged), children=spans)
    trace = Trace(root).verify(merged)
    report = ShardReport(tuple(executed), tuple(eliminated))
    return result, merged, trace, report


__all__ = [
    "GatherSpec",
    "ShardReport",
    "shard_plan",
    "qualifying_shards",
    "gather",
    "scatter_gather",
    "ROWS_ALIAS",
]
