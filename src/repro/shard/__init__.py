"""Sharded scatter-gather execution (see ``docs/sharding.md``).

:mod:`repro.shard.partition` splits the SSB fact table into
self-contained shards with catalog-resident synopses;
:mod:`repro.shard.executor` rewrites queries for per-shard execution,
eliminates shards before any I/O, and merges results, ledgers, and
traces.  Both engines route through here when configured with
``shards > 1``.
"""

from .executor import (
    GatherSpec,
    ShardReport,
    gather,
    qualifying_shards,
    scatter_gather,
    shard_plan,
)
from .partition import FactShard, ShardScheme, ShardSynopsis, partition_data

__all__ = [
    "FactShard",
    "ShardScheme",
    "ShardSynopsis",
    "partition_data",
    "GatherSpec",
    "ShardReport",
    "shard_plan",
    "qualifying_shards",
    "gather",
    "scatter_gather",
]
